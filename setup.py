"""Setup shim for environments without the `wheel` package.

PEP 660 editable installs need `wheel`/`build` machinery that may be
absent in offline environments; this shim lets `pip install -e .
--no-build-isolation` fall back to the classic `setup.py develop` path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
