"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
count     exact or approximate count of the witness set (``--backend``)
sample    uniform witnesses (exact / Las Vegas, per the class dispatch)
enum      enumerate witnesses (constant/polynomial delay)
inspect   automaton facts: size, ambiguity, per-length spectrum
dot       Graphviz DOT of the automaton or its unrolled DAG
serve     the witness service: JSON-lines over stdio or async TCP
          (``--workers`` forks the affinity-routed engine pool,
          ``--store`` persists kernels for warm starts; ``--max-line``,
          ``--request-timeout`` and ``--max-connections`` bound the
          concurrent front-end)
query     send one operation to a running ``repro serve --port`` server;
          ``repro query enum`` / ``--enumerate`` streams witnesses as
          chunked responses (``--chunk-size``, resumable ``--cursor``)

Every command goes through the :class:`repro.api.WitnessSet` facade, so
within one process repeated queries on the same input reuse all
preprocessing.  Inputs:

* ``--regex`` (with ``--alphabet``) — a regular expression;
* ``--nfa-json`` — a JSON automaton file (:func:`repro.automata.
  serialization.nfa_to_json`);
* ``--dnf`` — a file containing ``"x0 & !x2 | x1"``-style DNF text;
  witnesses are satisfying assignments (``-n`` defaults to the number
  of variables);
* ``--rpq`` — a regular path query: ``--graph-json`` (a
  :func:`repro.graphdb.graph_to_json` file) plus ``--source``,
  ``--target`` and the path regex in ``--regex``;
* ``--cfg`` — a file containing ``"S -> A B | a"``-style CNF grammar
  text (:func:`repro.grammars.parse_cnf`); witnesses are the grammar's
  length-``n`` words (``-n`` required).

``--intersect REGEX`` (with ``--regex`` or ``--nfa-json`` inputs)
restricts the witness set to the words a second pattern *also* accepts:
the two automata are combined as a lazy
:class:`~repro.core.plan.Product` plan and lowered on the fly into the
array kernel — the product automaton is never materialized.  This is
the "count / sample the witnesses two patterns share" workload.

Counting strategies are selected by name from the solver-backend
registry (``--backend exact|fpras|montecarlo|kannan|karp_luby|naive``);
``--approx`` is shorthand for ``--backend fpras``.  All randomness is
seedable (``--seed``) for reproducible pipelines.

Examples::

    repro serve --port 7411 --workers 4 --store /var/cache/repro-kernels
    repro query count  --port 7411 --regex '(ab|ba)*' --alphabet ab -n 10
    repro query sample --port 7411 --regex '(ab|ba)*' --alphabet ab -n 10 --batch 5 --seed 1
    python -m repro count  --regex '(ab|ba)*' --alphabet ab -n 10
    python -m repro count  --regex '(ab|ba)*' --intersect '(a|b)*aa(a|b)*' --alphabet ab -n 10
    python -m repro sample --regex '(a|b)*' --intersect '(ab|ba)*' --alphabet ab -n 8 --batch 5 --seed 1
    python -m repro count  --regex '(a|b)*a(a|b)*' --alphabet ab -n 40 --approx --delta 0.2
    python -m repro count  --dnf formula.txt --backend karp_luby --seed 1
    python -m repro count  --rpq --graph-json g.json --source p0 --target p7 --regex 'k(k|f)*k' -n 5
    python -m repro count  --cfg grammar.txt -n 8
    python -m repro sample --regex '(ab|ba)*' --alphabet ab -n 10 --count 5 --seed 7
    python -m repro sample --regex '(ab|ba)*' --alphabet ab -n 10 --batch 1000 --seed 7
    python -m repro enum   --dnf formula.txt --limit 20
    python -m repro dot    --regex 'a*b' --alphabet ab --unroll 4
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Hashable

from repro import backends
from repro.api import WitnessSet
from repro.automata.nfa import word_str
from repro.automata.serialization import nfa_to_dot, unrolled_dag_to_dot
from repro.core.fpras import FprasParameters
from repro.core.unroll import unroll_trimmed
from repro.errors import ReproError


def _parse_vertex(graph, text: str):
    """Map a CLI vertex argument onto a graph vertex.

    Tries the raw string, then a Python literal (ints, tuples like
    ``"(0, 0)"`` for grid graphs).
    """
    if text in graph.vertices:
        return text
    try:
        literal = ast.literal_eval(text)
    except (ValueError, SyntaxError):
        literal = None
    if isinstance(literal, Hashable) and literal is not None and literal in graph.vertices:
        return literal
    raise SystemExit(f"vertex {text!r} is not in the graph")


def _nonnegative(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be ≥ 0")
    return value


def _require_length(args) -> int:
    if args.length is not None:
        return args.length
    if getattr(args, "needs_length", True):
        raise SystemExit("-n/--length is required for this input")
    return 0  # inspect/dot operate on the automaton, not a fixed length


def _load_witness_set(args) -> WitnessSet:
    """Build the WitnessSet the command operates on, from any input kind.

    One input-parsing path for local commands and ``repro query``: the
    CLI arguments compile to the same self-contained spec the query
    client ships to a server (:func:`_spec_from_args`), and the witness
    set is built from that spec — so input validation can never drift
    between the two routes.  (This costs a second parse of the input
    file locally; CLI inputs are small and the anti-drift guarantee is
    worth it.)
    """
    from repro.service.protocol import witness_set_from_spec

    params = (
        FprasParameters(sample_size=args.sketch_size)
        if getattr(args, "sketch_size", None)
        else None
    )
    return witness_set_from_spec(
        _spec_from_args(args),
        store=None,  # the $REPRO_KERNEL_STORE process default applies
        delta=getattr(args, "delta", 0.1),
        params=params,
        rng=getattr(args, "seed", None),
        kernel_backend=getattr(args, "kernel_backend", None),
    )


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--regex", help="regular expression (also the --rpq path pattern)")
    parser.add_argument("--intersect", metavar="REGEX", default=None,
                        help="restrict to witnesses a second pattern also accepts "
                             "(lazy product plan; with --regex or --nfa-json)")
    parser.add_argument("--alphabet", help="alphabet characters, e.g. 'ab'")
    parser.add_argument("--nfa-json", help="path to a repro.nfa JSON file")
    parser.add_argument("--dnf", metavar="FILE", help="path to a DNF formula text file")
    parser.add_argument("--cfg", metavar="FILE",
                        help="path to a CNF grammar text file ('S -> A B | a' lines)")
    parser.add_argument("--rpq", action="store_true",
                        help="regular path query mode (needs --graph-json/--source/--target)")
    parser.add_argument("--graph-json", metavar="FILE", help="path to a repro.graph JSON file")
    parser.add_argument("--source", help="RPQ source vertex")
    parser.add_argument("--target", help="RPQ target vertex")
    parser.add_argument("-n", "--length", type=int, default=None,
                        help="witness length (optional for --dnf)")
    parser.add_argument("--kernel-backend", default=None,
                        choices=("pure", "numpy", "auto"),
                        help="kernel execution backend (default: "
                             "$REPRO_KERNEL_BACKEND, else pure; numpy/auto "
                             "fall back to pure when NumPy is unavailable)")


def _format_witness(witness) -> str:
    from repro.graphdb.rpq import Path

    if isinstance(witness, Path):
        labels = "".join(map(str, witness.label_word))
        hops = " → ".join(map(str, witness.vertices()))
        return f"{labels}  ({hops})"
    if isinstance(witness, tuple):
        return word_str(tuple(str(symbol) for symbol in witness))
    return str(witness)


def _command_count(args) -> int:
    ws = _load_witness_set(args)
    name = args.backend or ("fpras" if args.approx else "exact")
    if backends.get(name).exact:
        print(ws.count(name))
    else:
        print(f"{ws.count(name, delta=args.delta, rng=args.seed):.6g}")
    return 0


def _command_sample(args) -> int:
    ws = _load_witness_set(args)
    if args.batch is not None:
        witnesses = ws.sample_batch(args.batch, rng=args.seed)
    else:
        witnesses = ws.sample(args.count, rng=args.seed)
    for witness in witnesses:
        print(_format_witness(witness))
    return 0


def _command_enum(args) -> int:
    ws = _load_witness_set(args)
    for witness in ws.enumerate(limit=args.limit):
        print(_format_witness(witness))
    return 0


def _command_inspect(args) -> int:
    ws = _load_witness_set(args)
    facts = ws.describe()
    print(f"states        : {facts['states']}")
    print(f"transitions   : {facts['transitions']}")
    print(f"alphabet      : {''.join(sorted(map(str, facts['alphabet'])))}")
    print(f"unambiguous   : {facts['unambiguous']}")
    print(f"kernel backend: {facts['kernel_backend']}")
    print(f"class         : "
          f"{'RelationUL (exact suite)' if facts['unambiguous'] else 'RelationNL (FPRAS/PLVUG)'}")
    if "plan" in facts:
        lowering = facts["lowering"]
        print(f"plan          : {facts['plan']}")
        if lowering:  # absent on a store-restored kernel without stats
            print(f"lowering      : explored {lowering['explored_states']} of "
                  f"{lowering['nominal_states']} nominal product states "
                  f"({lowering['kernel_vertices']} kernel vertices)")
    if args.spectrum:
        for length, count in ws.spectrum(args.spectrum).items():
            print(f"|L_{length:<3}|       : {count}")
    return 0


def _command_dot(args) -> int:
    ws = _load_witness_set(args)
    if args.unroll is not None:
        print(unrolled_dag_to_dot(unroll_trimmed(ws.stripped, args.unroll)))
    else:
        print(nfa_to_dot(ws.stripped))
    return 0


# ----------------------------------------------------------------------
# The witness service: serve / query
# ----------------------------------------------------------------------


def _spec_from_args(args) -> dict:
    """The self-contained request spec for the CLI's input arguments.

    Mirrors :func:`_load_witness_set`, but instead of compiling locally
    it embeds the instance *content* (file contents, not paths) so the
    server needs no shared filesystem.
    """
    import json as _json

    if getattr(args, "intersect", None) is not None and (
        args.dnf is not None
        or getattr(args, "cfg", None) is not None
        or getattr(args, "rpq", False)
    ):
        raise SystemExit("--intersect requires a --regex or --nfa-json input")
    if getattr(args, "rpq", False):
        if args.graph_json is None or args.regex is None:
            raise SystemExit("--rpq requires --graph-json and --regex")
        if args.source is None or args.target is None:
            raise SystemExit("--rpq requires --source and --target")
        from repro.automata.serialization import _encode_atom
        from repro.graphdb.graph import graph_from_json

        with open(args.graph_json, "r", encoding="utf-8") as handle:
            graph_text = handle.read()
        graph = graph_from_json(graph_text)
        return {
            "kind": "rpq",
            "graph": _json.loads(graph_text),
            "pattern": args.regex,
            "source": _encode_atom(_parse_vertex(graph, args.source)),
            "target": _encode_atom(_parse_vertex(graph, args.target)),
            "n": _require_length(args),
        }
    if args.dnf is not None:
        from repro.dnf.formulas import parse_dnf

        with open(args.dnf, "r", encoding="utf-8") as handle:
            text = handle.read().strip()
        length = getattr(args, "length", None)
        if length is not None:
            num_variables = parse_dnf(text).num_variables
            if length != num_variables:
                raise SystemExit(
                    f"-n {length} contradicts the formula's "
                    f"{num_variables} variables (omit -n for --dnf)"
                )
        return {"kind": "dnf", "formula": text}
    if getattr(args, "cfg", None) is not None:
        if args.length is None:
            raise SystemExit("-n/--length is required for --cfg")
        with open(args.cfg, "r", encoding="utf-8") as handle:
            return {"kind": "cfg", "grammar": handle.read(), "n": args.length}
    if args.regex is not None or args.nfa_json is not None:
        if args.regex is not None:
            base = {"kind": "regex", "pattern": args.regex}
            if args.alphabet:
                base["alphabet"] = args.alphabet
        else:
            with open(args.nfa_json, "r", encoding="utf-8") as handle:
                base = {"kind": "nfa", "nfa": _json.loads(handle.read())}
        if getattr(args, "intersect", None) is not None:
            right = {"kind": "regex", "pattern": args.intersect}
            if args.alphabet:
                right["alphabet"] = args.alphabet
            return {
                "kind": "intersection",
                "left": base,
                "right": right,
                "n": _require_length(args),
            }
        return dict(base, n=_require_length(args))
    raise SystemExit("one of --regex, --nfa-json, --dnf, --cfg or --rpq is required")


def _resolve_slow_query_log(path_arg, ms_arg):
    """Build the serve command's slow-query log from flags + environment.

    ``--slow-query-log`` names the file; ``--slow-query-ms`` sets the
    threshold.  Either flag alone completes itself from the environment
    (``$REPRO_SLOW_QUERY_LOG`` / ``$REPRO_SLOW_QUERY_MS``): in
    particular ``--slow-query-ms`` without ``--slow-query-log`` adjusts
    the env-configured log's threshold instead of being rejected.
    """
    if path_arg is None and ms_arg is None:
        return None
    from repro import obs

    env_log = obs.slow_log_from_env()
    path = path_arg if path_arg is not None else (
        env_log.path if env_log is not None else None
    )
    if path is None:
        raise SystemExit(
            "--slow-query-ms requires --slow-query-log (or $REPRO_SLOW_QUERY_LOG)"
        )
    if ms_arg is not None:
        return obs.SlowQueryLog(path, threshold_seconds=ms_arg / 1000.0)
    if env_log is not None and path == env_log.path:
        return env_log  # keeps the $REPRO_SLOW_QUERY_MS threshold
    return obs.SlowQueryLog(path)


def _command_serve(args) -> int:
    from repro.service.engine import Engine
    from repro.service.server import (
        DEFAULT_MAX_CONNECTIONS,
        DEFAULT_MAX_LINE,
        serve_stdio,
        serve_tcp,
    )

    engine = Engine(
        workers=args.workers,
        store_root=args.store,
        max_resident=args.max_resident,
    )
    window = args.batch_window / 1000.0
    max_line = args.max_line if args.max_line is not None else DEFAULT_MAX_LINE
    max_connections = (
        args.max_connections
        if args.max_connections is not None
        else DEFAULT_MAX_CONNECTIONS
    )
    slow_query_log = _resolve_slow_query_log(args.slow_query_log, args.slow_query_ms)
    try:
        if args.port is None:
            return serve_stdio(engine, batch_window=window, max_line=max_line)

        def announce(address) -> None:
            print(f"listening on {address[0]}:{address[1]}", file=sys.stderr, flush=True)

        return serve_tcp(
            engine,
            host=args.host,
            port=args.port,
            batch_window=window,
            ready_callback=announce,
            max_line=max_line,
            request_timeout=args.request_timeout or None,
            max_connections=max_connections,
            slow_query_log=slow_query_log,
        )
    finally:
        engine.close()


def _print_resume_cursor(cursor) -> None:
    """Tell the user how to continue a stream that stopped early
    (``--limit`` reached, or interrupted) — on stderr, so piped witness
    output stays clean."""
    if cursor is None:
        return
    import json as _json

    print(
        f"resume with: --cursor '{_json.dumps(cursor, separators=(',', ':'))}'",
        file=sys.stderr,
    )


def _command_query(args) -> int:
    import json as _json

    from repro.service.client import ServiceClient, ServiceClientError

    op = args.op
    if getattr(args, "enumerate", False):
        if op is not None and op not in ("enum", "enumerate"):
            raise SystemExit("--enumerate cannot be combined with another op")
        op = "enum"
    if op is None:
        raise SystemExit("repro query needs an op (or --enumerate)")
    if op in ("enum", "enumerate"):
        # Streamed enumeration: chunked response lines printed as they
        # arrive — the witness set is never materialized on either side.
        try:
            cursor = _json.loads(args.cursor) if args.cursor is not None else None
        except ValueError as error:
            raise SystemExit(f"--cursor is not valid JSON: {error}") from error
        with ServiceClient(args.host, args.port) as client:
            try:
                for item in client.enumerate(
                    _spec_from_args(args),
                    limit=args.limit,
                    chunk_size=args.chunk_size,
                    cursor=cursor,
                ):
                    print(item, flush=True)
            except ServiceClientError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            except KeyboardInterrupt:
                _print_resume_cursor(client.last_cursor)
                return 130
            # A --limit-terminated stream is resumable: surface where it
            # stopped so the next run can pass it back via --cursor.
            _print_resume_cursor(client.last_cursor)
        return 0
    request: dict = {"op": op}
    if op not in ("ping", "stats", "shutdown"):
        request["spec"] = _spec_from_args(args)
    if op == "count":
        if args.backend or args.approx:
            request["backend"] = args.backend or "fpras"
        request["delta"] = args.delta
        if args.seed is not None:
            request["seed"] = args.seed
    elif op in ("sample", "sample_batch"):
        request["k"] = args.batch if args.batch is not None else args.count
        if args.seed is not None:
            request["seed"] = args.seed
    elif op == "spectrum":
        if args.max_length is not None:
            request["max_length"] = args.max_length
    with ServiceClient(args.host, args.port) as client:
        response = client.send([request])[0]
    if not response.get("ok"):
        print(
            f"error: {response.get('error_type', 'error')}: {response.get('error')}",
            file=sys.stderr,
        )
        return 1
    result = response["result"]
    if isinstance(result, list) and result and isinstance(result[0], list):
        for length, count in result:  # a spectrum
            print(f"{length} {count}")
    elif isinstance(result, list):
        for item in result:
            print(item)
    elif isinstance(result, dict):
        print(_json.dumps(result, indent=2, ensure_ascii=False, default=str))
    else:
        print(result)
    return 0


def _command_stats(args) -> int:
    """``repro stats``: one stats round-trip, rendered for humans.

    ``--json`` prints the full aggregated payload; the default rendering
    shows the server headline counters, the engine summary, and the
    merged metrics registry as an aligned table.
    """
    import json as _json

    from repro import obs
    from repro.service.client import ServiceClient

    request: dict = {"op": "stats"}
    if args.per_worker:
        request["per_worker"] = True
    with ServiceClient(args.host, args.port) as client:
        response = client.send([request])[0]
    if not response.get("ok"):
        print(
            f"error: {response.get('error_type', 'error')}: {response.get('error')}",
            file=sys.stderr,
        )
        return 1
    result = response["result"]
    if args.json:
        print(_json.dumps(result, indent=2, ensure_ascii=False, default=str))
        return 0
    engine = result.get("engine") or {}
    print(
        f"served {result.get('served', 0)} requests "
        f"in {result.get('batches', 0)} batches; "
        f"{result.get('connections', 0)} connection(s) open"
    )
    print(
        f"engine: {engine.get('workers', 0)} worker(s) "
        f"({engine.get('alive', 0)} alive), "
        f"{engine.get('resident', 0)} resident witness set(s), "
        f"cache {engine.get('hits', 0)} hit(s) / {engine.get('misses', 0)} miss(es)"
    )
    store = engine.get("store")
    if store:
        pairs = ", ".join(f"{key}={value}" for key, value in sorted(store.items()))
        print(f"store: {pairs}")
    print()
    print(obs.render_text(result.get("metrics") or {}), end="")
    if args.per_worker:
        print()
        for entry in result.get("workers") or []:
            print(_json.dumps(entry, ensure_ascii=False, default=str))
    return 0


def _distribution_version() -> str:
    """The installed package version, falling back to the module's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-witness-sets")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="enumerate / count / uniformly sample witness sets "
        "(Arenas et al., PODS 2019)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_distribution_version()}",
    )
    commands = parser.add_subparsers(dest="command")

    count = commands.add_parser("count", help="count witnesses")
    _add_input_arguments(count)
    count.add_argument("--approx", action="store_true",
                       help="use the FPRAS (alias for --backend fpras)")
    count.add_argument("--backend", default=None,
                       help="solver backend: %s" % ", ".join(backends.available()))
    count.add_argument("--delta", type=float, default=0.1)
    count.add_argument("--sketch-size", type=int, default=64)
    count.add_argument("--seed", type=int, default=None)
    count.set_defaults(run=_command_count)

    sample = commands.add_parser("sample", help="draw uniform witnesses")
    _add_input_arguments(sample)
    sample.add_argument("--count", type=_nonnegative, default=1)
    sample.add_argument("--batch", type=_nonnegative, default=None, metavar="K",
                        help="draw K witnesses in one batched kernel pass "
                             "(instead of K independent --count draws)")
    sample.add_argument("--delta", type=float, default=0.1)
    sample.add_argument("--seed", type=int, default=None)
    sample.set_defaults(run=_command_sample)

    enum = commands.add_parser("enum", help="enumerate witnesses")
    _add_input_arguments(enum)
    enum.add_argument("--limit", type=int, default=None)
    enum.set_defaults(run=_command_enum)

    inspect = commands.add_parser("inspect", help="automaton facts")
    _add_input_arguments(inspect)
    inspect.add_argument("--spectrum", type=int, default=None, metavar="N",
                         help="print |L_0..N|")
    inspect.set_defaults(run=_command_inspect, needs_length=False)

    dot = commands.add_parser("dot", help="Graphviz DOT output")
    _add_input_arguments(dot)
    dot.add_argument("--unroll", type=int, default=None, metavar="N",
                     help="render the pruned n-step unrolling instead")
    dot.set_defaults(run=_command_dot, needs_length=False)

    serve = commands.add_parser(
        "serve", help="run the witness service (JSON-lines, stdio or TCP)"
    )
    serve.add_argument("--port", type=int, default=None,
                       help="listen on TCP (0 = ephemeral; default: stdio)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--workers", type=_nonnegative, default=0,
                       help="engine worker processes (0 = in-process)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="KernelStore directory for warm-start persistence")
    serve.add_argument("--batch-window", type=float, default=5.0, metavar="MS",
                       help="coalescing grace period in milliseconds")
    serve.add_argument("--max-resident", type=int, default=64,
                       help="witness sets kept hot per worker")
    serve.add_argument("--max-line", type=int, default=None, metavar="BYTES",
                       help="bound on one request line (default 8 MiB); longer "
                            "lines get a one-line JSON error")
    serve.add_argument("--request-timeout", type=float, default=0.0, metavar="SECONDS",
                       help="per-request deadline while waiting for engine "
                            "capacity (0 = none; requests may override via "
                            "timeout_ms)")
    serve.add_argument("--max-connections", type=int, default=None,
                       help="cap on simultaneous TCP connections (default 1024)")
    serve.add_argument("--slow-query-log", default=None, metavar="PATH",
                       help="append over-threshold requests to this JSON-lines "
                            "file (also $REPRO_SLOW_QUERY_LOG)")
    serve.add_argument("--slow-query-ms", type=float, default=None, metavar="MS",
                       help="slow-query threshold in milliseconds "
                            "(default 1000; also $REPRO_SLOW_QUERY_MS)")
    serve.set_defaults(run=_command_serve)

    stats = commands.add_parser(
        "stats", help="fetch and render a running server's metrics"
    )
    stats.add_argument("--port", type=int, required=True)
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--json", action="store_true",
                       help="print the raw aggregated stats payload as JSON")
    stats.add_argument("--per-worker", action="store_true",
                       help="include the per-worker cache/store entry list")
    stats.set_defaults(run=_command_stats)

    query = commands.add_parser(
        "query", help="send one operation to a repro serve --port server"
    )
    query.add_argument(
        "op",
        nargs="?",
        default=None,
        choices=["count", "sample", "sample_batch", "enum", "enumerate",
                 "spectrum", "describe", "ping", "stats", "shutdown"],
    )
    _add_input_arguments(query)
    query.add_argument("--port", type=int, required=True)
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--backend", default=None)
    query.add_argument("--approx", action="store_true")
    query.add_argument("--delta", type=float, default=0.1)
    query.add_argument("--seed", type=int, default=None)
    query.add_argument("--count", type=_nonnegative, default=1)
    query.add_argument("--batch", type=_nonnegative, default=None, metavar="K")
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--max-length", type=int, default=None)
    query.add_argument("--enumerate", action="store_true",
                       help="stream witnesses (chunked constant-delay "
                            "enumeration; same as the enum op)")
    query.add_argument("--chunk-size", type=_nonnegative, default=None,
                       help="witnesses per streamed enumeration chunk")
    query.add_argument("--cursor", default=None, metavar="JSON",
                       help="resume a streamed enumeration from this cursor "
                            "(as printed/kept by a previous run)")
    query.set_defaults(run=_command_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) is None:
        # No subcommand: usage + exit 2, never a traceback.
        parser.print_usage(sys.stderr)
        print("repro: error: a command is required (see repro --help)",
              file=sys.stderr)
        return 2
    try:
        return args.run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        # Unreadable input files, connection refused, port in use, ...:
        # a clean one-line error, never a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Ctrl-C on a serving loop is a normal way to stop it.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
