"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
count     exact or FPRAS count of the length-n language of a regex/NFA
sample    uniform witnesses (exact / Las Vegas, per the class dispatch)
enum      enumerate witnesses (constant/polynomial delay)
inspect   automaton facts: size, ambiguity, per-length spectrum
dot       Graphviz DOT of the automaton or its unrolled DAG

Input is a regular expression (``--regex``, with ``--alphabet``) or a
JSON automaton file produced by :func:`repro.automata.serialization.
nfa_to_json` (``--nfa-json``).  All randomness is seedable (``--seed``)
for reproducible pipelines.

Examples::

    python -m repro count  --regex '(ab|ba)*' --alphabet ab -n 10
    python -m repro count  --regex '(a|b)*a(a|b)*' --alphabet ab -n 40 --approx --delta 0.2
    python -m repro sample --regex '(ab|ba)*' --alphabet ab -n 10 --count 5 --seed 7
    python -m repro enum   --regex 'a*b' --alphabet ab -n 6 --limit 20
    python -m repro dot    --regex 'a*b' --alphabet ab --unroll 4
"""

from __future__ import annotations

import argparse
import sys

from repro.automata.nfa import NFA, word_str
from repro.automata.regex import compile_regex
from repro.automata.serialization import nfa_from_json, nfa_to_dot, unrolled_dag_to_dot
from repro.automata.unambiguous import is_unambiguous
from repro.core.enumeration import enumerate_words
from repro.core.exact import count_accepting_runs_of_length, count_words_exact
from repro.core.fpras import FprasParameters, approx_count_nfa
from repro.core.unroll import unroll_trimmed
from repro.errors import ReproError


def _load_automaton(args) -> NFA:
    if args.regex is not None:
        alphabet = list(args.alphabet) if args.alphabet else None
        return compile_regex(args.regex, alphabet=alphabet)
    if args.nfa_json is not None:
        with open(args.nfa_json, "r", encoding="utf-8") as handle:
            return nfa_from_json(handle.read())
    raise SystemExit("one of --regex or --nfa-json is required")


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--regex", help="regular expression to compile")
    parser.add_argument("--alphabet", help="alphabet characters, e.g. 'ab'")
    parser.add_argument("--nfa-json", help="path to a repro.nfa JSON file")


def _command_count(args) -> int:
    nfa = _load_automaton(args)
    if args.approx:
        params = FprasParameters(sample_size=args.sketch_size)
        estimate = approx_count_nfa(
            nfa, args.length, delta=args.delta, rng=args.seed, params=params
        )
        print(f"{estimate:.6g}")
        return 0
    stripped = nfa.without_epsilon().trim()
    if is_unambiguous(stripped):
        print(count_accepting_runs_of_length(stripped, args.length))
    else:
        print(count_words_exact(stripped, args.length))
    return 0


def _command_sample(args) -> int:
    import repro

    nfa = _load_automaton(args)
    samples = repro.uniform_samples(
        nfa, args.length, args.count, rng=args.seed, delta=args.delta
    )
    for w in samples:
        print(word_str(w))
    return 0


def _command_enum(args) -> int:
    nfa = _load_automaton(args)
    emitted = 0
    for w in enumerate_words(nfa, args.length):
        print(word_str(w))
        emitted += 1
        if args.limit is not None and emitted >= args.limit:
            break
    return 0


def _command_inspect(args) -> int:
    nfa = _load_automaton(args).without_epsilon().trim()
    unambiguous = is_unambiguous(nfa)
    print(f"states        : {nfa.num_states}")
    print(f"transitions   : {nfa.num_transitions}")
    print(f"alphabet      : {''.join(sorted(map(str, nfa.alphabet)))}")
    print(f"unambiguous   : {unambiguous}")
    print(f"class         : {'RelationUL (exact suite)' if unambiguous else 'RelationNL (FPRAS/PLVUG)'}")
    if args.spectrum:
        counter = (
            count_accepting_runs_of_length if unambiguous else count_words_exact
        )
        for length in range(args.spectrum + 1):
            print(f"|L_{length:<3}|       : {counter(nfa, length)}")
    return 0


def _command_dot(args) -> int:
    nfa = _load_automaton(args).without_epsilon().trim()
    if args.unroll is not None:
        print(unrolled_dag_to_dot(unroll_trimmed(nfa, args.unroll)))
    else:
        print(nfa_to_dot(nfa))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="enumerate / count / uniformly sample NFA and regex languages "
        "(Arenas et al., PODS 2019)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    count = commands.add_parser("count", help="count length-n witnesses")
    _add_input_arguments(count)
    count.add_argument("-n", "--length", type=int, required=True)
    count.add_argument("--approx", action="store_true", help="use the FPRAS")
    count.add_argument("--delta", type=float, default=0.1)
    count.add_argument("--sketch-size", type=int, default=64)
    count.add_argument("--seed", type=int, default=None)
    count.set_defaults(run=_command_count)

    sample = commands.add_parser("sample", help="draw uniform witnesses")
    _add_input_arguments(sample)
    sample.add_argument("-n", "--length", type=int, required=True)
    sample.add_argument("--count", type=int, default=1)
    sample.add_argument("--delta", type=float, default=0.1)
    sample.add_argument("--seed", type=int, default=None)
    sample.set_defaults(run=_command_sample)

    enum = commands.add_parser("enum", help="enumerate witnesses")
    _add_input_arguments(enum)
    enum.add_argument("-n", "--length", type=int, required=True)
    enum.add_argument("--limit", type=int, default=None)
    enum.set_defaults(run=_command_enum)

    inspect = commands.add_parser("inspect", help="automaton facts")
    _add_input_arguments(inspect)
    inspect.add_argument("--spectrum", type=int, default=None, metavar="N",
                         help="print |L_0..N|")
    inspect.set_defaults(run=_command_inspect)

    dot = commands.add_parser("dot", help="Graphviz DOT output")
    _add_input_arguments(dot)
    dot.add_argument("--unroll", type=int, default=None, metavar="N",
                     help="render the pruned n-step unrolling instead")
    dot.set_defaults(run=_command_dot)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
