"""Unrolling an NFA into a layered DAG (Section 6.2 and Lemma 15).

Both halves of the paper consume the same object: the automaton ``N``
unrolled ``n`` times into a directed acyclic graph whose vertices are
``(layer, state)`` pairs.

* Lemma 15 (Section 5.3.1) prunes the DAG to vertices on a path from the
  start vertex to a final vertex — the enumerator must never wander into a
  dead branch, or the constant delay is ruined.
* Algorithm 5 (Section 6.4, step 3) only removes vertices unreachable from
  the start — the FPRAS's per-vertex sets ``U(s)`` are prefix sets and
  must not be restricted by what happens later in the word.

:class:`UnrolledDAG` exposes both views.  Rather than materializing
``n·m`` explicit vertices with copied edges, it stores one set of *live
states per layer* and answers adjacency queries against the underlying
NFA's transition maps — same asymptotics, much less allocation, and the
correspondence with the paper's ``s_t^j`` vertices stays direct
(``s_t^j`` live ⟺ ``j in dag.layer(t)``).

The execution hot paths run on :class:`repro.core.kernel.CompiledDAG`,
the one-shot integer-indexed lowering of this object; the kernel
implements this same set-based API as adapter views, so the ``s_t^j``
correspondence above holds verbatim on either representation.
"""

from __future__ import annotations

from typing import Iterator

from repro.automata.nfa import NFA, State, Symbol
from repro.errors import InvalidAutomatonError


class UnrolledDAG:
    """The layered unrolling ``N_unroll`` of an ε-free NFA.

    Attributes
    ----------
    nfa:
        The underlying ε-free automaton.
    n:
        The word length (number of symbol layers).
    layers:
        ``layers[t]`` is the frozenset of states live at layer ``t``
        (``t = 0..n``); ``layers[0] == {initial}``.  In *reachable* mode a
        state is live iff reachable from the start in exactly ``t`` steps;
        in *trimmed* mode it must additionally reach a final state in the
        remaining ``n - t`` steps (Lemma 15 pruning).
    """

    def __init__(self, nfa: NFA, n: int, trimmed: bool):
        if nfa.has_epsilon:
            raise InvalidAutomatonError("unrolling requires an ε-free NFA")
        if n < 0:
            raise ValueError("word length must be ≥ 0")
        self.nfa = nfa
        self.n = n
        self.trimmed = trimmed

        forward: list[frozenset] = [frozenset({nfa.initial})]
        for _ in range(n):
            current = forward[-1]
            nxt: set = set()
            for state in current:
                for symbol in nfa.alphabet:
                    nxt |= nfa.successors(state, symbol)
            forward.append(frozenset(nxt))

        if trimmed:
            alive: list[frozenset] = [frozenset(nfa.finals & forward[n])]
            for t in range(n - 1, -1, -1):
                later = alive[0]
                current: set = set()
                for state in forward[t]:
                    for symbol in nfa.alphabet:
                        if nfa.successors(state, symbol) & later:
                            current.add(state)
                            break
                alive.insert(0, frozenset(current))
            self.layers = alive
        else:
            self.layers = forward

    # ------------------------------------------------------------------

    def layer(self, t: int) -> frozenset:
        """Live states at layer ``t`` (0 ≤ t ≤ n)."""
        return self.layers[t]

    @property
    def final_states(self) -> frozenset:
        """Live accepting states at the last layer."""
        return self.layers[self.n] & self.nfa.finals

    @property
    def is_empty(self) -> bool:
        """True iff the automaton accepts no word of length ``n``."""
        return not self.final_states

    def successors(self, t: int, state: State) -> Iterator[tuple[Symbol, State]]:
        """Edges from vertex ``(t, state)`` into layer ``t + 1`` (live only)."""
        if t >= self.n:
            return
        later = self.layers[t + 1]
        for symbol, target in self.nfa.out_edges(state):
            if target in later:
                yield symbol, target

    def ordered_successors(self, t: int, state: State) -> list[tuple[Symbol, State]]:
        """Successor edges in a fixed total order (symbol repr, state repr).

        Algorithm 1 requires a fixed order on each vertex's outgoing edges
        (its ``min``/``succ``/``max`` bookkeeping); we order by repr to
        stay independent of hash randomization.
        """
        return sorted(self.successors(t, state), key=lambda edge: (repr(edge[0]), repr(edge[1])))

    def predecessors(self, t: int, state: State, symbol: Symbol) -> frozenset:
        """Live states ``p`` at layer ``t - 1`` with ``p --symbol--> state``.

        This is the paper's ``T_b(s_i^α)`` (Algorithm 5, step 4a).
        """
        if t <= 0:
            return frozenset()
        return self.nfa.predecessors(state, symbol) & self.layers[t - 1]

    def predecessor_sets(self, t: int, states: frozenset) -> dict[Symbol, frozenset]:
        """For each symbol b, the set ``T_b`` of layer-(t-1) predecessors of ``states``.

        The generalization of Algorithm 4 step 3 from {0,1} to Σ: only
        symbols with nonempty predecessor sets are returned.
        """
        result: dict[Symbol, set] = {}
        earlier = self.layers[t - 1] if t >= 1 else frozenset()
        for state in states:
            for symbol, sources in _in_edges_by_symbol(self.nfa, state):
                live = sources & earlier
                if live:
                    result.setdefault(symbol, set()).update(live)
        return {symbol: frozenset(sources) for symbol, sources in result.items()}

    def vertex_count(self) -> int:
        """Total number of live vertices across all layers."""
        return sum(len(layer) for layer in self.layers)

    def edge_count(self) -> int:
        """Total number of live edges."""
        return sum(
            1
            for t in range(self.n)
            for state in self.layers[t]
            for _ in self.successors(t, state)
        )


def _in_edges_by_symbol(nfa: NFA, state: State) -> Iterator[tuple[Symbol, frozenset]]:
    for symbol in nfa.alphabet:
        sources = nfa.predecessors(state, symbol)
        if sources:
            yield symbol, sources


def unroll(nfa: NFA, n: int) -> UnrolledDAG:
    """Unroll ``nfa`` for length ``n``, removing only unreachable vertices.

    This is the FPRAS view (Algorithm 5, step 3).
    """
    return UnrolledDAG(nfa.without_epsilon(), n, trimmed=False)


def unroll_trimmed(nfa: NFA, n: int) -> UnrolledDAG:
    """Unroll and prune to vertices on start→final paths (Lemma 15).

    This is the enumeration view: every edge of the result is part of an
    accepting path, so depth-first traversal never backtracks out of a
    dead branch.
    """
    return UnrolledDAG(nfa.without_epsilon(), n, trimmed=True)


def accepted_word_exists(nfa: NFA, n: int) -> bool:
    """Does ``nfa`` accept any word of length ``n``?  (O(n·|δ|).)

    The existence test that [Sch09]'s polynomial-delay enumeration needs,
    and the guard the samplers use before doing any work.
    """
    return not unroll(nfa, n).is_empty


def lemma15_graph(nfa: NFA, n: int) -> tuple[UnrolledDAG, tuple, frozenset]:
    """The Lemma 15 package: (pruned DAG, start vertex, final vertices).

    Returned in the vertex naming of the paper (``(state, layer)`` pairs)
    for the figure-reproduction tests; algorithmic callers use the
    :class:`UnrolledDAG` API directly.
    """
    dag = unroll_trimmed(nfa, n)
    start = (dag.nfa.initial, 0)
    finals = frozenset((state, n) for state in dag.final_states)
    return dag, start, finals
