"""Polynomial-time Las Vegas Uniform Generation for MEM-NFA (Corollary 23).

The PLVUG contract (Section 2.4): a randomized ``G`` such that

1. ``Pr(G ≠ fail) ≥ 1/2``;
2. if witnesses exist, ``G`` never returns ⊥;
3. every witness is returned with the *same* probability φ (exact
   uniformity conditioned on success — stronger than almost-uniform);
4. polynomial running time.

Corollary 23 obtains it from the FPRAS preprocessing: each ``Sample``
invocation at the final vertex is uniform conditioned on acceptance and
accepts with probability ≥ e⁻⁵ ≈ 0.0067 (Proposition 18), so batching
``ceil(ln 2 / e⁻⁵)`` ≈ 103 independent attempts into a single ``G`` call
drives the per-call failure probability below 1/2 while keeping the
returned distribution exactly uniform (each attempt is uniform; taking
the first success preserves that).

:class:`LasVegasUniformGenerator` amortizes the FPRAS preprocessing over
many draws — the natural usage for "give me 10 000 uniform strings of
this regex" workloads.
"""

from __future__ import annotations

import math
import random

from repro.automata.nfa import NFA, Word
from repro.core.fpras import FprasParameters, FprasState
from repro.core.unroll import accepted_word_exists
from repro.errors import EmptyWitnessSetError, GenerationFailedError
from repro.utils.rng import make_rng

#: Attempts needed per G-call to push failure below 1/2 at the paper's
#: worst-case acceptance rate e⁻⁵ (Proposition 18) — the PLVUG contract
#: minimum.
PAPER_MIN_ATTEMPTS_PER_CALL = math.ceil(math.log(2) / math.exp(-5))

#: Our default is far above the contract minimum: at the worst-case e⁻⁵
#: acceptance, 2048 attempts fail together with probability < 10⁻⁶ (and at
#: the typical e⁻⁴ rate, < 10⁻¹⁶), so ``generate()`` raising is a genuine
#: anomaly rather than routine bad luck.  Attempts are cheap after
#: preprocessing (one O(n) cached walk each).
DEFAULT_ATTEMPTS_PER_CALL = 2048


class LasVegasUniformGenerator:
    """Uniform witness generator for ``L_n(nfa)`` with Las Vegas semantics.

    Parameters mirror the FPRAS; the constructor runs the (polynomial)
    preprocessing once.  Afterwards:

    * :meth:`generate` — one PLVUG call ``G(x)``: ⊥ (``None``) when the
      witness set is empty, a uniform witness, or raises
      :class:`GenerationFailedError` after the attempt budget (the
      explicit *fail* outcome).
    * :meth:`generate_or_fail` — single attempt, returning the paper's
      three-way outcome as a string tag (for the failure-rate experiment
      E8).
    * :meth:`sample_many` — convenience batch.

    Note the emptiness check is *exact* (a reachability test), so
    property (2) — never ⊥ when witnesses exist — holds unconditionally.
    """

    def __init__(
        self,
        nfa: NFA,
        n: int,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
        params: FprasParameters | None = None,
        attempts_per_call: int = DEFAULT_ATTEMPTS_PER_CALL,
    ):
        self.rng = make_rng(rng)
        self.nfa = nfa.without_epsilon()
        self.n = n
        self.attempts_per_call = attempts_per_call
        self.nonempty = accepted_word_exists(self.nfa, n)
        # Preprocess only when there is something to sample: the paper's G
        # detects emptiness in polynomial time and returns ⊥ immediately.
        self.state: FprasState | None = (
            FprasState(self.nfa, n, delta=delta, rng=self.rng, params=params)
            if self.nonempty
            else None
        )

    @property
    def count_estimate(self) -> float:
        """The FPRAS count estimate (0.0 for the empty witness set)."""
        return self.state.count_estimate if self.state is not None else 0.0

    def attempt(self) -> Word | None:
        """One ``Sample`` attempt: a uniform witness or ``None`` (reject).

        Precondition: the witness set is nonempty.
        """
        if self.state is None:
            raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
        return self.state.sample_witness(self.rng)

    def generate_or_fail(self) -> tuple[str, Word | None]:
        """A single PLVUG trial: ('empty', None) | ('ok', w) | ('fail', None)."""
        if not self.nonempty:
            return ("empty", None)
        drawn = self.attempt()
        if drawn is None:
            return ("fail", None)
        return ("ok", drawn)

    def generate(self) -> Word | None:
        """One G(x) call: ``None`` encodes ⊥ (empty witness set).

        Retries :meth:`attempt` up to ``attempts_per_call`` times; raises
        :class:`GenerationFailedError` if all attempts reject — with the
        default budget this happens with probability < 1/2 even under the
        paper's pessimistic e⁻⁵ acceptance bound, and in practice almost
        never.
        """
        if not self.nonempty:
            return None
        for _ in range(self.attempts_per_call):
            drawn = self.attempt()
            if drawn is not None:
                return drawn
        raise GenerationFailedError(self.attempts_per_call)

    def sample_many(self, count: int, max_total_attempts: int | None = None) -> list[Word]:
        """Draw ``count`` uniform witnesses (independent, with replacement).

        ``max_total_attempts`` bounds the overall work (default: budget
        proportional to the per-call budget).
        """
        if not self.nonempty:
            raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
        budget = max_total_attempts or self.attempts_per_call * max(1, count)
        out: list[Word] = []
        attempts = 0
        while len(out) < count:
            if attempts >= budget:
                raise GenerationFailedError(attempts)
            attempts += 1
            drawn = self.attempt()
            if drawn is not None:
                out.append(drawn)
        return out

    def empirical_acceptance_rate(self, trials: int = 200) -> float:
        """Fraction of single attempts that produce a witness (experiment A2)."""
        if not self.nonempty:
            return 0.0
        successes = sum(1 for _ in range(trials) if self.attempt() is not None)
        return successes / trials
