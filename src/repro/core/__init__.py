"""Core algorithms: the paper's primary contribution.

Layout (paper section → module):

* §2 relations / problems        → :mod:`repro.core.relations`
* §3 transducers, Lemma 13       → :mod:`repro.core.transducers`
* §3 class facades               → :mod:`repro.core.classes`
* §5 reductions (Prop. 11)       → :mod:`repro.core.reductions`
* §5.2 self-reducibility (ψ)     → :mod:`repro.core.selfreduce`
* §5.3.1 Algorithm 1 + Lemma 15  → :mod:`repro.core.enumeration`, :mod:`repro.core.unroll`
* array execution kernel         → :mod:`repro.core.kernel`
* symbolic plan IR, lazy lowering→ :mod:`repro.core.plan`
* §5.3.2 exact counting          → :mod:`repro.core.exact`
* §5.3.3 exact uniform sampling  → :mod:`repro.core.exact_sampler`
* §6 FPRAS (Algorithms 2/4/5)    → :mod:`repro.core.fpras`
* Corollary 23 (PLVUG)           → :mod:`repro.core.plvug`
"""

from repro.core.unroll import (
    UnrolledDAG,
    accepted_word_exists,
    lemma15_graph,
    unroll,
    unroll_trimmed,
)
from repro.core.kernel import CompiledDAG, as_kernel, compile_nfa
from repro.core.plan import (
    Atom,
    Concat,
    DocProduct,
    GraphProduct,
    Intersect,
    LoweringStats,
    Plan,
    Product,
    Relabel,
    Star,
    Union,
    as_plan,
    lower_plan,
    memoized_source,
)
from repro.core.exact import (
    backward_run_table,
    count_accepting_runs_of_length,
    count_words_exact,
    count_words_ufa,
    forward_run_table,
    length_spectrum,
    run_count_by_word,
)
from repro.core.enumeration import (
    algorithm1_page,
    enumerate_words,
    enumerate_words_dag,
    enumerate_words_nfa,
    enumerate_words_ufa,
)
from repro.core.selfreduce import SelfReduction, ell, empty_word_is_witness, psi, sigma
from repro.core.exact_sampler import (
    ExactUniformSampler,
    sample_word_ufa,
    sample_word_ufa_or_none,
    sample_word_ufa_via_psi,
)
from repro.core.fpras import (
    FprasDiagnostics,
    FprasParameters,
    FprasState,
    approx_count_nfa,
)
from repro.core.plvug import LasVegasUniformGenerator
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.core.reductions import (
    MemNfaRelation,
    MemUfaRelation,
    WitnessPreservingReduction,
    completeness_reduction,
)
from repro.core.transducers import (
    BLANK,
    CompilationReport,
    ConfigGraphTransducer,
    TMTransition,
    Transducer,
    TuringTransducer,
    compile_to_nfa,
    outputs_brute_force,
)
from repro.core.classes import (
    RelationNL,
    RelationNLSolver,
    RelationUL,
    RelationULSolver,
    SpanLFunction,
    TransducerRelation,
)
from repro.core.spectrum import SpectrumSolver, pad_automaton, strip_padding
from repro.core.almost_uniform import AlmostUniformGenerator, total_variation_from_uniform

__all__ = [
    "UnrolledDAG",
    "CompiledDAG",
    "as_kernel",
    "compile_nfa",
    "Plan",
    "Atom",
    "Product",
    "Intersect",
    "Union",
    "Concat",
    "Star",
    "Relabel",
    "GraphProduct",
    "DocProduct",
    "LoweringStats",
    "as_plan",
    "lower_plan",
    "memoized_source",
    "unroll",
    "unroll_trimmed",
    "lemma15_graph",
    "accepted_word_exists",
    "count_words_ufa",
    "count_words_exact",
    "count_accepting_runs_of_length",
    "forward_run_table",
    "backward_run_table",
    "length_spectrum",
    "run_count_by_word",
    "enumerate_words",
    "algorithm1_page",
    "enumerate_words_ufa",
    "enumerate_words_nfa",
    "enumerate_words_dag",
    "psi",
    "ell",
    "sigma",
    "empty_word_is_witness",
    "SelfReduction",
    "ExactUniformSampler",
    "sample_word_ufa",
    "sample_word_ufa_or_none",
    "sample_word_ufa_via_psi",
    "FprasState",
    "FprasParameters",
    "FprasDiagnostics",
    "approx_count_nfa",
    "LasVegasUniformGenerator",
    "AutomatonBackedRelation",
    "CompiledInstance",
    "WitnessPreservingReduction",
    "MemNfaRelation",
    "MemUfaRelation",
    "completeness_reduction",
    "Transducer",
    "ConfigGraphTransducer",
    "TuringTransducer",
    "TMTransition",
    "BLANK",
    "CompilationReport",
    "compile_to_nfa",
    "outputs_brute_force",
    "RelationNL",
    "RelationUL",
    "RelationNLSolver",
    "RelationULSolver",
    "TransducerRelation",
    "SpanLFunction",
    "SpectrumSolver",
    "pad_automaton",
    "strip_padding",
    "AlmostUniformGenerator",
    "total_variation_from_uniform",
]
