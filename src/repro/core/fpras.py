"""The FPRAS for #NFA (Section 6, Algorithms 2, 4 and 5) — the paper's headline.

Given an NFA ``N`` with ``m`` states, a length ``n`` (unary) and an error
``δ``, estimate ``|L_n(N)|`` within relative error δ, in time polynomial
in ``n``, ``m`` and ``1/δ``.  The algorithm:

1. Unroll ``N`` into the layered DAG ``N_unroll`` (reachable vertices
   only — Algorithm 5 step 3).
2. Process vertices layer by layer.  For each live vertex ``s`` keep

   * ``R(s)`` — an estimate of ``|U(s)|``, the number of distinct strings
     labelling start→``s`` paths, and
   * ``X(s)`` — a *sketch*: a multiset of ``k`` uniform samples of
     ``U(s)`` (or ``U(s)`` itself when ``|U(s)| ≤ k`` — the vertex is then
     *exactly handled*, Algorithm 5 step 4).

3. ``R(s)`` for a sketched vertex is assembled from the predecessors'
   sketches by the ≺-ordered inclusion–exclusion estimate

   ``W̃_b = Σ_{s' ∈ T_b} R(s') · |X(s') ∖ ⋃_{s'' ≺ s'} U(s'')| / |X(s')|``

   (Algorithm 5 step 5a), where membership ``x ∈ U(s'')`` is decided
   exactly by running ``x`` through the automaton (a reachability check,
   memoized).

4. Samples for ``X(s)`` are drawn by the backward random walk ``Sample``
   (Algorithm 4): starting from ``{s}``, repeatedly partition the current
   vertex set's predecessors by symbol, pick a symbol with probability
   proportional to its ``W̃`` estimate, prepend it to the word, and
   finally *reject* with the accumulated probability correction
   ``φ = e⁻⁴/R(s) · Π p_b⁻¹`` — the Jerrum–Valiant–Vazirani trick that
   converts approximately-uniform proposals into exactly uniform output
   (Proposition 18).

5. The final estimate is ``R(s_final)`` where ``s_final`` aggregates the
   accepting states of the last layer (Remark 1's virtual vertex).

Faithfulness vs. practicality
-----------------------------
The paper sets ``k = ⌈(nm/δ)^64⌉`` and retry budget ``⌈(nm/δ)^4⌉`` so the
Hoeffding/union-bound bookkeeping in the proof goes through; those values
are astronomically infeasible to *run*.  :class:`FprasParameters` keeps
every structural element of the algorithm and makes the two budgets
tunable; ``FprasParameters.paper_faithful()`` reproduces the proof
constants, ``FprasParameters.practical()`` (default) uses
``k = clamp((nm/δ)^ε)`` with ε = 1 and a generous retry budget.  The
ablation benchmark A1 maps the k-vs-error frontier empirically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.automata.nfa import NFA, Symbol, Word
from repro.core.exact import count_words_exact
from repro.core.kernel import CompiledDAG, compile_nfa, kernel_matches_nfa
from repro.errors import EmptyWitnessSetError, InvalidAutomatonError
from repro.utils.rng import make_rng

#: Acceptance constant of Algorithm 5: samples are accepted with
#: probability φ that starts at e⁻⁴/R(s).  (See Proposition 18: with good
#: estimates, e⁻⁵ ≤ φ·R/|U| ≤ e⁻³, so acceptance stays bounded away from
#: both 0 and 1.)
REJECTION_CONSTANT = math.exp(-4)


@dataclass(frozen=True)
class FprasParameters:
    """Tunable budgets of the FPRAS (see module docstring).

    Attributes
    ----------
    sample_size:
        Explicit sketch size ``k``; when None, derived as
        ``clamp((n·m/δ)^sample_size_exponent, min_sample_size,
        max_sample_size)``.
    sample_size_exponent:
        The paper's 64; default 1.0 (ablation A1 explores this).
    min_sample_size / max_sample_size:
        Clamps for the derived ``k``.
    retry_budget:
        Attempts allowed per needed sample before declaring failure; the
        paper's ⌈(nm/δ)⁴⌉.  None derives ``max(64, 40·e⁴)`` ≈ expected
        number of tries for 2⁻ⁿ escape probability at the paper's
        acceptance rate.
    rejection_constant:
        The e⁻⁴ of Algorithm 5 (ablation A2 explores this).
    exhaustive_length:
        Below this ``n``, count exactly by brute force (Algorithm 5
        step 1 uses n ≤ 12 for the binary alphabet).
    """

    sample_size: int | None = None
    sample_size_exponent: float = 1.0
    min_sample_size: int = 16
    max_sample_size: int = 4096
    retry_budget: int | None = None
    rejection_constant: float = REJECTION_CONSTANT
    exhaustive_length: int = 6

    @classmethod
    def paper_faithful(cls) -> "FprasParameters":
        """The literal constants of Algorithm 5 — for contemplation.

        ``k = (nm/δ)^64`` with no clamps; running this on any nontrivial
        instance will exhaust the lifetime of the solar system, which is
        the gap Section 7 of the paper acknowledges.
        """
        return cls(
            sample_size=None,
            sample_size_exponent=64.0,
            min_sample_size=1,
            max_sample_size=10**300,
            retry_budget=None,
            exhaustive_length=12,
        )

    @classmethod
    def practical(cls, k: int | None = None) -> "FprasParameters":
        """Defaults tuned for laptop-scale runs (the library default)."""
        return cls(sample_size=k)

    def resolve_k(self, n: int, m: int, delta: float) -> int:
        if self.sample_size is not None:
            return max(1, self.sample_size)
        base = (max(1, n) * max(1, m)) / delta
        derived = math.ceil(base**self.sample_size_exponent)
        return int(min(self.max_sample_size, max(self.min_sample_size, derived)))

    def resolve_retries(self) -> int:
        if self.retry_budget is not None:
            return max(1, self.retry_budget)
        # Expected ~e⁴/φ₀-ish tries per success; 40·e⁴ ≈ 2184 gives a
        # < e⁻⁴⁰ chance of spuriously failing a healthy vertex.
        return max(64, math.ceil(40 * math.e**4))


@dataclass
class _Entry:
    """Per-vertex bookkeeping: the pair (R(s), X(s)) of Algorithm 5."""

    estimate: float                 # R(s)
    sketch: list                    # X(s): list of words (multiset)
    exact: bool                     # exactly handled?
    exact_set: frozenset | None     # U(s) when exactly handled


class FprasFailure(Exception):
    """Internal signal: the algorithm hit a failure event (outputs 0).

    Mirrors Algorithm 5 steps 5(b)/5(c)(iii).  :func:`approx_count_nfa`
    converts it into the paper's "output 0" convention; callers that
    prefer an exception can use ``FprasState`` directly.
    """


@dataclass
class FprasDiagnostics:
    """Observability counters for experiments and tests."""

    k: int = 0
    exactly_handled: int = 0
    sketched: int = 0
    sample_draws: int = 0
    sample_rejections: int = 0
    sample_walk_failures: int = 0
    reach_cache_misses: int = 0
    used_exhaustive: bool = False
    layers: int = 0


class FprasState:
    """The preprocessed FPRAS data structures for one ``(N, n, δ)`` instance.

    Construction runs Algorithm 5's layer loop and therefore does all the
    heavy lifting; afterwards

    * :attr:`estimate` is the count estimate ``R(s_final)``, and
    * :meth:`sample_witness` draws exactly-uniform witnesses using the
      same ``Sample`` machinery (this is what the PLVUG of Corollary 23
      wraps).

    All per-vertex bookkeeping is integer-indexed over the compiled
    kernel (:class:`~repro.core.kernel.CompiledDAG`): vertices are local
    layer indices, the fixed linear order ≺ on each layer is index order
    (indices are assigned in repr order, reproducing the seed's
    ordering), and predecessor partitions / prefix-set steps run on the
    kernel's flat edge arrays.  A caller holding a reachable-mode kernel
    for ``(nfa, n)`` (e.g. the :class:`repro.api.WitnessSet` facade)
    passes it as ``kernel`` to skip recompilation.

    The prefix-set steps and predecessor partitions execute on whatever
    execution backend the kernel carries
    (:meth:`~repro.core.kernel.CompiledDAG.set_kernel_backend`): with
    the NumPy backend the flat-array sweeps vectorize, and because every
    consumer here iterates the resulting frozensets through ``sorted``
    / ``min`` order, fixed-seed estimates are bit-identical across
    backends.
    """

    def __init__(
        self,
        nfa: NFA,
        n: int,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
        params: FprasParameters | None = None,
        kernel: CompiledDAG | None = None,
    ):
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if n < 0:
            raise ValueError("n must be ≥ 0")
        self.nfa = nfa.without_epsilon()
        self.n = n
        self.delta = delta
        self.params = params or FprasParameters()
        self.rng = make_rng(rng)
        self.diagnostics = FprasDiagnostics()
        if kernel is None:
            kernel = compile_nfa(self.nfa, n, trimmed=False)
        elif kernel.trimmed or kernel.n < n or not kernel_matches_nfa(kernel, self.nfa):
            raise InvalidAutomatonError(
                "the FPRAS needs a reachable-mode kernel of the same "
                f"automaton at length ≥ {n}"
            )
        self.kernel: CompiledDAG = kernel
        #: Set-based adapter view of the unrolling (the kernel implements
        #: the full UnrolledDAG API), kept for diagnostics and callers.
        self.dag = kernel
        self.k = self.params.resolve_k(n, self.nfa.num_states, delta)
        self.retries = self.params.resolve_retries()
        self.diagnostics.k = self.k
        self.diagnostics.layers = n
        self._entries: list[dict[int, _Entry]] = [dict() for _ in range(n + 1)]
        start = kernel.index_of(0, self.nfa.initial)
        self._reach_cache: dict[Word, frozenset] = {
            (): frozenset() if start is None else frozenset({start})
        }
        # W̃ and predecessor-set memos.  Entries at a layer are immutable
        # once written, and the walks revisit the same vertex sets heavily
        # (k draws per sketched vertex), so both caches are sound and hot.
        self._w_cache: dict[tuple[int, frozenset], float] = {}
        self._pred_cache: dict[tuple[int, frozenset], dict] = {}
        self.failed = False
        self.estimate: float = 0.0
        self._final_exact_union: frozenset | None = None
        self._run()

    # ------------------------------------------------------------------
    # Membership machinery
    # ------------------------------------------------------------------

    def _reach(self, prefix: Word) -> frozenset:
        """Layer-``|prefix|`` vertex indices reachable by reading ``prefix``.

        ``x ∈ U(s_t^j)`` ⟺ ``index(j) ∈ reach(x)`` (with ``|x| = t``):
        this is the breadth-first-search membership test of Algorithm 4
        step 3(a), shared across all sketches via the cache and stepped
        through the kernel's flat edge arrays.
        """
        cached = self._reach_cache.get(prefix)
        if cached is not None:
            return cached
        base = self._reach(prefix[:-1])
        result = self.kernel.step_indices(len(prefix) - 1, base, prefix[-1])
        self._reach_cache[prefix] = result
        self.diagnostics.reach_cache_misses += 1
        return result

    # ------------------------------------------------------------------
    # The W̃ estimator (Algorithm 5 step 5a / Algorithm 4 step 3a)
    # ------------------------------------------------------------------

    def _w_tilde(self, layer: int, group: Sequence[int]) -> float:
        """Estimate ``|⋃_{s ∈ group} U(s)|`` from the groups' sketches.

        ``group`` holds vertex *indices* at ``layer``; it is processed in
        the global order ≺ (= index order), each vertex contributing
        ``R(s)`` scaled by the sketch fraction that is *not* already
        covered by earlier vertices.  For a sample ``x ∈ X(s)`` the
        earlier-coverage test reduces to: is the minimum of ``reach(x) ∩
        group`` equal to ``s``'s index?  (``s`` itself is always in
        ``reach(x)`` because ``x ∈ U(s)``.)
        """
        group_set = frozenset(group)
        cache_key = (layer, group_set)
        cached = self._w_cache.get(cache_key)
        if cached is not None:
            return cached
        ordered = sorted(group_set)
        total = 0.0
        for position, vertex in enumerate(ordered):
            entry = self._entries[layer][vertex]
            if not entry.sketch:
                continue
            if position == 0:
                total += entry.estimate
                continue
            fresh = 0
            for x in entry.sketch:
                if min(self._reach(x) & group_set) == vertex:
                    fresh += 1
            total += entry.estimate * (fresh / len(entry.sketch))
        self._w_cache[cache_key] = total
        return total

    def _predecessor_sets(self, t: int, vertices: frozenset) -> dict:
        """``{b: T_b}`` with ``T_b`` the layer-(t-1) predecessor indices."""
        key = (t, vertices)
        cached = self._pred_cache.get(key)
        if cached is None:
            cached = self.kernel.predecessor_groups(t, vertices)
            self._pred_cache[key] = cached
        return cached


    # ------------------------------------------------------------------
    # Sample (Algorithm 4)
    # ------------------------------------------------------------------

    def _sample_walk(
        self,
        layer: int,
        targets: frozenset,
        phi0: float,
        rng: random.Random | None = None,
    ) -> Word | None:
        """One invocation of ``Sample(T, ε, φ₀)``; None on failure.

        Walks backwards from ``targets`` (a set of vertex indices at
        ``layer``), choosing symbols with probability proportional to the
        sketched union estimates and accumulating the acceptance
        probability φ.  ``rng`` overrides the state's own stream (witness
        draws are caller-seedable; the construction-time sketch draws are
        not).
        """
        generator = rng if rng is not None else self.rng
        phi = phi0
        if not 0 < phi < 1:
            self.diagnostics.sample_walk_failures += 1
            return None
        t = layer
        current = targets
        suffix: list[Symbol] = []
        while t > 0:
            by_symbol = self._predecessor_sets(t, current)
            if not by_symbol:
                self.diagnostics.sample_walk_failures += 1
                return None
            symbols = sorted(by_symbol, key=repr)
            weights = [self._w_tilde(t - 1, by_symbol[s]) for s in symbols]
            total = sum(weights)
            if total <= 0:
                self.diagnostics.sample_walk_failures += 1
                return None
            pick = generator.random() * total
            accumulated = 0.0
            chosen = len(symbols) - 1
            for index, weight in enumerate(weights):
                accumulated += weight
                if pick < accumulated:
                    chosen = index
                    break
            probability = weights[chosen] / total
            if probability <= 0:
                self.diagnostics.sample_walk_failures += 1
                return None
            phi /= probability
            if phi >= 1:
                # Step 1 of Algorithm 4 at the next recursion level.
                self.diagnostics.sample_walk_failures += 1
                return None
            suffix.append(symbols[chosen])
            current = by_symbol[symbols[chosen]]
            t -= 1
        # t == 0: current ⊆ {initial} by construction of the DAG.
        word_out = tuple(reversed(suffix))
        if generator.random() < phi:
            return word_out
        self.diagnostics.sample_rejections += 1
        return None

    def _draw_samples(self, layer: int, vertex: int, estimate: float, count: int) -> list:
        """Fill a sketch with ``count`` uniform samples of ``U(vertex@layer)``.

        Each needed sample is attempted up to the retry budget; exhausting
        it is Algorithm 5's failure event 5(c)(iii).
        """
        phi0 = self.params.rejection_constant / estimate if estimate > 0 else 0.0
        sketch: list = []
        targets = frozenset({vertex})
        while len(sketch) < count:
            drawn = None
            for _ in range(self.retries):
                self.diagnostics.sample_draws += 1
                drawn = self._sample_walk(layer, targets, phi0)
                if drawn is not None:
                    break
            if drawn is None:
                raise FprasFailure(
                    f"sampling failed at layer {layer} vertex {vertex}: "
                    f"no acceptance in {self.retries} attempts"
                )
            sketch.append(drawn)
        return sketch

    # ------------------------------------------------------------------
    # The layer loop (Algorithm 5 steps 4–5)
    # ------------------------------------------------------------------

    def _run(self) -> None:
        try:
            self._run_inner()
        except FprasFailure:
            # Algorithm 5's convention: failure events output 0.
            self.failed = True
            self.estimate = 0.0

    def _run_inner(self) -> None:
        sigma_size = max(1, len(self.nfa.alphabet))
        if self.n <= self.params.exhaustive_length or sigma_size**self.n <= self.k:
            # Algorithm 5 step 1: tiny instances are counted exactly.
            self.diagnostics.used_exhaustive = True
            self.estimate = float(count_words_exact(self.nfa, self.n))
            self._final_exact_union = None
            self._exhaustive = True
            return
        self._exhaustive = False

        # Layer 0: the start vertex, exactly handled with U = {ε}.
        start = self.kernel.index_of(0, self.nfa.initial)
        self._entries[0][start] = _Entry(
            estimate=1.0, sketch=[()], exact=True, exact_set=frozenset({()})
        )
        self.diagnostics.exactly_handled += 1

        for t in range(1, self.n + 1):
            for vertex in range(self.kernel.layer_size(t)):
                self._process_vertex(t, vertex)

        finals = list(self.kernel.final_indices(self.n))
        if not finals:
            self.estimate = 0.0
            self._final_exact_union = frozenset()
            return
        if all(self._entries[self.n][s].exact for s in finals):
            union: set = set()
            for s in finals:
                union |= self._entries[self.n][s].exact_set
            self._final_exact_union = frozenset(union)
            self.estimate = float(len(union))
            return
        self._final_exact_union = None
        self.estimate = self._w_tilde(self.n, finals)
        if self.estimate <= 0:
            raise FprasFailure("final estimate collapsed to zero")

    def _process_vertex(self, t: int, vertex: int) -> None:
        predecessors = self._predecessor_sets(t, frozenset({vertex}))
        # Algorithm 5 step 4: try the exactly-handled route first.
        if all(
            self._entries[t - 1][p].exact
            for group in predecessors.values()
            for p in group
        ):
            exact_words: set = set()
            for symbol, group in predecessors.items():
                for p in group:
                    for x in self._entries[t - 1][p].exact_set:
                        exact_words.add(x + (symbol,))
            if len(exact_words) <= self.k:
                self._entries[t][vertex] = _Entry(
                    estimate=float(len(exact_words)),
                    sketch=list(exact_words),
                    exact=True,
                    exact_set=frozenset(exact_words),
                )
                self.diagnostics.exactly_handled += 1
                return
        # Algorithm 5 step 5: sketched route.
        estimate = 0.0
        for symbol in sorted(predecessors, key=repr):
            estimate += self._w_tilde(t - 1, predecessors[symbol])
        if estimate <= 0:
            raise FprasFailure(f"R collapsed to zero at layer {t} vertex {vertex}")
        sketch = self._draw_samples_for_vertex(t, vertex, estimate, predecessors)
        self._entries[t][vertex] = _Entry(
            estimate=estimate, sketch=sketch, exact=False, exact_set=None
        )
        self.diagnostics.sketched += 1

    def _draw_samples_for_vertex(
        self,
        t: int,
        vertex: int,
        estimate: float,
        predecessors: dict,
    ) -> list:
        """k uniform samples of U(state@t): one symbol step + recursive walk.

        Equivalent to ``Sample({state}, ε, e⁻⁴/R)`` — the first partition
        of the walk is exactly ``predecessors``; we reuse the generic walk
        by starting it at the vertex itself.
        """
        return self._draw_samples(t, vertex, estimate, self.k)

    # ------------------------------------------------------------------
    # Public results
    # ------------------------------------------------------------------

    @property
    def count_estimate(self) -> float:
        """The estimate ``R(s_final)`` of ``|L_n(N)|`` (0.0 on failure)."""
        return self.estimate

    def estimate_at_length(self, t: int) -> float:
        """Estimate ``|L_t(N)|`` for any ``t ≤ n`` from the same sketches.

        A practical optimization in the spirit of Section 7: the layer
        loop already built ``(R, X)`` for every vertex of every layer, and
        ``|L_t(N)| = |⋃_{f ∈ F} U(s_t^f)|`` is one more ≺-ordered union
        estimate over the accepting states of layer ``t``.  One
        preprocessing pass therefore yields the whole count spectrum
        ``t = 0..n`` — the quantity the ≤-n semantics of
        :mod:`repro.core.spectrum` consumes — instead of ``n`` separate
        FPRAS runs.
        """
        if not 0 <= t <= self.n:
            raise ValueError(f"length {t} outside 0..{self.n}")
        if self.failed:
            return 0.0
        if self.diagnostics.used_exhaustive:
            return float(count_words_exact(self.nfa, t))
        finals = list(self.kernel.final_indices(t))
        if not finals:
            return 0.0
        if all(self._entries[t][vertex].exact for vertex in finals):
            union: set = set()
            for vertex in finals:
                union |= self._entries[t][vertex].exact_set
            return float(len(union))
        return self._w_tilde(t, finals)

    def estimate_spectrum(self) -> list[float]:
        """``[|L_0|, …, |L_n|]`` estimates from one preprocessing pass."""
        return [self.estimate_at_length(t) for t in range(self.n + 1)]

    def is_exact(self) -> bool:
        """True when the run produced an exact count (tiny instance or all
        accepting vertices exactly handled)."""
        return self.diagnostics.used_exhaustive or self._final_exact_union is not None

    def sample_witness(self, rng: random.Random | int | None = None) -> Word | None:
        """Draw one uniform witness of ``L_n(N)``; None means *fail*.

        This is a single Las Vegas attempt (Corollary 23's ``G``):
        conditioned on returning a word, the distribution is uniform over
        ``L_n(N)``.  Returns None on the rejection branch; wrap with
        :class:`repro.core.plvug.LasVegasUniformGenerator` for retries.

        Raises
        ------
        EmptyWitnessSetError
            When ``L_n(N) = ∅`` (the paper's ⊥ output).
        """
        generator = make_rng(rng) if rng is not None else self.rng
        finals = list(self.kernel.final_indices(self.n))
        if not finals or (self.estimate <= 0 and not self.failed and self.is_exact()):
            raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
        if self.diagnostics.used_exhaustive or self._final_exact_union is not None:
            universe = self._exhaustive_universe()
            if not universe:
                raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
            return universe[generator.randrange(len(universe))]
        if self.failed:
            return None
        phi0 = self.params.rejection_constant / self.estimate
        return self._sample_walk(self.n, frozenset(finals), phi0, rng=generator)

    def _exhaustive_universe(self) -> list:
        """Materialized witness list for the exact regimes (cached)."""
        cached = getattr(self, "_universe_cache", None)
        if cached is not None:
            return cached
        if self._final_exact_union is not None:
            universe = sorted(self._final_exact_union)
        else:
            from repro.automata.operations import words_of_length

            universe = words_of_length(self.nfa, self.n)
        self._universe_cache = universe
        return universe


def approx_count_nfa(
    nfa: NFA,
    n: int,
    delta: float = 0.1,
    rng: random.Random | int | None = None,
    params: FprasParameters | None = None,
) -> float:
    """FPRAS estimate of ``|L_n(nfa)|`` (Theorem 22's interface).

    Returns the estimate; failure events return 0.0 exactly as in
    Algorithm 5.  For diagnostics, sampling access and exactness
    information, build a :class:`FprasState` instead.
    """
    return FprasState(nfa, n, delta=delta, rng=rng, params=params).count_estimate
