"""The array-backed execution kernel: :class:`CompiledDAG`.

Every algorithm in the library — exact counting (Section 6.2's DP),
Lemma-15 enumeration, exact uniform generation, the length-spectrum
sweeps and the FPRAS's prefix-set bookkeeping — consumes the same object:
the automaton unrolled ``n`` times into a layered DAG.  The
:class:`~repro.core.unroll.UnrolledDAG` view answers adjacency queries
against frozensets of state objects, which keeps the correspondence with
the paper's ``s_t^j`` vertices direct but pays Python hashing and
allocation on every hot-path step.

:class:`CompiledDAG` is the one-shot lowering of that view into dense,
integer-indexed arrays:

* per layer ``t``, the live states in a fixed total order (sorted by
  ``repr``, matching the edge order Algorithm 1 requires), with an index
  map state → local integer;
* per layer, a CSR-style flat edge list ``(src_idx, symbol_idx,
  dst_idx)`` built once from the NFA's transition maps, sorted per source
  so traversal order is identical to ``UnrolledDAG.ordered_successors``;
* forward/backward run-count tables stored as ``array('q')`` when every
  entry fits a machine word, spilling to plain Python lists when the
  bignum counts overflow 64 bits — exactness is never sacrificed;
* a lazily built reverse CSR for backward walks (the FPRAS's
  ``T_b(s_i^α)`` queries).

All computation then streams over integer arrays; the set-based
:class:`UnrolledDAG` API is preserved as thin adapter methods, so the
paper-facing ``s_t^j`` correspondence documented in
:mod:`repro.core.unroll` survives the lowering (``s_t^j`` live ⟺
``j in kernel.layer(t)``, same as before).

Reachable-mode kernels additionally support *incremental length
extension* (:meth:`CompiledDAG.extend_to`): appending layers to an
existing compilation instead of recompiling from scratch, which turns
length-spectrum sweeps from quadratic into linear total work.

The kernel is *source-generic*: construction only reads the NFA
interface (``initial`` / ``finals`` membership / ``out_edges`` /
``alphabet`` / ``has_epsilon``), so the lazy plan lowering of
:mod:`repro.core.plan` hands it a memoized symbolic source instead of a
materialized automaton and the same CSR-construction code path serves
both.  Plan-lowered kernels carry their :class:`~repro.core.plan.
LoweringStats` in :attr:`CompiledDAG.lowering` (``None`` for kernels
compiled from concrete NFAs).
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from random import Random
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Callable,
    Container,
    Iterable,
    Iterator,
    Protocol,
    Sequence,
    TypeAlias,
)

from repro.automata.nfa import NFA, State, Symbol, Word
from repro.core import accel as _accel
from repro.errors import EmptyWitnessSetError, InvalidAutomatonError
from repro.obs import metrics as _obs_metrics
from repro.obs import names as metric_names

if TYPE_CHECKING:
    import os

    from repro.core.accel import NumpyAccel
    from repro.core.plan import LoweringStats
    from repro.core.unroll import UnrolledDAG

#: Largest count representable in the packed ``array('q')`` spine.
_INT64_MAX = 2**63 - 1

#: One run-count row: packed when every entry fits int64, spilled to a
#: plain list when the bignum counts overflow — or, on an mmap-restored
#: kernel, an int64 ``memoryview`` borrowed from the snapshot buffer.
#: All three answer ``row[i]`` with a Python int, so consumers never
#: branch.
CountRow: TypeAlias = "array[int] | list[int] | memoryview[int]"

#: One CSR integer block (offsets / symbol indices / dst indices);
#: borrowed as an int64 ``memoryview`` on mmap-restored kernels.
_IntArray: TypeAlias = "array[int] | memoryview[int]"


class AutomatonSource(Protocol):
    """The read interface kernel compilation needs from its source.

    Satisfied by :class:`~repro.automata.nfa.NFA`, by the memoized
    symbolic source :func:`repro.core.plan.lower_plan` builds, and by
    the snapshot stand-in a restored kernel carries.
    """

    @property
    def initial(self) -> State: ...

    @property
    def finals(self) -> Container[State]: ...

    @property
    def alphabet(self) -> AbstractSet[Symbol]: ...

    @property
    def has_epsilon(self) -> bool: ...

    def out_edges(self, state: State) -> Iterable[tuple[Symbol, State]]: ...


def _pack_counts(counts: list[int]) -> CountRow:
    """Pack a per-layer count row into ``array('q')``, spilling to a list.

    The spill keeps exact bignum arithmetic available: both containers
    answer ``row[i]`` with a Python int, so consumers never branch.
    """
    if counts and max(counts) > _INT64_MAX:
        return counts
    return array("q", counts)


class CompiledDAG:
    """Integer-indexed compilation of an unrolled layered DAG.

    Parameters
    ----------
    nfa:
        The underlying ε-free automaton — or any source exposing the
        same read interface (``initial``, ``finals`` membership,
        ``out_edges``, ``alphabet``, ``has_epsilon``), e.g. the memoized
        plan source :func:`repro.core.plan.lower_plan` builds.
    n:
        The word length (number of symbol layers).
    trimmed:
        ``True`` for the Lemma 15 pruning (every vertex lies on a
        start→final path — the enumeration/sampling view), ``False`` for
        reachable-only vertices (the FPRAS / spectrum view, which also
        supports :meth:`extend_to`).
    layers:
        Optional precomputed live-state sets (one frozenset per layer,
        as built by :class:`~repro.core.unroll.UnrolledDAG`); when
        omitted they are recomputed from the automaton.
    """

    __slots__ = (
        "nfa",
        "n",
        "trimmed",
        "symbols",
        "_symbol_index",
        "_states",
        "_index",
        "_edge_start",
        "_edge_symbol",
        "_edge_dst",
        "_redge",
        "_forward",
        "_backward",
        "_cum",
        "_layer_sets",
        "_finals_idx",
        "lowering",
        "fingerprint",
        "accel",
        "_accel_state",
        "_borrow_owner",
    )

    nfa: AutomatonSource
    n: int
    trimmed: bool
    symbols: tuple[Symbol, ...]
    _symbol_index: dict[Symbol, int]
    _states: list[tuple[State, ...]]
    _index: list[dict[State, int]]
    _edge_start: list[_IntArray]
    _edge_symbol: list[_IntArray]
    _edge_dst: list[_IntArray]
    _redge: dict[int, tuple[_IntArray, _IntArray, _IntArray]]
    _forward: list[CountRow] | None
    _backward: list[CountRow] | None
    _cum: dict[tuple[int, int], list[int]]
    _layer_sets: dict[int, frozenset[State]]
    _finals_idx: dict[int, tuple[int, ...]]
    lowering: LoweringStats | None
    fingerprint: str | None
    accel: NumpyAccel | None
    _accel_state: dict[tuple[str, int], object]
    _borrow_owner: object | None

    def __init__(
        self,
        nfa: AutomatonSource,
        n: int,
        trimmed: bool,
        layers: Sequence[frozenset[State]] | None = None,
    ) -> None:
        if nfa.has_epsilon:
            raise InvalidAutomatonError("kernel compilation requires an ε-free NFA")
        if n < 0:
            raise ValueError("word length must be ≥ 0")
        self.nfa = nfa
        self.n = n
        self.trimmed = trimmed
        if layers is None:
            from repro.core.unroll import UnrolledDAG

            layers = UnrolledDAG(nfa, n, trimmed).layers
        self.symbols = tuple(sorted(nfa.alphabet, key=repr))
        self._symbol_index = {s: i for i, s in enumerate(self.symbols)}
        self._states = [tuple(sorted(layer, key=repr)) for layer in layers]
        self._index = [
            {state: i for i, state in enumerate(states)} for states in self._states
        ]
        self._edge_start = []
        self._edge_symbol = []
        self._edge_dst = []
        for t in range(n):
            self._append_edge_layer(t)
        self._redge = {}
        self._forward = None
        self._backward = None
        self._cum = {}
        self._layer_sets = {}
        self._finals_idx = {}
        #: LoweringStats when this kernel came from a plan lowering.
        self.lowering = None
        #: Content fingerprint of the source when the kernel came out of
        #: a KernelStore (lets the backend guard verify snapshot-restored
        #: kernels, whose source object is a snapshot stand-in).
        self.fingerprint = None
        #: Accelerated execution backend (None = the canonical pure
        #: path); defaults from $REPRO_KERNEL_BACKEND.
        self.accel = _accel.resolve(None)
        _obs_metrics().counter(
            metric_names.KERNEL_BACKEND_SELECTED,
            labels={"backend": self.kernel_backend},
        ).inc()
        #: Per-kernel caches owned by the accel backend (NumPy views of
        #: the CSR arrays and derived per-layer arrays).
        self._accel_state = {}
        #: The buffer (e.g. an mmap) whose memory this kernel borrows;
        #: None when every array is owned.  See kernel_from_mmap.
        self._borrow_owner = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_unrolled(cls, dag: UnrolledDAG | CompiledDAG) -> "CompiledDAG":
        """Lower an already-built :class:`UnrolledDAG` (live sets reused)."""
        if isinstance(dag, CompiledDAG):
            return dag
        return cls(dag.nfa, dag.n, dag.trimmed, layers=dag.layers)

    def set_kernel_backend(self, name: str | None) -> "CompiledDAG":
        """Select the execution backend (``"pure"``, ``"numpy"``, ``"auto"``).

        ``None`` re-reads ``$REPRO_KERNEL_BACKEND`` (default pure).  The
        NumPy backend silently falls back to the pure path when NumPy is
        not importable — results are bit-identical either way, so the
        choice is purely about speed.  Returns ``self`` for chaining.
        """
        self.accel = _accel.resolve(name)
        self._accel_state = {}
        _obs_metrics().counter(
            metric_names.KERNEL_BACKEND_SELECTED,
            labels={"backend": self.kernel_backend},
        ).inc()
        return self

    @property
    def kernel_backend(self) -> str:
        """Name of the active execution backend (``"numpy"`` / ``"pure"``)."""
        return self.accel.name if self.accel is not None else "pure"

    def _note_spill(self, site: str) -> None:
        """Count one accel → pure fallback (the backend declined the
        call — e.g. bignum-spilled rows NumPy int64 cannot hold)."""
        _obs_metrics().counter(
            metric_names.ACCEL_SPILLS, labels={"site": site}
        ).inc()

    def _append_edge_layer(self, t: int) -> None:
        """Build the CSR edge block for layer ``t`` → ``t + 1``."""
        index_next = self._index[t + 1]
        symbol_index = self._symbol_index
        offsets = array("l", [0])
        edge_symbol = array("l")
        edge_dst = array("l")
        out_edges = self.nfa.out_edges
        for state in self._states[t]:
            edges = []
            for symbol, target in out_edges(state):
                j = index_next.get(target)
                if j is not None:
                    edges.append((symbol_index[symbol], j))
            # Symbol indices and dst indices are both assigned in repr
            # order, so this integer sort reproduces the (repr(symbol),
            # repr(state)) order of UnrolledDAG.ordered_successors.
            edges.sort()
            for symbol_i, j in edges:
                edge_symbol.append(symbol_i)
                edge_dst.append(j)
            offsets.append(len(edge_symbol))
        self._edge_start.append(offsets)
        self._edge_symbol.append(edge_symbol)
        self._edge_dst.append(edge_dst)

    def extend_to(self, new_n: int) -> "CompiledDAG":
        """Extend a reachable-mode compilation to length ``new_n`` in place.

        Appends layers ``n+1 .. new_n`` (and their edge blocks and —
        when already built — forward count rows) without recompiling the
        prefix, so a length sweep costs the same as one compilation at
        the final length.  Trimmed kernels cannot be extended: Lemma 15
        pruning depends on the final layer, so extension would invalidate
        every earlier layer.
        """
        if self.trimmed:
            raise InvalidAutomatonError(
                "incremental extension requires a reachable-mode kernel "
                "(trimmed pruning depends on the final layer)"
            )
        if new_n <= self.n:
            return self
        if self._borrow_owner is not None:
            # An mmap-restored kernel borrows its arrays from the
            # snapshot buffer; appending layers must never mutate (or
            # resize away from) memory the store still owns, so the
            # kernel first copies itself onto owned arrays.
            self._materialize_owned()
        out_edges = self.nfa.out_edges
        for t in range(self.n, new_n):
            nxt: set[State] = set()
            for state in self._states[t]:
                for _, target in out_edges(state):
                    nxt.add(target)
            states_next = tuple(sorted(nxt, key=repr))
            self._states.append(states_next)
            self._index.append({state: i for i, state in enumerate(states_next)})
            self._append_edge_layer(t)
            if self._forward is not None:
                row = (
                    self.accel.forward_step_row(self, t, self._forward[t])
                    if self.accel is not None
                    else None
                )
                if row is None:
                    if self.accel is not None:
                        self._note_spill("forward_step_row")
                    row = _pack_counts(self._forward_step(t, self._forward[t]))
                self._forward.append(row)
        self.n = new_n
        # Backward counts, cumulative-weight caches and final-layer
        # adapters depend on n; drop them (forward rows stay valid).
        # Accel caches go wholesale: their per-layer cumulative weights
        # derive from the backward table being dropped.
        self._backward = None
        self._cum.clear()
        self._finals_idx.clear()
        self._accel_state = {}
        return self

    def _materialize_owned(self) -> None:
        """Copy every borrowed (snapshot-backed) buffer into owned arrays.

        After this the kernel holds no reference into its snapshot
        buffer: edge blocks become fresh ``array('l')`` and count rows
        fresh ``array('q')`` (byte-identical contents — the borrow mode
        only engages on LP64), so in-place mutation is safe and the
        buffer can be unmapped.
        """
        for blocks in (self._edge_start, self._edge_symbol, self._edge_dst):
            for t, block in enumerate(blocks):
                if isinstance(block, memoryview):
                    fresh = array("l")
                    fresh.frombytes(block.tobytes())
                    blocks[t] = fresh
        for table in (self._forward, self._backward):
            if table is None:
                continue
            for t, row in enumerate(table):
                if isinstance(row, memoryview):
                    owned = array("q")
                    owned.frombytes(row.tobytes())
                    table[t] = owned
        self._accel_state = {}
        self._borrow_owner = None

    # ------------------------------------------------------------------
    # Integer-level structure
    # ------------------------------------------------------------------

    def layer_size(self, t: int) -> int:
        """Number of live states at layer ``t``."""
        return len(self._states[t])

    def layer_states(self, t: int) -> tuple[State, ...]:
        """Live states at layer ``t`` in index (= repr) order."""
        return self._states[t]

    def state_at(self, t: int, i: int) -> State:
        """The state object behind index ``i`` of layer ``t``."""
        return self._states[t][i]

    def index_of(self, t: int, state: State) -> int | None:
        """Local index of ``state`` at layer ``t`` (None when not live)."""
        return self._index[t].get(state)

    def symbol_at(self, i: int) -> Symbol:
        """The symbol object behind symbol index ``i``."""
        return self.symbols[i]

    def out_edge_range(self, t: int, i: int) -> tuple[int, int]:
        """Offsets ``[start, end)`` of vertex ``(t, i)``'s edges in the flat arrays."""
        starts = self._edge_start[t]
        return starts[i], starts[i + 1]

    def final_indices(self, t: int) -> tuple[int, ...]:
        """Indices of accepting states at layer ``t`` (ascending)."""
        cached = self._finals_idx.get(t)
        if cached is None:
            finals = self.nfa.finals
            cached = tuple(
                i for i, state in enumerate(self._states[t]) if state in finals
            )
            self._finals_idx[t] = cached
        return cached

    def _reverse_edges(self, t: int) -> tuple[_IntArray, _IntArray, _IntArray]:
        """Reverse CSR for edges into layer ``t`` (``1 ≤ t ≤ n``), keyed by dst."""
        cached = self._redge.get(t)
        if cached is not None:
            return cached
        if not 1 <= t <= self.n:
            raise ValueError(f"layer {t} has no incoming edges")
        edge_symbol = self._edge_symbol[t - 1]
        edge_dst = self._edge_dst[t - 1]
        edge_start = self._edge_start[t - 1]
        size = len(self._states[t])
        counts = [0] * size
        for j in edge_dst:
            counts[j] += 1
        starts = array("l", [0] * (size + 1))
        for j in range(size):
            starts[j + 1] = starts[j] + counts[j]
        fill = list(starts[:size])
        r_symbol = array("l", [0]) * len(edge_dst)
        r_src = array("l", r_symbol)
        for src in range(len(self._states[t - 1])):
            for e in range(edge_start[src], edge_start[src + 1]):
                j = edge_dst[e]
                slot = fill[j]
                r_symbol[slot] = edge_symbol[e]
                r_src[slot] = src
                fill[j] = slot + 1
        cached = (starts, r_symbol, r_src)
        self._redge[t] = cached
        return cached

    def in_edges_idx(self, t: int, i: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(symbol_idx, src_idx)`` over edges into vertex ``(t, i)``."""
        starts, r_symbol, r_src = self._reverse_edges(t)
        for e in range(starts[i], starts[i + 1]):
            yield r_symbol[e], r_src[e]

    def predecessor_groups(
        self, t: int, indices: Iterable[int]
    ) -> dict[Symbol, frozenset[int]]:
        """``{b: T_b}`` with ``T_b`` the layer-``t-1`` predecessor *indices*.

        The integer-indexed form of the paper's Algorithm 4 step 3 / the
        ``T_b(s_i^α)`` partition of Algorithm 5 — what the FPRAS's
        backward walks consume.
        """
        if t <= 0:
            return {}
        if self.accel is not None:
            indices = list(indices)
            accelerated = self.accel.predecessor_groups(self, t, indices)
            if accelerated is not None:
                return accelerated
            self._note_spill("predecessor_groups")
        starts, r_symbol, r_src = self._reverse_edges(t)
        grouped: dict[int, set[int]] = {}
        for i in indices:
            for e in range(starts[i], starts[i + 1]):
                grouped.setdefault(r_symbol[e], set()).add(r_src[e])
        symbols = self.symbols
        return {symbols[si]: frozenset(group) for si, group in grouped.items()}

    def step_indices(
        self, t: int, indices: Iterable[int], symbol: Symbol
    ) -> frozenset[int]:
        """Layer-``t+1`` indices reachable from ``indices`` by one ``symbol`` edge.

        The prefix-set step the FPRAS's membership machinery uses:
        reading a word through the kernel layer by layer yields exactly
        the ``reach`` sets of Algorithm 4 step 3(a), as local indices.
        """
        symbol_i = self._symbol_index.get(symbol)
        if symbol_i is None or t >= self.n:
            return frozenset()
        if self.accel is not None:
            indices = list(indices)
            accelerated = self.accel.step_indices(self, t, indices, symbol_i)
            if accelerated is not None:
                return accelerated
            self._note_spill("step_indices")
        starts = self._edge_start[t]
        edge_symbol = self._edge_symbol[t]
        edge_dst = self._edge_dst[t]
        out: set[int] = set()
        for i in indices:
            for e in range(starts[i], starts[i + 1]):
                if edge_symbol[e] == symbol_i:
                    out.add(edge_dst[e])
        return frozenset(out)

    # ------------------------------------------------------------------
    # Run-count tables (array-backed, bignum-spill)
    # ------------------------------------------------------------------

    def _forward_step(self, t: int, current: Sequence[int]) -> list[int]:
        nxt = [0] * len(self._states[t + 1])
        starts = self._edge_start[t]
        edge_dst = self._edge_dst[t]
        for i, ways in enumerate(current):
            if not ways:
                continue
            for e in range(starts[i], starts[i + 1]):
                nxt[edge_dst[e]] += ways
        return nxt

    def forward_counts(self) -> list[CountRow]:
        """``table[t][i]`` = number of length-``t`` paths start → ``(t, i)``."""
        if self._forward is None:
            table = self.accel.forward_table(self) if self.accel is not None else None
            if table is None:
                if self.accel is not None:
                    self._note_spill("forward_table")
                first = [0] * len(self._states[0])
                i0 = self._index[0].get(self.nfa.initial)
                if i0 is not None:
                    first[i0] = 1
                table = [_pack_counts(first)]
                for t in range(self.n):
                    table.append(_pack_counts(self._forward_step(t, table[t])))
            self._forward = table
        return self._forward

    def backward_counts(self) -> list[CountRow]:
        """``table[t][i]`` = number of paths ``(t, i)`` → accepting layer-``n`` states."""
        if self._backward is None and self.accel is not None:
            self._backward = self.accel.backward_table(self)
            if self._backward is None:
                self._note_spill("backward_table")
        if self._backward is None:
            n = self.n
            last = [0] * len(self._states[n])
            for i in self.final_indices(n):
                last[i] = 1
            # Built back-to-front (rows[-1] is always table[t + 1]),
            # then reversed into layer order.
            rows: list[CountRow] = [_pack_counts(last)]
            for t in range(n - 1, -1, -1):
                starts = self._edge_start[t]
                edge_dst = self._edge_dst[t]
                nxt = rows[-1]
                current = [0] * len(self._states[t])
                for i in range(len(current)):
                    total = 0
                    for e in range(starts[i], starts[i + 1]):
                        total += nxt[edge_dst[e]]
                    current[i] = total
                rows.append(_pack_counts(current))
            rows.reverse()
            self._backward = rows
        return self._backward

    @property
    def total_runs(self) -> int:
        """Number of accepting runs of length ``n`` (= words iff unambiguous)."""
        back = self.backward_counts()
        i0 = self._index[0].get(self.nfa.initial)
        return back[0][i0] if i0 is not None else 0

    def spectrum_counts(self) -> list[int]:
        """``[|runs_0|, …, |runs_n|]`` — per-length accepting-run counts.

        One forward table read per layer: the whole spectrum costs a
        single compilation instead of ``n`` separate unrollings.  Only
        meaningful on reachable-mode kernels (trimmed layers are pruned
        against length-``n`` acceptance, which would zero shorter
        lengths' finals).
        """
        forward = self.forward_counts()
        return [
            sum(forward[t][i] for i in self.final_indices(t))
            for t in range(self.n + 1)
        ]

    def forward_dicts(self) -> list[dict[State, int]]:
        """The forward table in the seed ``list[dict[State, int]]`` shape."""
        forward = self.forward_counts()
        return [
            {
                self._states[t][i]: ways
                for i, ways in enumerate(forward[t])
                if ways
            }
            for t in range(self.n + 1)
        ]

    def backward_dicts(self) -> list[dict[State, int]]:
        """The backward table in the seed ``list[dict[State, int]]`` shape."""
        backward = self.backward_counts()
        return [
            {
                self._states[t][i]: ways
                for i, ways in enumerate(backward[t])
                if ways
            }
            for t in range(self.n + 1)
        ]

    # ------------------------------------------------------------------
    # Uniform run sampling (table-guided walks)
    # ------------------------------------------------------------------

    def _cum_weights(self, t: int, i: int) -> list[int]:
        """Cumulative backward weights over vertex ``(t, i)``'s edge block."""
        key = (t, i)
        cached = self._cum.get(key)
        if cached is None:
            start, end = self.out_edge_range(t, i)
            nxt = self.backward_counts()[t + 1]
            edge_dst = self._edge_dst[t]
            cached = []
            running = 0  # exact bignum accumulation; never packed
            for e in range(start, end):
                running += nxt[edge_dst[e]]
                cached.append(running)
            self._cum[key] = cached
        return cached

    def sample_word(self, generator: Random) -> Word:
        """One exactly-uniform accepting *run*'s word (uniform over words
        iff the automaton is unambiguous — the Section 5.3.3 chain)."""
        if self.total_runs == 0:
            raise EmptyWitnessSetError(f"the automaton accepts no word of length {self.n}")
        backward = self.backward_counts()
        symbols = self.symbols
        state = self._index[0][self.nfa.initial]
        out: list[Symbol] = []
        for t in range(self.n):
            cum = self._cum_weights(t, state)
            pick = generator.randrange(backward[t][state])
            e = self._edge_start[t][state] + bisect_right(cum, pick)
            out.append(symbols[self._edge_symbol[t][e]])
            state = self._edge_dst[t][e]
        return tuple(out)

    def sample_batch(self, k: int, generator: Random | Sequence[Random]) -> list[Word]:
        """``k`` independent uniform draws in one table-guided pass.

        Walks all ``k`` samples layer by layer, grouping the in-flight
        samples by current vertex so each vertex's cumulative-weight
        block and edge offsets are resolved once per layer instead of
        once per sample — same chain, same distribution, much less
        interpreter overhead than ``k`` independent :meth:`sample_word`
        walks.

        ``generator`` may be one shared ``Random`` (the classic batched
        draw) or a sequence of ``k`` per-sample generators (deterministic
        substreams, see :func:`repro.utils.rng.spawn_seq`).  With
        per-sample streams, draw ``i`` consumes only ``generator[i]``, so
        its result depends solely on its own stream and not on which
        other draws share the pass — what makes coalesced service
        batches byte-identical to serving each request alone.
        """
        if k < 0:
            raise ValueError("sample count must be ≥ 0")
        if k == 0:
            return []
        if self.total_runs == 0:
            raise EmptyWitnessSetError(f"the automaton accepts no word of length {self.n}")
        randranges: list[Callable[[int], int]]
        if isinstance(generator, Random):
            randranges = [generator.randrange] * k
        else:
            if len(generator) != k:
                raise ValueError(
                    f"need one generator per draw: got {len(generator)} for k={k}"
                )
            randranges = [g.randrange for g in generator]
        if self.accel is not None:
            # Consumes the randrange draws in exactly the pure order, so
            # a None fallback (spilled rows) happens before any draw.
            accelerated = self.accel.sample_batch(self, k, randranges)
            if accelerated is not None:
                return accelerated
            self._note_spill("sample_batch")
        backward = self.backward_counts()
        symbols = self.symbols
        states = [self._index[0][self.nfa.initial]] * k
        words: list[list[Symbol]] = [[] for _ in range(k)]
        for t in range(self.n):
            groups: dict[int, list[int]] = {}
            for sample_id, i in enumerate(states):
                group = groups.get(i)
                if group is None:
                    groups[i] = [sample_id]
                else:
                    group.append(sample_id)
            starts = self._edge_start[t]
            edge_symbol = self._edge_symbol[t]
            edge_dst = self._edge_dst[t]
            for i, members in groups.items():
                base = starts[i]
                cum = self._cum_weights(t, i)
                total = backward[t][i]
                for sample_id in members:
                    e = base + bisect_right(cum, randranges[sample_id](total))
                    words[sample_id].append(symbols[edge_symbol[e]])
                    states[sample_id] = edge_dst[e]
        return [tuple(w) for w in words]

    # ------------------------------------------------------------------
    # Snapshots (the service layer's persistence format)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize this kernel into the compact binary snapshot format.

        Round-trips the CSR edge arrays, the per-layer state index maps
        and whichever run-count tables (including bignum-spill rows) have
        been built, so a restored kernel answers count / sample /
        spectrum queries without re-lowering.  See
        :mod:`repro.service.snapshot` for the format.
        """
        from repro.service.snapshot import kernel_to_bytes

        return kernel_to_bytes(self)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        source_resolver: Callable[[], AutomatonSource] | None = None,
    ) -> "CompiledDAG":
        """Restore a kernel from :meth:`to_bytes` output.

        ``source_resolver`` optionally supplies a zero-argument callable
        returning the original automaton/plan source; it is only invoked
        if the restored kernel is asked to :meth:`extend_to` a greater
        length (the one operation that needs transitions beyond the
        snapshot).
        """
        from repro.service.snapshot import kernel_from_bytes

        return kernel_from_bytes(data, source_resolver=source_resolver)

    @classmethod
    def from_mmap(
        cls,
        path: str | os.PathLike[str],
        source_resolver: Callable[[], AutomatonSource] | None = None,
    ) -> "CompiledDAG":
        """Restore a kernel that *borrows* its arrays from an mmap of ``path``.

        Instead of copying the snapshot into fresh arrays, the CSR
        blocks and packed count rows become int64 memoryviews over the
        mapped file, so a warm start pages data in lazily on first
        touch.  :meth:`extend_to` copies-on-extend before mutating.
        Requires a version ≥ 2 snapshot and an LP64 platform; otherwise
        this quietly degrades to a full-copy restore (and the mapping is
        closed).  See :func:`repro.service.snapshot.kernel_from_mmap`.
        """
        from repro.service.snapshot import kernel_from_mmap

        return kernel_from_mmap(path, source_resolver=source_resolver)

    # ------------------------------------------------------------------
    # UnrolledDAG-compatible adapter views (the paper-facing s_t^j API)
    # ------------------------------------------------------------------

    @property
    def layers(self) -> list[frozenset[State]]:
        """All live-state sets, in the :class:`UnrolledDAG` shape."""
        return [self.layer(t) for t in range(self.n + 1)]

    def layer(self, t: int) -> frozenset[State]:
        """Live states at layer ``t`` (0 ≤ t ≤ n)."""
        cached = self._layer_sets.get(t)
        if cached is None:
            cached = frozenset(self._states[t])
            self._layer_sets[t] = cached
        return cached

    @property
    def final_states(self) -> frozenset[State]:
        """Live accepting states at the last layer."""
        states = self._states[self.n]
        return frozenset(states[i] for i in self.final_indices(self.n))

    @property
    def is_empty(self) -> bool:
        """True iff the automaton accepts no word of length ``n``."""
        return not self.final_indices(self.n)

    def successors(self, t: int, state: State) -> Iterator[tuple[Symbol, State]]:
        """Edges from vertex ``(t, state)`` into layer ``t + 1`` (live only)."""
        if t >= self.n:
            return
        i = self._index[t].get(state)
        if i is None:
            return
        symbols = self.symbols
        states_next = self._states[t + 1]
        edge_symbol = self._edge_symbol[t]
        edge_dst = self._edge_dst[t]
        start, end = self.out_edge_range(t, i)
        for e in range(start, end):
            yield symbols[edge_symbol[e]], states_next[edge_dst[e]]

    def ordered_successors(self, t: int, state: State) -> list[tuple[Symbol, State]]:
        """Successor edges in the fixed (repr, repr) total order.

        The CSR blocks are already stored in that order, so this is a
        plain materialization — no per-call sort.
        """
        return list(self.successors(t, state))

    def predecessors(self, t: int, state: State, symbol: Symbol) -> frozenset[State]:
        """Live states ``p`` at layer ``t - 1`` with ``p --symbol--> state``."""
        if t <= 0:
            return frozenset()
        i = self._index[t].get(state)
        if i is None:
            return frozenset()
        symbol_i = self._symbol_index.get(symbol)
        if symbol_i is None:
            return frozenset()
        states_prev = self._states[t - 1]
        return frozenset(
            states_prev[src] for si, src in self.in_edges_idx(t, i) if si == symbol_i
        )

    def predecessor_sets(
        self, t: int, states: frozenset[State]
    ) -> dict[Symbol, frozenset[State]]:
        """For each symbol b, the set ``T_b`` of layer-(t-1) predecessors (as states)."""
        index = self._index[t]
        indices = [index[state] for state in states if state in index]
        states_prev = self._states[t - 1] if t >= 1 else ()
        return {
            symbol: frozenset(states_prev[i] for i in group)
            for symbol, group in self.predecessor_groups(t, indices).items()
        }

    def vertex_count(self) -> int:
        """Total number of live vertices across all layers."""
        return sum(len(states) for states in self._states)

    def edge_count(self) -> int:
        """Total number of live edges."""
        return sum(len(block) for block in self._edge_dst)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        mode = "trimmed" if self.trimmed else "reachable"
        return (
            f"<CompiledDAG n={self.n} {mode} vertices={self.vertex_count()} "
            f"edges={self.edge_count()}>"
        )


def compile_nfa(nfa: NFA, n: int, trimmed: bool = True) -> CompiledDAG:
    """Compile ``nfa``'s length-``n`` unrolling straight to the kernel.

    ``trimmed=True`` gives the Lemma 15 pruning (count / sample /
    enumerate); ``trimmed=False`` the reachable-only FPRAS / spectrum
    view, which supports :meth:`CompiledDAG.extend_to`.
    """
    return CompiledDAG(nfa.without_epsilon(), n, trimmed)


def kernel_matches_nfa(kernel: CompiledDAG, nfa: NFA) -> bool:
    """Does ``kernel`` plausibly describe the same language as ``nfa``?

    NFA-compiled kernels compare exactly.  Plan-lowered kernels carry a
    symbolic source whose language cannot be compared without the
    materialization the plan route avoids, so they are only *sanity*
    checked on the cheap invariants a matching facade pairing always
    satisfies — same initial state and same alphabet (a plan's
    :meth:`~repro.core.plan.Plan.to_nfa` rendering preserves both).
    That catches accidental cross-alphabet mixups but NOT two unrelated
    plans sharing both labels; callers handing a plan-lowered kernel to
    these expert constructors are responsible for the pairing.  The
    strict guard lives one level up: :mod:`repro.backends` checks plan
    *identity* against the witness set (``_check_kernel_source``), which
    is the supported ``kernel=`` override surface.
    """
    source = kernel.nfa
    if isinstance(source, NFA):
        return source == nfa
    return source.initial == nfa.initial and source.alphabet == nfa.alphabet


def as_kernel(dag: UnrolledDAG | CompiledDAG) -> CompiledDAG:
    """Coerce an :class:`UnrolledDAG` (or kernel) into a :class:`CompiledDAG`."""
    if isinstance(dag, CompiledDAG):
        return dag
    return CompiledDAG.from_unrolled(dag)


__all__ = [
    "AutomatonSource",
    "CompiledDAG",
    "CountRow",
    "as_kernel",
    "compile_nfa",
    "kernel_matches_nfa",
]
