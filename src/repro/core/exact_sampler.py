"""Exact uniform generation for unambiguous NFAs (Section 5.3.3).

The paper's generator walks the self-reduction: at each step it computes
the exact counts of witnesses extending the current prefix by each symbol
(via the polynomial-time counter of Section 5.3.2 applied to ψ-reduced
automata), picks a symbol with probability proportional to its count, and
recurses.  The telescoping product in Section 5.3.3 shows the resulting
distribution is exactly uniform.

Two implementations:

* :func:`sample_word_ufa` — the production sampler.  Mathematically the
  same chain, but instead of rebuilding ψ-automata it walks the unrolled
  DAG with a precomputed *backward run-count table* (``#completions`` per
  vertex).  One table build is O(n·|δ|), then every sample costs
  O(n·deg) bignum work.  Sampling uses ``Random.randrange`` over exact
  integer cumulative sums — no floating point, so the distribution is
  *exactly* uniform, matching the paper's claim (not merely almost
  uniform).
* :func:`sample_word_ufa_via_psi` — the letter-for-letter Section 5.3.3
  procedure (build ψ twice per step, count each side, flip the coin).
  Quadratically slower; kept as a cross-validation oracle — the test
  suite checks both samplers agree in distribution.

Both raise :class:`EmptyWitnessSetError` when ``L_n(N) = ∅`` (callers
preferring the paper's ⊥ convention use :func:`sample_word_ufa_or_none`).
"""

from __future__ import annotations

import random

from repro.automata.nfa import NFA, Word
from repro.automata.unambiguous import require_unambiguous
from repro.core.exact import count_accepting_runs_of_length
from repro.core.kernel import CompiledDAG, as_kernel, compile_nfa
from repro.core.selfreduce import SelfReduction
from repro.core.unroll import UnrolledDAG
from repro.errors import EmptyWitnessSetError
from repro.utils.rng import make_rng


class ExactUniformSampler:
    """Reusable exact uniform sampler over ``L_n(nfa)`` for unambiguous ``nfa``.

    Compiles the pruned unrolling into the integer-indexed
    :class:`~repro.core.kernel.CompiledDAG` once (edge arrays plus the
    backward count table); every :meth:`sample` is then an O(n·log deg)
    table-guided walk, and :meth:`sample_batch` draws many witnesses in a
    single layer-by-layer pass.  Amortizes the Section 5.3.3
    preprocessing across many draws, which is how the uniform-generation
    experiments (E7) use it.  A caller that already holds the compiled
    kernel (e.g. the :class:`repro.api.WitnessSet` facade) passes it as
    ``kernel``; ``dag`` accepts a Lemma 15 trimmed :class:`UnrolledDAG`
    of an ε-free unambiguous automaton and lowers it (``back`` is
    accepted for backward compatibility but no longer consulted — the
    kernel owns its count tables).
    """

    def __init__(
        self,
        nfa: NFA,
        n: int,
        check: bool = True,
        dag: UnrolledDAG | None = None,
        back: list | None = None,
        kernel: CompiledDAG | None = None,
    ):
        if kernel is None:
            if dag is not None:
                kernel = as_kernel(dag)
            else:
                prepared = (
                    require_unambiguous(nfa, context="exact uniform sampling")
                    if check
                    else nfa.without_epsilon()
                )
                kernel = compile_nfa(prepared, n, trimmed=True)
        self.n = n
        self.kernel: CompiledDAG = kernel
        #: Adapter view kept for callers that walked ``sampler.dag``.
        self.dag = kernel
        self.total = kernel.total_runs

    @property
    def count(self) -> int:
        """|L_n(N)| — a byproduct of the table build."""
        return self.total

    @property
    def back(self) -> list:
        """The backward table in the seed dict shape (compat view)."""
        return self.kernel.backward_dicts()

    def sample(self, rng: random.Random | int | None = None) -> Word:
        """Draw one exactly-uniform word of ``L_n(N)``.

        Raises :class:`EmptyWitnessSetError` on an empty witness set.
        """
        return self.kernel.sample_word(make_rng(rng))

    def sample_batch(self, count: int, rng=None) -> list[Word]:
        """``count`` independent uniform witnesses in one table-guided pass.

        Same distribution as ``count`` calls to :meth:`sample` (each
        draw walks the identical Section 5.3.3 chain) but the per-layer
        grouping resolves each vertex's weights once per layer, not once
        per draw.  ``rng`` may also be a sequence of ``count`` per-draw
        generators (deterministic substreams — see
        :meth:`CompiledDAG.sample_batch`).  Raises
        :class:`EmptyWitnessSetError` when ``W = ∅``.
        """
        if isinstance(rng, (list, tuple)):
            return self.kernel.sample_batch(count, rng)
        return self.kernel.sample_batch(count, make_rng(rng))

    def sample_many(self, count: int, rng: random.Random | int | None = None) -> list[Word]:
        generator = make_rng(rng)
        return [self.sample(generator) for _ in range(count)]


def sample_word_ufa(
    nfa: NFA, n: int, rng: random.Random | int | None = None, check: bool = True
) -> Word:
    """One-shot exact uniform sample from ``L_n(nfa)`` (unambiguous ``nfa``)."""
    return ExactUniformSampler(nfa, n, check=check).sample(rng)


def sample_word_ufa_or_none(
    nfa: NFA, n: int, rng: random.Random | int | None = None, check: bool = True
) -> Word | None:
    """Like :func:`sample_word_ufa` but returns None (the paper's ⊥) when empty."""
    sampler = ExactUniformSampler(nfa, n, check=check)
    if sampler.count == 0:
        return None
    return sampler.sample(rng)


def sample_word_ufa_via_psi(
    nfa: NFA, n: int, rng: random.Random | int | None = None, check: bool = True
) -> Word:
    """The literal Section 5.3.3 sampler, via ψ-reductions and recounting.

    At step ``k'``: build ``ψ((N', 0^{k'}), a)`` for every symbol ``a``,
    count each reduced automaton's witnesses with the exact counter, and
    choose a symbol with probability ``count_a / Σ count``.  The paper
    writes the binary case; this is the obvious Σ-ary generalization.

    O(n · |Σ| · (ψ cost + counting cost)) per sample — the reference
    implementation against which :func:`sample_word_ufa` is validated.
    """
    prepared = (
        require_unambiguous(nfa, context="exact uniform sampling (ψ route)")
        if check
        else nfa.without_epsilon()
    )
    generator = make_rng(rng)
    current = SelfReduction(prepared, n)
    if count_accepting_runs_of_length(current.nfa, current.k) == 0:
        raise EmptyWitnessSetError(f"the automaton accepts no word of length {n}")
    symbols_out: list = []
    ordered_alphabet = sorted(prepared.alphabet, key=repr)
    while current.strip_count() > 0:
        weighted: list[tuple] = []
        for symbol in ordered_alphabet:
            reduced = current.step(symbol)
            weight = count_accepting_runs_of_length(reduced.nfa, reduced.k)
            if weight:
                weighted.append((symbol, reduced, weight))
        total = sum(weight for _, _, weight in weighted)
        pick = generator.randrange(total)
        accumulated = 0
        for symbol, reduced, weight in weighted:
            accumulated += weight
            if pick < accumulated:
                symbols_out.append(symbol)
                current = reduced
                break
    return tuple(symbols_out)
