"""Self-reducibility of MEM-NFA / MEM-UFA (Section 5.2).

The paper equips its complete problems with the self-reduction structure
of [Sch09]: three polynomial-time functions

* ``ℓ(x)``  — the witness length of input ``x``,
* ``σ(x)``  — how many leading witness symbols one reduction step strips
  (here 1, whenever witnesses are nonempty),
* ``ψ(x, w)`` — a *smaller* input whose witnesses are the witnesses of
  ``x`` that start with ``w``, with that prefix removed,

satisfying conditions (1)–(8) listed in Section 5.2.  For MEM-NFA the
interesting function is ψ: given ``(N, 0^k)`` and a symbol ``w``, merge
the first "layer" ``Q_w = δ(q_0, w)`` into a fresh initial state ``q_0'``
while rerouting every transition that touched ``Q_w`` — the construction
spelled out in the middle of Section 5.2, including the final-state
repair.  The construction never increases the number of states or
transitions, which is what gives condition (5) ``|ψ(x, w)| ≤ |x|``.

This module implements ψ exactly as stated (plus its multi-final-state
generalization) and exposes the three functions both standalone and
bundled in :class:`SelfReduction`.  The exact UFA sampler of Section
5.3.3 has a ψ-based reference implementation in
:mod:`repro.core.exact_sampler` that the tests compare against the fast
DP sampler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.nfa import NFA, Symbol


FRESH_INITIAL = ("psi", "q0'")


def _fresh_initial(states: frozenset):
    """A fresh-initial label that cannot collide, even across iterated ψ."""
    fresh = FRESH_INITIAL
    depth = 0
    while fresh in states:
        depth += 1
        fresh = ("psi", "q0'", depth)
    return fresh


def psi(nfa: NFA, k: int, symbol: Symbol) -> tuple[NFA, int]:
    """One self-reduction step: ``ψ((N, 0^k), w) = (N', 0^{k-1})``.

    ``N'`` accepts exactly ``{y : w·y ∈ L_k(N)}`` as its length-(k-1)
    words.

    **Deviation from the paper (documented in DESIGN.md §5).**  The
    paper's construction *merges* the whole first layer ``Q_w = δ(q₀, w)``
    into one fresh initial state, rerouting every edge that touched
    ``Q_w``.  Property-based testing during this reproduction found that
    the merge is unsound when ``|Q_w| ≥ 2`` and ``Q_w`` states are
    re-enterable later in the word: a run can enter the merged state
    simulating one member of ``Q_w`` and leave simulating another,
    accepting words outside the residual language (the paper proves the
    forward run-correspondence in detail and asserts the converse is
    "analogous" — the converse is where this fails).  See
    :func:`psi_paper_merge` and the regression test for a concrete
    counterexample.  When ``|Q_w| ≤ 1`` — in particular for every DFA —
    the merge is correct.

    We therefore use the standard residual construction: keep the
    automaton intact and add a fresh initial state ``q₀'`` carrying a copy
    of each out-edge of each member of ``Q_w`` (final iff ``Q_w`` meets
    the final set).  This is exactly the quotient the paper *intends*
    (``W(N') = w⁻¹·W(N)``), costs one extra state and at most
    ``Σ_{p ∈ Q_w} outdeg(p)`` extra transitions per step — still
    polynomial, which is all the uniform-generation argument of Section
    5.3.3 uses.  The strict monotone-size condition (5) of [Sch09] holds
    for the state count up to the +1 fresh state; our tests check the
    polynomial-boundedness that the algorithms actually rely on.

    Raises
    ------
    ValueError
        If ``k <= 0`` (σ = 0 inputs have no reduction step) or the symbol
        is not in the alphabet.
    """
    if k <= 0:
        raise ValueError("ψ is only defined for inputs with positive witness length")
    stripped = nfa.without_epsilon()
    if symbol not in stripped.alphabet:
        raise ValueError(f"symbol {symbol!r} not in the alphabet")

    q_w = stripped.successors(stripped.initial, symbol)
    fresh = _fresh_initial(stripped.states)

    if not q_w:
        # No w-successor: the residual language is empty.  Return the
        # canonical empty automaton of the right alphabet (a correctly
        # encoded input with no witnesses, per the paper's conventions).
        return NFA([fresh], stripped.alphabet, [], fresh, []), k - 1

    transitions: set = set(stripped.transitions)
    for member in q_w:
        for a, target in stripped.out_edges(member):
            transitions.add((fresh, a, target))
    finals = set(stripped.finals)
    if stripped.finals & q_w:
        finals.add(fresh)
    reduced = NFA(
        set(stripped.states) | {fresh}, stripped.alphabet, transitions, fresh, finals
    )
    # Trimming keeps the iterated chain from accumulating dead states, so
    # sizes stay bounded by the original automaton's (plus one).
    return reduced.trim(), k - 1


def psi_paper_merge(nfa: NFA, k: int, symbol: Symbol) -> tuple[NFA, int]:
    """The paper's literal §5.2 merge construction — kept for study.

    Sound when ``|Q_w| ≤ 1`` (e.g. deterministic automata); for
    ``|Q_w| ≥ 2`` with re-enterable ``Q_w`` states it may accept words
    outside the residual language — see :func:`psi` for the analysis and
    ``tests/test_selfreduce.py`` for the regression counterexample.  It
    does satisfy the strict size condition (5): states and transitions
    never increase.
    """
    if k <= 0:
        raise ValueError("ψ is only defined for inputs with positive witness length")
    stripped = nfa.without_epsilon()
    if symbol not in stripped.alphabet:
        raise ValueError(f"symbol {symbol!r} not in the alphabet")

    q_w = stripped.successors(stripped.initial, symbol)
    fresh = _fresh_initial(stripped.states)
    if not q_w:
        return NFA([fresh], stripped.alphabet, [], fresh, []), k - 1

    kept = stripped.states - q_w
    new_states = set(kept) | {fresh}
    transitions: set = set()
    for source, a, target in stripped.transitions:
        source_in = source in q_w
        target_in = target in q_w
        if not source_in and not target_in:
            transitions.add((source, a, target))
        elif not source_in and target_in:
            transitions.add((source, a, fresh))
        elif source_in and not target_in:
            transitions.add((fresh, a, target))
        else:
            transitions.add((fresh, a, fresh))

    finals = set(stripped.finals & kept)
    if stripped.finals & q_w:
        finals.add(fresh)
    return NFA(new_states, stripped.alphabet, transitions, fresh, finals), k - 1


def ell(nfa: NFA, k: int) -> int:
    """The paper's ℓ: witness length of ``(N, 0^k)`` — just ``k``.

    (For incorrectly encoded inputs ℓ is 0; at the Python level such
    inputs cannot be constructed, so ℓ is total here.)
    """
    if k < 0:
        raise ValueError("k must be ≥ 0")
    return k


def sigma(nfa: NFA, k: int) -> int:
    """The paper's σ: 1 when witnesses are nonempty, else 0."""
    return 1 if k > 0 else 0


def empty_word_is_witness(nfa: NFA) -> bool:
    """Condition (2) of self-reducibility: the ℓ = 0 membership test.

    The empty word is a witness of ``(N, 0^0)`` iff the initial state is
    accepting (after ε-closure).
    """
    stripped = nfa  # ε allowed: closure handles it
    return bool(stripped.epsilon_closure({stripped.initial}) & stripped.finals)


@dataclass(frozen=True)
class SelfReduction:
    """The (ℓ, σ, ψ) bundle for a MEM-NFA instance, as one object.

    Mainly a convenience for code that follows the paper's notation —
    e.g. the ψ-based reference sampler and the condition-(1)–(8) property
    tests.
    """

    nfa: NFA
    k: int

    def length(self) -> int:
        return ell(self.nfa, self.k)

    def strip_count(self) -> int:
        return sigma(self.nfa, self.k)

    def step(self, symbol: Symbol) -> "SelfReduction":
        reduced, new_k = psi(self.nfa, self.k, symbol)
        return SelfReduction(reduced, new_k)

    def descend(self, prefix: tuple) -> "SelfReduction":
        """Iterate ψ along a whole witness prefix."""
        current = self
        for symbol in prefix:
            current = current.step(symbol)
        return current

    def structural_size(self) -> tuple[int, int]:
        """(states, transitions) — the quantity condition (5) bounds."""
        return (self.nfa.num_states, self.nfa.num_transitions)
