"""Exact counting (Section 5.3.2) and the DP tables behind it.

For an *unambiguous* NFA, accepted words of length ``n`` are in bijection
with accepting runs, and accepting runs are counted by the obvious
layer-by-layer dynamic program — the paper phrases this as membership of
the function in ``#L`` (and hence ``FP``); the DP below is the standard
polynomial-time evaluation of that #L function.  All arithmetic is exact
Python bignum.

Provided:

* :func:`count_accepting_runs_of_length` — the raw run-count DP (any NFA).
* :func:`count_words_ufa` — exact ``|L_n(N)|`` for unambiguous ``N``
  (checks unambiguity unless told not to).
* :func:`count_words_exact` — exact ``|L_n(N)|`` for *any* NFA via
  on-the-fly subset construction: exponential worst case, the baseline the
  FPRAS is measured against.
* :func:`forward_run_table` / :func:`backward_run_table` — per-layer count
  tables reused by the exact sampler and the enumerator.
* :func:`length_spectrum` — counts across a range of lengths.

All table computation runs on the integer-indexed
:class:`~repro.core.kernel.CompiledDAG` arrays; the dict-shaped tables
these functions return are adapter views over the packed rows.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.nfa import NFA, State
from repro.automata.unambiguous import require_unambiguous
from repro.core.kernel import CompiledDAG, as_kernel, compile_nfa
from repro.core.unroll import UnrolledDAG


def forward_run_table(dag: UnrolledDAG | CompiledDAG) -> list[dict[State, int]]:
    """``table[t][q]`` = number of length-``t`` paths start → ``(t, q)``.

    Counts *runs* (paths), not words; the two coincide exactly on
    unambiguous automata, which is the content of Section 5.3.2.  The DP
    runs over the integer-indexed :class:`CompiledDAG` kernel (an
    :class:`UnrolledDAG` argument is lowered first); this adapter renders
    the array rows back into the per-state dict shape.
    """
    return as_kernel(dag).forward_dicts()


def backward_run_table(dag: UnrolledDAG | CompiledDAG) -> list[dict[State, int]]:
    """``table[t][q]`` = number of length-``(n - t)`` paths ``(t, q)`` → finals.

    The sampler's lookahead table: at layer ``t`` it tells each live state
    how many accepting completions it has.  Computed on the kernel's flat
    edge arrays; states with zero completions are omitted from the dicts,
    matching the seed implementation.
    """
    return as_kernel(dag).backward_dicts()


def count_accepting_runs_of_length(nfa: NFA, n: int) -> int:
    """Number of accepting *runs* of length ``n`` (any ε-free NFA).

    O(n·|δ|) time, bignum-exact.  Equals ``|L_n(N)|`` iff ``N`` is
    unambiguous at length ``n``.
    """
    return compile_nfa(nfa, n, trimmed=False).total_runs


def count_words_ufa(nfa: NFA, n: int, check: bool = True) -> int:
    """Exact ``|L_n(N)|`` for an unambiguous NFA (Section 5.3.2).

    With ``check=True`` (default) the automaton's unambiguity is verified
    first (O(m²·|Σ|)); pass ``check=False`` when the caller already holds
    a certificate (e.g. the automaton came from a determinization).

    Raises
    ------
    AmbiguityError
        If ``check`` is on and the automaton is ambiguous — silently
        returning a run count would over-report the number of words.
    """
    if check:
        nfa = require_unambiguous(nfa, context="exact word counting")
    else:
        nfa = nfa.without_epsilon()
    return count_accepting_runs_of_length(nfa, n)


def count_words_exact(nfa: NFA, n: int) -> int:
    """Exact ``|L_n(N)|`` for an arbitrary NFA, via subset-construction DP.

    ``counts[S]`` = number of distinct length-``t`` words whose reachable
    state set is exactly ``S``; each word extends deterministically, so
    summing over accepting subsets at layer ``n`` is exact.  The number of
    distinct subsets encountered bounds the cost — exponential in the
    worst case.  This is the ground-truth baseline for the FPRAS
    experiments (and the reason an FPRAS is needed at all).
    """
    stripped = nfa.without_epsilon()
    counts: dict[frozenset, int] = {frozenset({stripped.initial}): 1}
    for _ in range(n):
        nxt: dict[frozenset, int] = {}
        for subset, ways in counts.items():
            for symbol in stripped.alphabet:
                target: set = set()
                for state in subset:
                    target |= stripped.successors(state, symbol)
                if target:
                    key = frozenset(target)
                    nxt[key] = nxt.get(key, 0) + ways
        counts = nxt
    return sum(ways for subset, ways in counts.items() if subset & stripped.finals)


def length_spectrum(nfa: NFA, lengths: Sequence[int], exact_nfa: bool = False) -> dict[int, int]:
    """``{n: |L_n(N)|}`` for each requested length.

    With ``exact_nfa=False`` the automaton must be unambiguous (fast DP);
    with ``exact_nfa=True`` the subset-construction count is used instead.
    """
    if exact_nfa:
        return {n: count_words_exact(nfa, n) for n in lengths}
    stripped = require_unambiguous(nfa, context="length spectrum")
    lengths = list(lengths)
    if not lengths:
        return {}
    # One reachable-mode compilation at the maximum length answers every
    # requested length from its per-layer forward counts — a linear sweep
    # instead of one unrolling per length.
    spectrum = compile_nfa(stripped, max(lengths), trimmed=False).spectrum_counts()
    return {n: spectrum[n] for n in lengths}


def run_count_by_word(nfa: NFA, n: int) -> dict[tuple, int]:
    """Map every accepted length-``n`` word to its number of accepting runs.

    Brute force (enumerates the language) — diagnostics and tests only.
    The multiset of values is the "ambiguity profile" that governs the
    naive Monte Carlo estimator's variance (Section 6.1).
    """
    from repro.automata.operations import words_of_length

    stripped = nfa.without_epsilon()
    return {
        w: stripped.count_accepting_runs(w) for w in words_of_length(stripped, n)
    }
