"""NL-transducers and the Lemma 13 compilation to NFAs.

The paper's machine model (Section 3): a nondeterministic Turing machine
with a read-only input tape, a write-only left-to-right output tape, and a
work tape restricted to O(log |x|) cells.  The set of outputs ``M(x)``
over all accepting runs defines the relation ``R(M)``; unambiguous
machines (one accepting run per output) define RelationUL.

Lemma 13 is the bridge to automata: on input ``x`` the machine has only
polynomially many configurations ``(state, input head, work head, work
tape)``, so the *configuration graph* — edges labelled by the symbol
output during the step, or ε for silent steps — is a polynomial-size NFA
``N_x`` with ``L(N_x) = M(x)``.  Two levels of API:

* :class:`TuringTransducer` — the faithful tape-level model.  Configura-
  tions are explicit tuples, the logspace bound is enforced (the work
  tape has exactly ``⌈c·log₂(|x|+2)⌉ + d`` cells), and
  :meth:`TuringTransducer.configuration_nfa` is the literal Lemma 13
  construction.
* :class:`ConfigGraphTransducer` — the pragmatic model: the user supplies
  the configuration graph directly (initial configuration, successor
  function with optional output, acceptance predicate) plus a bound on
  the number of configurations.  This captures exactly what Lemma 13
  uses about the machine while sparing applications the tape plumbing;
  the SAT-DNF transducer of Section 3 and the Section 4 applications are
  written this way, with configurations that are logspace-describable
  tuples (indices into the input).

Both compile through :func:`compile_to_nfa`, which BFSes the reachable
configurations, builds the ε-labelled NFA, removes ε and trims — yielding
``(N_x, k)`` with ``W_R(x) = L_k(N_x)``, ready for every algorithm in
:mod:`repro.core`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator

from repro.automata.nfa import EPSILON, NFA
from repro.errors import InvalidAutomatonError, InvalidRelationInputError

Config = Hashable
Output = Hashable

#: Work-tape blank symbol for TuringTransducer.
BLANK = "␣"
#: Input-tape end markers.
LEFT_MARK, RIGHT_MARK = "⊢", "⊣"


class Transducer(abc.ABC):
    """Common interface: an object whose configuration graph Lemma 13 walks."""

    #: Name for diagnostics.
    name: str = "transducer"

    @abc.abstractmethod
    def initial_config(self, x) -> Config:
        """The starting configuration on input ``x``."""

    @abc.abstractmethod
    def successors(self, x, config: Config) -> Iterator[tuple[Output | None, Config]]:
        """Nondeterministic steps from ``config``: ``(output-or-None, next)``."""

    @abc.abstractmethod
    def is_accepting(self, x, config: Config) -> bool:
        """Whether ``config`` is a halting accepting configuration."""

    @abc.abstractmethod
    def config_bound(self, x) -> int:
        """An upper bound on the number of distinct configurations on ``x``.

        Polynomial in ``|x|`` for a logspace machine — the quantitative
        content of Lemma 13.  Compilation refuses to explore past it,
        so a buggy (super-logspace) transducer fails loudly instead of
        diverging.
        """


class ConfigGraphTransducer(Transducer):
    """A transducer given directly by its configuration graph functions."""

    def __init__(
        self,
        initial: Callable[[object], Config],
        step: Callable[[object, Config], Iterable[tuple[Output | None, Config]]],
        accepting: Callable[[object, Config], bool],
        bound: Callable[[object], int],
        name: str = "config-graph transducer",
    ):
        self._initial = initial
        self._step = step
        self._accepting = accepting
        self._bound = bound
        self.name = name

    def initial_config(self, x) -> Config:
        return self._initial(x)

    def successors(self, x, config: Config) -> Iterator[tuple[Output | None, Config]]:
        yield from self._step(x, config)

    def is_accepting(self, x, config: Config) -> bool:
        return self._accepting(x, config)

    def config_bound(self, x) -> int:
        return self._bound(x)


@dataclass(frozen=True)
class TMTransition:
    """One nondeterministic TM step option.

    ``input_move``/``work_move`` ∈ {-1, 0, +1}; ``output`` is the symbol
    appended to the output tape (None = silent step).
    """

    new_state: Hashable
    work_write: Hashable
    input_move: int
    work_move: int
    output: Output | None = None


class TuringTransducer(Transducer):
    """The tape-level NL-transducer of Section 3.

    Parameters
    ----------
    states / initial_state / accepting_states:
        Finite control.
    transitions:
        ``(state, input_symbol, work_symbol) → iterable of TMTransition``;
        input symbols include the end markers :data:`LEFT_MARK` /
        :data:`RIGHT_MARK`.
    work_alphabet:
        Work-tape symbols (blank added automatically).
    log_coefficient / log_offset:
        The space bound: ``⌈log_coefficient · log₂(|x| + 2)⌉ + log_offset``
        work cells.  Exceeding the tape is a hard error — the machine is
        *not* logspace then.
    """

    def __init__(
        self,
        states: Iterable[Hashable],
        initial_state: Hashable,
        accepting_states: Iterable[Hashable],
        transitions: dict,
        work_alphabet: Iterable[Hashable] = (),
        log_coefficient: float = 1.0,
        log_offset: int = 2,
        name: str = "NL-transducer",
    ):
        self.states = frozenset(states)
        self.initial_state = initial_state
        self.accepting_states = frozenset(accepting_states)
        self.transitions = {
            key: tuple(options) for key, options in transitions.items()
        }
        self.work_alphabet = frozenset(work_alphabet) | {BLANK}
        self.log_coefficient = log_coefficient
        self.log_offset = log_offset
        self.name = name
        if initial_state not in self.states:
            raise InvalidAutomatonError("initial state missing from state set")
        if not self.accepting_states <= self.states:
            raise InvalidAutomatonError("accepting states must be states")

    def tape_length(self, x) -> int:
        n = len(x)
        return max(1, math.ceil(self.log_coefficient * math.log2(n + 2)) + self.log_offset)

    def initial_config(self, x) -> Config:
        cells = self.tape_length(x)
        return (self.initial_state, 0, 0, (BLANK,) * cells)

    def _input_symbol(self, x, position: int):
        if position < 0:
            return LEFT_MARK
        if position >= len(x):
            return RIGHT_MARK
        return x[position]

    def successors(self, x, config: Config) -> Iterator[tuple[Output | None, Config]]:
        state, input_pos, work_pos, work_tape = config
        key = (state, self._input_symbol(x, input_pos), work_tape[work_pos])
        for option in self.transitions.get(key, ()):
            new_tape = list(work_tape)
            new_tape[work_pos] = option.work_write
            new_input = min(len(x), max(-1, input_pos + option.input_move))
            new_work = work_pos + option.work_move
            if not 0 <= new_work < len(work_tape):
                raise InvalidAutomatonError(
                    f"{self.name}: work head left the O(log n) tape — "
                    "the machine is not logspace under the declared bound"
                )
            yield option.output, (option.new_state, new_input, new_work, tuple(new_tape))

    def is_accepting(self, x, config: Config) -> bool:
        return config[0] in self.accepting_states

    def config_bound(self, x) -> int:
        cells = self.tape_length(x)
        # |Q| · (|x| + 2) input positions · cells · |Γ|^cells — the count in
        # the proof of Lemma 13.
        return (
            len(self.states)
            * (len(x) + 2)
            * cells
            * len(self.work_alphabet) ** cells
        )


@dataclass
class CompilationReport:
    """Size accounting for Lemma 13 compilation (experiment E9)."""

    configurations: int = 0
    edges: int = 0
    accepting: int = 0
    nfa_states: int = 0
    nfa_transitions: int = 0


def compile_to_nfa(
    transducer: Transducer, x, report: CompilationReport | None = None
) -> NFA:
    """Lemma 13: the configuration-graph NFA ``N_x`` with ``L(N_x) = M(x)``.

    BFS from the initial configuration; each step contributes an edge
    labelled by its output symbol (ε when silent).  ε-transitions are then
    removed and the automaton trimmed — both standard, language-preserving
    steps the paper performs in Appendix A.1.

    Raises
    ------
    InvalidRelationInputError
        If the exploration exceeds the transducer's declared configuration
        bound — the machine is not logspace (or the bound is wrong).
    """
    bound = transducer.config_bound(x)
    start = transducer.initial_config(x)
    seen: dict[Config, int] = {start: 0}
    order: list[Config] = [start]
    transitions: list[tuple] = []
    alphabet: set = set()
    index = 0
    while index < len(order):
        config = order[index]
        index += 1
        for output, nxt in transducer.successors(x, config):
            if nxt not in seen:
                if len(seen) >= bound:
                    raise InvalidRelationInputError(
                        f"{transducer.name}: configuration count exceeded the "
                        f"declared bound {bound}; not a logspace machine?"
                    )
                seen[nxt] = len(seen)
                order.append(nxt)
            symbol = EPSILON if output is None else output
            if output is not None:
                alphabet.add(output)
            transitions.append((seen[config], symbol, seen[nxt]))
    finals = [
        seen[config] for config in order if transducer.is_accepting(x, config)
    ]
    if report is not None:
        report.configurations = len(order)
        report.edges = len(transitions)
        report.accepting = len(finals)
    nfa = (
        NFA(range(len(order)), alphabet or {"0"}, transitions, 0, finals)
        .without_epsilon()
        .trim()
        .renumbered()
    )
    if report is not None:
        report.nfa_states = nfa.num_states
        report.nfa_transitions = nfa.num_transitions
    return nfa


def outputs_brute_force(transducer: Transducer, x, max_steps: int = 10_000) -> set:
    """All outputs of ``M(x)`` by exhaustive run-tree search (tests only).

    Follows every nondeterministic branch up to ``max_steps`` expansions.
    Only sound for transducers whose configuration graph is acyclic along
    output-producing paths at test sizes; used as the independent oracle
    for the Lemma 13 compilation (``outputs == L(N_x)``).
    """
    results: set = set()
    stack: list[tuple[Config, tuple]] = [(transducer.initial_config(x), ())]
    expansions = 0
    while stack:
        config, written = stack.pop()
        if transducer.is_accepting(x, config):
            results.add(written)
        expansions += 1
        if expansions > max_steps:
            raise InvalidRelationInputError(
                "brute-force output search exceeded its step budget"
            )
        for output, nxt in transducer.successors(x, config):
            stack.append((nxt, written if output is None else written + (output,)))
    return results
