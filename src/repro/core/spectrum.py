"""Length-spectrum semantics: witnesses of length *at most* n.

Section 4.2 defines RPQ witnesses as paths of length *exactly* n, noting
that users "usually want all paths of at most certain length".  The
equal-length convention is what the MEM-NFA machinery needs; this module
provides the bridge both ways:

* :func:`pad_automaton` — an automaton whose length-``n`` words are the
  padded forms ``w·⋄^{n-|w|}`` of all accepted words with ``|w| ≤ n``
  (the paper's §2.1 padding made concrete).  Counts and the uniform
  distribution over the ≤-n language transfer bijectively.
* :class:`SpectrumSolver` — count / sample / enumerate over the ≤-n
  witness set without materializing the padding at the API surface:
  results are unpadded words.  Counting sums the exact per-length DP for
  unambiguous automata and dispatches per-length FPRAS calls otherwise;
  sampling picks a length with probability proportional to its (estimated)
  count, then samples within it — the standard stratified scheme, exactly
  uniform in the unambiguous case.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.automata.nfa import NFA, Word
from repro.automata.unambiguous import is_unambiguous
from repro.core.enumeration import enumerate_words_nfa, enumerate_words_ufa
from repro.core.exact import count_words_exact
from repro.core.exact_sampler import ExactUniformSampler
from repro.core.fpras import FprasParameters, FprasState
from repro.core.kernel import compile_nfa
from repro.errors import EmptyWitnessSetError
from repro.utils.rng import make_rng

PAD = ("pad", "⋄")


def pad_automaton(nfa: NFA, pad_symbol=PAD) -> NFA:
    """An automaton over Σ ∪ {⋄} with ``L_n = {w·⋄^{n-|w|} : w ∈ L, |w| ≤ n}``.

    Adds a fresh accepting pad state reachable from every final state by
    ⋄ and looping on ⋄.  The map ``w ↦ w·⋄^{n-|w|}`` is a bijection onto
    the padded length-n language (⋄ does not occur in Σ, so the pad block
    is uniquely parsed), hence counts and uniformity transfer.  If the
    input automaton is unambiguous, the padded automaton is too (one run
    per original word, one pad path).
    """
    if pad_symbol in nfa.alphabet:
        raise ValueError(f"pad symbol {pad_symbol!r} collides with the alphabet")
    stripped = nfa.without_epsilon()
    pad_state = ("pad-state",)
    serial = 0
    while pad_state in stripped.states:
        serial += 1
        pad_state = ("pad-state", serial)
    transitions = set(stripped.transitions)
    for final in stripped.finals:
        transitions.add((final, pad_symbol, pad_state))
    transitions.add((pad_state, pad_symbol, pad_state))
    return NFA(
        set(stripped.states) | {pad_state},
        set(stripped.alphabet) | {pad_symbol},
        transitions,
        stripped.initial,
        set(stripped.finals) | {pad_state},
    )


def strip_padding(w: Word, pad_symbol=PAD) -> Word:
    out = list(w)
    while out and out[-1] == pad_symbol:
        out.pop()
    return tuple(out)


class SpectrumSolver:
    """ENUM/COUNT/GEN over ``L_{≤n}(nfa) = ⋃_{ℓ ≤ n} L_ℓ(nfa)``."""

    def __init__(
        self,
        nfa: NFA,
        max_length: int,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
        params: FprasParameters | None = None,
        kernel_backend: str | None = None,
    ):
        if max_length < 0:
            raise ValueError("max_length must be ≥ 0")
        self.nfa = nfa.without_epsilon().trim()
        self.max_length = max_length
        self.rng = make_rng(rng)
        self.delta = delta
        self.params = params
        self.unambiguous = is_unambiguous(self.nfa)
        self._samplers: dict[int, ExactUniformSampler] = {}
        if self.unambiguous:
            # One reachable-mode kernel answers every length ℓ ≤ n from
            # its per-layer forward counts — a linear sweep instead of
            # one unrolling per length, and extend() grows it in place.
            # kernel_backend selects the execution backend for the sweep
            # (None → $REPRO_KERNEL_BACKEND); counts are identical
            # either way.
            self._kernel = compile_nfa(
                self.nfa, max_length, trimmed=False
            ).set_kernel_backend(kernel_backend)
            self._counts = dict(enumerate(self._kernel.spectrum_counts()))
        else:
            self._kernel = None
            self._counts = None

    def extend(self, max_length: int) -> "SpectrumSolver":
        """Grow the solver to a larger ``max_length`` without recompiling.

        The unambiguous route extends the compiled kernel incrementally
        (:meth:`~repro.core.kernel.CompiledDAG.extend_to`), so a sweep
        ``n = 1, 2, …, N`` performed by repeated extension does linear
        total work; the new lengths' counts are read off the appended
        forward rows.
        """
        if max_length <= self.max_length:
            return self
        self.max_length = max_length
        if self._kernel is not None:
            self._kernel.extend_to(max_length)
            self._counts = dict(enumerate(self._kernel.spectrum_counts()))
        return self

    # ------------------------------------------------------------------

    def count(self) -> int | float:
        """|L_{≤n}| — exact for unambiguous automata, FPRAS sum otherwise.

        The per-length FPRAS errors are each ≤ δ relative, so the sum is
        within δ of the true total (relative error is preserved under
        summation of nonnegative estimates).
        """
        if self._counts is not None:
            return sum(self._counts.values())
        total = 0.0
        for length in range(self.max_length + 1):
            total += FprasState(
                self.nfa, length, delta=self.delta, rng=self.rng, params=self.params
            ).count_estimate
        return total

    def count_exact(self) -> int:
        """Exact |L_{≤n}| regardless of ambiguity (may be exponential)."""
        return sum(
            count_words_exact(self.nfa, length) for length in range(self.max_length + 1)
        )

    def enumerate(self) -> Iterator[Word]:
        """All witnesses of length ≤ n, shortest first, duplicate-free."""
        for length in range(self.max_length + 1):
            if self.unambiguous:
                yield from enumerate_words_ufa(self.nfa, length, check=False)
            else:
                yield from enumerate_words_nfa(self.nfa, length)

    def sample(self) -> Word:
        """One uniform witness of ``L_{≤n}`` (exact in the UFA case).

        Stratified: pick a length ∝ its count, then sample within.  For
        ambiguous automata the within-length draw is the PLVUG, so the
        result is uniform conditioned on the (FPRAS-weighted) length
        choice — almost uniform with the per-length estimate error.
        """
        if self._counts is not None:
            total = sum(self._counts.values())
            if total == 0:
                raise EmptyWitnessSetError(
                    f"no witnesses of length ≤ {self.max_length}"
                )
            pick = self.rng.randrange(total)
            accumulated = 0
            for length, weight in self._counts.items():
                accumulated += weight
                if pick < accumulated:
                    if length == 0:
                        return ()
                    sampler = self._samplers.get(length)
                    if sampler is None:
                        sampler = ExactUniformSampler(self.nfa, length, check=False)
                        self._samplers[length] = sampler
                    return sampler.sample(self.rng)
            raise AssertionError("length stratification exhausted")
        # Ambiguous route: estimate per-length weights once, then sample.
        from repro.core.plvug import LasVegasUniformGenerator

        weights = []
        for length in range(self.max_length + 1):
            weights.append(
                FprasState(
                    self.nfa, length, delta=self.delta, rng=self.rng, params=self.params
                ).count_estimate
            )
        total = sum(weights)
        if total <= 0:
            raise EmptyWitnessSetError(f"no witnesses of length ≤ {self.max_length}")
        pick = self.rng.random() * total
        accumulated = 0.0
        for length, weight in enumerate(weights):
            accumulated += weight
            if pick < accumulated:
                if length == 0:
                    return ()
                generator = LasVegasUniformGenerator(
                    self.nfa, length, delta=self.delta, rng=self.rng, params=self.params
                )
                drawn = generator.generate()
                if drawn is None:
                    raise EmptyWitnessSetError("length stratum turned out empty")
                return drawn
        raise AssertionError("length stratification exhausted")
