"""Almost-uniform generation WITHOUT rejection — the JVV notion, measured.

Section 2.4 contrasts the paper's PLVUG (exactly uniform conditioned on
success) with [JVV86]'s weaker *fully polynomial almost uniform
generator*, which may return witnesses with probabilities in
``[φ(x) − δ, φ(x) + δ]``.  The FPRAS machinery yields such a generator
for free: run the ``Sample`` walk and simply *keep* the first word it
produces, skipping the rejection step.  The walk's output distribution is
``P(w) = Π p_b ≈ |U(w-path)|-proportional`` — close to uniform exactly
when the W̃ estimates are good.

:class:`AlmostUniformGenerator` packages that: it never fails (no
rejection), is faster per draw by the ≈ e⁴ rejection factor, and its
deviation from uniformity is a measurable function of the sketch quality
(ablation A2's companion; the test suite bounds its total-variation
distance on small supports and verifies the PLVUG beats it).
"""

from __future__ import annotations

import random

from repro.automata.nfa import NFA, Word
from repro.core.fpras import FprasParameters, FprasState
from repro.core.unroll import accepted_word_exists
from repro.errors import EmptyWitnessSetError
from repro.utils.rng import make_rng


class AlmostUniformGenerator:
    """Rejection-free witness generation at almost-uniform quality.

    Same preprocessing as the FPRAS / PLVUG; each draw is one backward
    walk accepted unconditionally.  Use when throughput matters more than
    exact uniformity (e.g. fuzzing inputs from a regex); use the PLVUG
    when the uniform law itself is the deliverable.
    """

    def __init__(
        self,
        nfa: NFA,
        n: int,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
        params: FprasParameters | None = None,
    ):
        self.rng = make_rng(rng)
        self.nfa = nfa.without_epsilon()
        self.n = n
        if not accepted_word_exists(self.nfa, n):
            self.state = None
        else:
            self.state = FprasState(self.nfa, n, delta=delta, rng=self.rng, params=params)

    def generate(self) -> Word:
        """One draw; raises on an empty witness set, never fails otherwise."""
        if self.state is None:
            raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
        if self.state.is_exact():
            universe = self.state._exhaustive_universe()
            return universe[self.rng.randrange(len(universe))]
        # One walk, acceptance forced: re-run only on structural walk
        # failures (zero-weight strata), not on the rejection coin.
        for _ in range(64):
            drawn = self._walk_once()
            if drawn is not None:
                return drawn
        raise EmptyWitnessSetError(
            "walks repeatedly hit zero-weight strata; estimates degenerate"
        )

    def _walk_once(self) -> Word | None:
        state = self.state
        t = state.n
        current = frozenset(state.kernel.final_indices(t))
        suffix = []
        while t > 0:
            by_symbol = state._predecessor_sets(t, current)
            if not by_symbol:
                return None
            symbols = sorted(by_symbol, key=repr)
            weights = [state._w_tilde(t - 1, by_symbol[s]) for s in symbols]
            total = sum(weights)
            if total <= 0:
                return None
            pick = self.rng.random() * total
            accumulated = 0.0
            chosen = len(symbols) - 1
            for index, weight in enumerate(weights):
                accumulated += weight
                if pick < accumulated:
                    chosen = index
                    break
            suffix.append(symbols[chosen])
            current = by_symbol[symbols[chosen]]
            t -= 1
        return tuple(reversed(suffix))

    def sample_many(self, count: int) -> list[Word]:
        return [self.generate() for _ in range(count)]


def total_variation_from_uniform(samples, support) -> float:
    """½ Σ_w |p̂(w) − 1/|support|| — the almost-uniform quality metric."""
    support = list(support)
    if not support:
        raise ValueError("empty support")
    from collections import Counter

    counts = Counter(samples)
    n = len(samples)
    uniform = 1 / len(support)
    return 0.5 * sum(abs(counts.get(w, 0) / n - uniform) for w in support)
