"""Enumeration of ``L_n(N)``: constant delay for UFAs, polynomial delay for NFAs.

Two enumerators, matching the two halves of the paper:

* :func:`enumerate_words_ufa` — Algorithm 1 (Section 5.3.1).  After the
  polynomial preprocessing (building the Lemma 15 pruned DAG), outputs
  arrive with delay ``O(|y|)`` independent of the input size: the
  traversal keeps a list of *decision points* (vertices where more than
  one outgoing edge exists) and replays the stored prefix to emit the
  next word, exactly as in the paper's pseudo-code.  Correct (duplicate-
  free) only on unambiguous automata, because distinct DAG paths must
  denote distinct words.

* :func:`enumerate_words_nfa` — polynomial delay for arbitrary NFAs
  (Theorem 2; the paper derives it from self-reducibility + the
  polynomial existence test via [Sch09] Theorem 4.9).  We implement the
  specialization of that generic result to MEM-NFA: a *flashlight* DFS
  over word prefixes that only descends into symbols for which an
  accepting completion exists — the existence test being a set-of-states
  reachability lookup against the pruned DAG's layers.  Duplicates are
  impossible because the traversal is over the prefix tree of the
  language, not over runs.

Both are generators: preprocessing happens on first ``next()``, and the
delay guarantees are measured (not just asserted) in benchmarks E1/E2.
"""

from __future__ import annotations

from typing import Iterator

from repro.automata.nfa import NFA, State, Symbol, Word
from repro.automata.unambiguous import require_unambiguous
from repro.core.kernel import CompiledDAG, as_kernel, compile_nfa
from repro.core.unroll import UnrolledDAG, unroll_trimmed


def enumerate_words_ufa(nfa: NFA, n: int, check: bool = True) -> Iterator[Word]:
    """Enumerate ``L_n(nfa)`` with constant delay (Algorithm 1).

    Parameters
    ----------
    nfa:
        The automaton; must be unambiguous (verified when ``check``).
    n:
        Witness length.
    check:
        Verify unambiguity during preprocessing (O(m²·|Σ|)).

    Yields
    ------
    Words (tuples of symbols) of length ``n``, without repetition, in the
    DAG's edge order (lexicographic in each vertex's ordered successor
    list).
    """
    if check:
        prepared = require_unambiguous(nfa, context="constant-delay enumeration")
    else:
        prepared = nfa.without_epsilon()
    return _algorithm1(compile_nfa(prepared, n, trimmed=True))


def enumerate_words_dag(dag: UnrolledDAG | CompiledDAG) -> Iterator[Word]:
    """Algorithm 1 over an already-built Lemma-15 pruned DAG or kernel.

    Lets callers that cache the unrolling (the :class:`repro.api.
    WitnessSet` facade, the samplers) enumerate without re-unrolling; a
    :class:`CompiledDAG` kernel is consumed as-is, an
    :class:`UnrolledDAG` is lowered first.  The DAG must come from the
    trimmed unrolling of an unambiguous ε-free automaton, or the
    enumeration may repeat words.
    """
    return _algorithm1(as_kernel(dag))


def _algorithm1(kernel: CompiledDAG) -> Iterator[Word]:
    """The paper's Algorithm 1 on a Lemma-15-pruned compiled kernel.

    State kept between outputs:

    * ``decisions`` — the list of ``(layer, state_idx, edge_index)``
      decision points of the current path, exactly the paper's ``list``
      structure (append / pop / last); only vertices with ≥ 2 live
      successors are recorded.

    Each output is produced by replaying the stored decisions from the
    start vertex (Step 3), then backtracking to the deepest decision that
    still has an unexplored edge (Step 7) and advancing it (Step 8).
    The kernel's CSR blocks already hold each vertex's successors in the
    fixed total order Algorithm 1 requires, so the walk is pure integer
    indexing; every visited edge lies on an accepting path (Lemma 15
    pruning), so the work per output is O(n) — the paper's constant
    delay.  Output order is identical to the seed set-based traversal.
    """
    if kernel.is_empty:
        return
    n = kernel.n
    if n == 0:
        # k = 0 corner case (Section 5.2): the empty word is accepted iff
        # the initial state is final — which pruning has already decided.
        yield ()
        return

    symbols = kernel.symbols
    edge_start = kernel._edge_start
    edge_symbol = kernel._edge_symbol
    edge_dst = kernel._edge_dst
    start_index = kernel.index_of(0, kernel.nfa.initial)
    if start_index is None:  # pragma: no cover - is_empty ruled this out
        return

    decisions: list[list[int]] = []  # [layer, state index, edge index]

    while True:
        # Step 3: walk from the start, replaying stored decisions and taking
        # the first edge everywhere else; record new decision points.
        word_out: list[Symbol] = []
        state = start_index
        replay = 0
        for t in range(n):
            starts = edge_start[t]
            base = starts[state]
            degree = starts[state + 1] - base
            if replay < len(decisions) and decisions[replay][0] == t:
                index = decisions[replay][2]
                replay += 1
            else:
                index = 0
                if degree > 1:
                    decisions.append([t, state, 0])
                    replay = len(decisions)
            word_out.append(symbols[edge_symbol[t][base + index]])
            state = edge_dst[t][base + index]
        yield tuple(word_out)  # Step 4

        # Steps 5–7: drop exhausted decision points.
        while decisions:
            t, vertex, index = decisions[-1]
            starts = edge_start[t]
            if index + 1 < starts[vertex + 1] - starts[vertex]:
                break
            decisions.pop()
        if not decisions:
            return  # Step 6: STOP
        # Step 8: advance the deepest non-exhausted decision.
        decisions[-1][2] += 1


def algorithm1_page(
    kernel: CompiledDAG, cursor: list[object] | None, count: int
) -> tuple[list[Word], list[list[int]] | None]:
    """One resumable *page* of Algorithm 1: up to ``count`` words plus the
    cursor for the next page.

    The cursor is the paper's decision-point list itself — the
    ``[layer, state_index, edge_index]`` triples describing the path of
    the *next* word to emit — so resuming costs one O(n) replay, never a
    re-walk of the ``offset`` words already served.  ``cursor=None``
    starts from the beginning; a returned cursor of ``None`` means the
    enumeration is exhausted.  Cursors are plain JSON-able integer lists
    (the service's paging protocol ships them to clients verbatim), and a
    malformed or stale cursor raises ``ValueError`` instead of yielding
    wrong words: every replayed triple is checked against the kernel's
    actual layers, states and degrees.

    Page boundaries are invisible in the output: concatenating pages of
    any sizes reproduces :func:`enumerate_words_dag` exactly.
    """
    if count < 0:
        raise ValueError("page size must be ≥ 0")
    words: list[Word] = []
    if kernel.is_empty:
        return words, None
    n = kernel.n
    if n == 0:
        # Only the empty word exists; an empty cursor (or none) is the
        # start, anything else is stale.
        if cursor not in (None, []):
            raise ValueError("invalid enumeration cursor")
        if count:
            return [()], None
        return words, []
    decisions = _validated_cursor(kernel, cursor)
    symbols = kernel.symbols
    edge_start = kernel._edge_start
    edge_symbol = kernel._edge_symbol
    edge_dst = kernel._edge_dst
    start_index = kernel.index_of(0, kernel.nfa.initial)
    if start_index is None:  # pragma: no cover - is_empty ruled this out
        return words, None
    while len(words) < count:
        word_out: list[Symbol] = []
        state = start_index
        replay = 0
        for t in range(n):
            starts = edge_start[t]
            base = starts[state]
            degree = starts[state + 1] - base
            if replay < len(decisions) and decisions[replay][0] == t:
                index = decisions[replay][2]
                replay += 1
            else:
                index = 0
                if degree > 1:
                    decisions.append([t, state, 0])
                    replay = len(decisions)
            word_out.append(symbols[edge_symbol[t][base + index]])
            state = edge_dst[t][base + index]
        words.append(tuple(word_out))
        while decisions:
            t, vertex, index = decisions[-1]
            starts = edge_start[t]
            if index + 1 < starts[vertex + 1] - starts[vertex]:
                break
            decisions.pop()
        if not decisions:
            return words, None
        decisions[-1][2] += 1
    return words, decisions


def _validated_cursor(
    kernel: CompiledDAG, cursor: list[object] | None
) -> list[list[int]]:
    """The cursor as a fresh mutable decisions list, or ``ValueError``.

    Replays the cursor's path through the kernel, checking that each
    triple names a real decision point (layers strictly increasing,
    state index matching the replayed walk, edge index within degree and
    on a vertex with ≥ 2 successors) *and* that no branching vertex
    along the replayed prefix is missing its triple — Algorithm 1
    records every decision point it passes, so a gap means the cursor
    was not produced by this enumeration and replaying it would emit
    wrong (or endlessly repeating) words.  A client can never crash the
    kernel walk, or silently receive the wrong page, with a corrupt or
    stale cursor.
    """
    if cursor is None:
        return []
    bad = ValueError("invalid enumeration cursor")
    if not isinstance(cursor, list):
        raise bad
    decisions: list[list[int]] = []
    for entry in cursor:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 3
            or not all(isinstance(v, int) and not isinstance(v, bool) for v in entry)
        ):
            raise bad
        decisions.append(list(entry))
    state = kernel.index_of(0, kernel.nfa.initial)
    if state is None:  # pragma: no cover - callers check is_empty first
        raise bad
    replay = 0
    for t in range(kernel.n):
        starts = kernel._edge_start[t]
        if not 0 <= state < len(starts) - 1:  # pragma: no cover - defensive
            raise bad
        base = starts[state]
        degree = starts[state + 1] - base
        if replay < len(decisions):
            if decisions[replay][0] == t:
                entry = decisions[replay]
                if entry[1] != state or not 0 <= entry[2] < degree or degree < 2:
                    raise bad
                index = entry[2]
                replay += 1
            else:
                # Still replaying recorded decisions: every branching
                # vertex up to the last triple must have its own triple.
                if degree > 1:
                    raise bad
                index = 0
        else:
            # Past the recorded prefix: fresh branching is fine (the
            # walk discovers new decision points here, as in the paper).
            index = 0
        state = kernel._edge_dst[t][base + index]
    if replay != len(decisions):
        raise bad
    return decisions


def enumerate_words_nfa(nfa: NFA, n: int) -> Iterator[Word]:
    """Enumerate ``L_n(nfa)`` with polynomial delay (any NFA).

    Flashlight search over word prefixes.  The DFS node for a prefix ``w``
    carries the set of states reachable by ``w`` (restricted to the pruned
    DAG layers, which encode "an accepting completion exists"); a symbol
    ``a`` is explored iff the stepped set is nonempty.  Each output is
    therefore reached after at most ``n`` successful extension tests, and
    each test costs O(|δ|) — polynomial delay in the input size, and no
    duplicates since distinct leaves of the prefix tree are distinct words.
    """
    prepared = nfa.without_epsilon()
    dag = unroll_trimmed(prepared, n)
    if dag.is_empty:
        return
    symbols = sorted(prepared.alphabet, key=repr)

    # stack holds (prefix, live state set at len(prefix)); DFS in reverse
    # symbol order so words come out in lexicographic symbol-repr order.
    stack: list[tuple[Word, frozenset[State]]] = [
        ((), frozenset({prepared.initial}) & dag.layer(0))
    ]
    while stack:
        prefix, states = stack.pop()
        if len(prefix) == n:
            yield prefix
            continue
        t = len(prefix)
        layer_next = dag.layer(t + 1)
        for symbol in reversed(symbols):
            nxt: set[State] = set()
            for state in states:
                nxt |= prepared.successors(state, symbol)
            nxt &= layer_next
            if nxt:
                stack.append((prefix + (symbol,), frozenset(nxt)))


def enumerate_words(nfa: NFA, n: int) -> Iterator[Word]:
    """Enumerate ``L_n(nfa)`` picking the best applicable algorithm.

    Uses the constant-delay Algorithm 1 when the automaton is unambiguous
    and the polynomial-delay flashlight otherwise — the dispatch a user of
    the two complexity classes would perform by hand.
    """
    stripped = nfa.without_epsilon().trim()
    from repro.automata.unambiguous import is_unambiguous

    if is_unambiguous(stripped):
        return enumerate_words_ufa(stripped, n, check=False)
    return enumerate_words_nfa(stripped, n)


__all__ = [
    "enumerate_words",
    "enumerate_words_ufa",
    "enumerate_words_dag",
    "enumerate_words_nfa",
    "algorithm1_page",
]
