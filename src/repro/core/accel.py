"""The NumPy-accelerated kernel execution backend (optional).

The :class:`~repro.core.kernel.CompiledDAG` hot loops — count-table
sweeps, :meth:`~repro.core.kernel.CompiledDAG.extend_to` forward rows,
batched sampling and the FPRAS's prefix-set bookkeeping — are pure
Python over ``array('q')`` rows.  This module provides the same sweeps
as vectorized NumPy passes over zero-copy views of the kernel's CSR
arrays, selected per kernel via ``kernel_backend=`` on the facade, the
``$REPRO_KERNEL_BACKEND`` environment switch, or
:meth:`CompiledDAG.set_kernel_backend`.

Design contract (what makes the backend safe to switch on):

* **The pure path stays canonical.**  NumPy is optional: this module
  imports it lazily and only here (enforced by the ``accel-isolation``
  lint rule), and every accelerated entry point returns ``None`` to
  mean "take the exact Python path" — when NumPy is absent, when a
  count row has spilled to bignums, or when the workload is too small
  for vectorization to pay.
* **Bit-identical results.**  Count tables are built with the same
  value semantics (rows pack to ``array('q')`` exactly when the pure
  packer would) and sampling consumes the *same* ``randrange`` draws in
  the *same* order as the pure ``sample_batch`` — per-draw RNG
  substream semantics survive acceleration, so seeded outputs are
  byte-identical across backends.
* **Overflow safety.**  Packed ``int64`` rows vectorize; a conservative
  float64 pre-sum guard (``2**62``) hands any layer that could reach
  the int64 range back to the exact bignum path, and spilled rows are
  never touched by NumPy at all.

The vectorized count sweeps use an exact wraparound trick: per-block
cumulative sums are recovered from a single (silently wrapping) int64
``cumsum`` by subtracting each block's base — exact in two's complement
whenever the true per-block totals stay below ``2**63``, which the
packed representation already guarantees.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.errors import UnknownBackendError

if TYPE_CHECKING:
    from repro.automata.nfa import Symbol, Word
    from repro.core.kernel import CompiledDAG, CountRow

#: Environment variable selecting the process-default kernel backend.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Backend names :func:`resolve` accepts.
BACKEND_NAMES = ("auto", "numpy", "pure")

#: Conservative bound for the vectorized int64 count sweeps: when a
#: layer's float64 weight pre-sum reaches this, the exact Python path
#: finishes the table (true row values could approach the int64 range).
_SAFE_SUM = float(2**62)

#: Below this many edges, the per-call NumPy overhead beats the win;
#: FPRAS set queries this small stay on the pure path.
_MIN_VECTOR_EDGES = 64

#: The CSR edge blocks are ``array('l')``; the zero-copy int64 views
#: (and the snapshot borrow mode) assume the LP64 layout where that is
#: 8 bytes.  On ILP32/LLP64 platforms the backend silently stays pure.
_LP64 = array("l").itemsize == 8

_np: Any = None
_np_checked = False


def _numpy() -> Any:
    """The lazily imported ``numpy`` module, or ``None`` when absent."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            numpy = None  # type: ignore[assignment]
        _np = numpy
    return _np


def numpy_available() -> bool:
    """True when the optional NumPy dependency can be imported."""
    return _numpy() is not None


def resolve(name: str | None) -> NumpyAccel | None:
    """Map a backend name onto an execution backend (``None`` = pure).

    ``None`` consults ``$REPRO_KERNEL_BACKEND`` and defaults to
    ``"pure"``.  ``"numpy"`` and ``"auto"`` both fall back to the pure
    path automatically when NumPy is not importable — acceleration is
    an optimization, never an availability requirement.  Unknown names
    raise :class:`~repro.errors.UnknownBackendError`.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "pure"
    if name == "pure":
        return None
    if name in ("numpy", "auto"):
        return _singleton() if (_LP64 and numpy_available()) else None
    raise UnknownBackendError(name, available=BACKEND_NAMES)


class NumpyAccel:
    """Vectorized kernel sweeps over zero-copy views of the CSR arrays.

    Stateless apart from the NumPy module handle: per-kernel caches
    (array views, per-layer cumulative weights, reverse orderings) live
    in the kernel's own ``_accel_state`` dict so they follow the
    kernel's lifetime and are dropped by ``extend_to`` /
    ``set_kernel_backend``.
    """

    name = "numpy"

    # ------------------------------------------------------------------
    # Per-kernel cached views
    # ------------------------------------------------------------------

    def _edges(self, kernel: CompiledDAG, t: int) -> Any:
        """``(start, symbol, dst)`` int64 views of layer ``t``'s CSR block."""
        state = kernel._accel_state
        cached = state.get(("edges", t))
        if cached is None:
            np = _numpy()
            cached = (
                np.frombuffer(kernel._edge_start[t], dtype=np.int64),
                np.frombuffer(kernel._edge_symbol[t], dtype=np.int64),
                np.frombuffer(kernel._edge_dst[t], dtype=np.int64),
            )
            state[("edges", t)] = cached
        return cached

    def _row_view(self, row: CountRow) -> Any:
        """Zero-copy int64 view of a packed count row (``None`` if spilled)."""
        if isinstance(row, list):
            return None
        return _numpy().frombuffer(row, dtype=_numpy().int64)

    def _reverse(self, kernel: CompiledDAG, t: int) -> Any:
        """Vectorized reverse-CSR view for edges into layer ``t``.

        ``(starts, r_symbol, r_src)`` with the same contents as the
        kernel's ``_reverse_edges`` arrays (grouped by destination; the
        stable sort preserves forward edge order within each group).
        """
        state = kernel._accel_state
        cached = state.get(("redge", t))
        if cached is None:
            np = _numpy()
            start, symbol, dst = self._edges(kernel, t - 1)
            size = len(kernel._states[t])
            src_of_edge = np.repeat(
                np.arange(len(start) - 1, dtype=np.int64), np.diff(start)
            )
            order = np.argsort(dst, kind="stable")
            starts = np.searchsorted(dst[order], np.arange(size + 1, dtype=np.int64))
            cached = (starts, symbol[order], src_of_edge[order])
            state[("redge", t)] = cached
        return cached

    # ------------------------------------------------------------------
    # Count tables
    # ------------------------------------------------------------------

    def _pack_np_row(self, np_row: Any) -> CountRow:
        """A finished int64 NumPy row → the kernel's packed container."""
        row = array("q")
        row.frombytes(np_row.tobytes())
        return row

    def _segment_sums(self, weights: Any, start: Any, lengths: Any) -> Any:
        """Exact per-block sums of ``weights`` over the CSR blocks.

        One ``np.add.reduceat`` pass; exact in two's complement because
        the caller guarantees every true block total stays below the
        int64 range.  ``reduceat`` yields ``weights[i]`` (not 0) for an
        empty block, and rejects indices at ``len(weights)``, so empty
        blocks are clipped first and zeroed after.
        """
        np = _numpy()
        if len(weights) == 0:
            return np.zeros(len(lengths), dtype=np.int64)
        clipped = np.minimum(start[:-1], len(weights) - 1)
        with np.errstate(over="ignore"):
            sums = np.add.reduceat(weights, clipped)
        return np.where(lengths > 0, sums, 0)

    def backward_table(self, kernel: CompiledDAG) -> list[CountRow] | None:
        """The full backward count table, or ``None`` (pure path).

        Each step is one gather + segmented sum over the forward CSR.
        When the float64 pre-sum guard trips, the remaining layers are
        finished on the exact Python path, so the returned table is
        always complete and value-identical to the pure build.
        """
        np = _numpy()
        if np is None:
            return None
        from repro.core.kernel import _pack_counts

        n = kernel.n
        last = [0] * len(kernel._states[n])
        for i in kernel.final_indices(n):
            last[i] = 1
        rows: list[CountRow] = [_pack_counts(last)]
        for t in range(n - 1, -1, -1):
            current = self._row_view(rows[-1])
            if current is not None:
                start, _, dst = self._edges(kernel, t)
                lengths = np.diff(start)
                # Conservative overflow guard without a full float pass:
                # every vertex's true total is at most max-count × its
                # out-degree.
                bound = float(current.max(initial=0)) * float(
                    lengths.max(initial=0)
                )
                if bound < _SAFE_SUM:
                    row_np = self._segment_sums(current[dst], start, lengths)
                    rows.append(self._pack_np_row(row_np))
                    continue
            # Exact bignum path for this and every earlier layer.
            starts_l = kernel._edge_start[t]
            dst_l = kernel._edge_dst[t]
            nxt = rows[-1]
            counts = [0] * len(kernel._states[t])
            for i in range(len(counts)):
                total = 0
                for e in range(starts_l[i], starts_l[i + 1]):
                    total += nxt[dst_l[e]]
                counts[i] = total
            rows.append(_pack_counts(counts))
        rows.reverse()
        return rows

    def _src_of_edge(self, kernel: CompiledDAG, t: int) -> Any:
        """Per-edge source index for layer ``t``'s forward CSR block."""
        state = kernel._accel_state
        cached = state.get(("esrc", t))
        if cached is None:
            np = _numpy()
            start = self._edges(kernel, t)[0]
            cached = np.repeat(
                np.arange(len(start) - 1, dtype=np.int64), np.diff(start)
            )
            state[("esrc", t)] = cached
        return cached

    def forward_step_row(
        self, kernel: CompiledDAG, t: int, current: CountRow
    ) -> CountRow | None:
        """One vectorized forward step (layer ``t`` → ``t + 1``), or ``None``.

        The scatter-add runs directly on the forward CSR via
        ``np.add.at`` (exact in two's complement under the wraparound
        trick) — an order of magnitude cheaper than building the
        destination-sorted reverse ordering.  Guarded the same way as
        :meth:`backward_table`.
        """
        np = _numpy()
        if np is None:
            return None
        current_np = self._row_view(current)
        if current_np is None:
            return None
        _, _, dst = self._edges(kernel, t)
        weights = current_np[self._src_of_edge(kernel, t)]
        if float(weights.sum(dtype=np.float64)) >= _SAFE_SUM:
            return None
        row_np = np.zeros(len(kernel._states[t + 1]), dtype=np.int64)
        with np.errstate(over="ignore"):
            np.add.at(row_np, dst, weights)
        return self._pack_np_row(row_np)

    def forward_table(self, kernel: CompiledDAG) -> list[CountRow] | None:
        """The full forward count table, or ``None`` (pure path)."""
        if _numpy() is None:
            return None
        from repro.core.kernel import _pack_counts

        first = [0] * len(kernel._states[0])
        i0 = kernel._index[0].get(kernel.nfa.initial)
        if i0 is not None:
            first[i0] = 1
        table: list[CountRow] = [_pack_counts(first)]
        for t in range(kernel.n):
            row = self.forward_step_row(kernel, t, table[t])
            if row is None:
                row = _pack_counts(kernel._forward_step(t, table[t]))
            table.append(row)
        return table

    # ------------------------------------------------------------------
    # Batched sampling
    # ------------------------------------------------------------------

    def sample_batch(
        self,
        kernel: CompiledDAG,
        k: int,
        randranges: Sequence[Callable[[int], int]],
    ) -> list[Word] | None:
        """``k`` table-guided draws, byte-identical to the pure pass.

        The RNG draws cannot be vectorized without changing their
        results, so they stay Python calls — made in exactly the order
        the pure ``sample_batch`` makes them (samples grouped by current
        vertex in first-occurrence order, members in sample order).
        Everything around the draws vectorizes: per-layer cumulative
        weights are built compactly over the *visited* vertex blocks
        only (one ``cumsum``, exact by the wraparound trick since each
        visited block's true total is a packed ``backward`` count
        ``< 2**63``), and edge selection is a batched binary search over
        all ``k`` samples at once — work proportional to the samples'
        out-edges, not the layer's.

        Returns ``None`` (pure path) when NumPy is absent or any
        backward row spilled to bignums.
        """
        np = _numpy()
        if np is None:
            return None
        backward = kernel.backward_counts()
        for row in backward:
            if isinstance(row, list):
                return None
        n = kernel.n
        symbols = kernel.symbols
        if n == 0:
            return [() for _ in range(k)]
        states = np.full(k, kernel._index[0][kernel.nfa.initial], dtype=np.int64)
        sample_ids = np.arange(k, dtype=np.int64)
        picked = np.empty((k, n), dtype=np.int64)
        for t in range(n):
            start, symbol, dst = self._edges(kernel, t)
            nxt = self._row_view(backward[t + 1])
            if nxt is None:  # pragma: no cover - rows were checked above
                return None
            totals = self._row_view(backward[t])[states].tolist()
            # The pure pass draws grouped by current vertex (groups in
            # first-occurrence order, members in sample order); with a
            # shared generator that order is observable through the
            # stream, so reproduce it exactly before drawing.
            unique, first_at, inverse = np.unique(
                states, return_index=True, return_inverse=True
            )
            rank = np.empty(len(unique), dtype=np.int64)
            rank[np.argsort(first_at, kind="stable")] = np.arange(
                len(unique), dtype=np.int64
            )
            order = np.lexsort((sample_ids, rank[inverse])).tolist()
            picks_list = [0] * k
            for j in order:
                picks_list[j] = randranges[j](totals[j])
            picks = np.array(picks_list, dtype=np.int64)
            # Compact cumulative weights over the visited blocks only:
            # positions[cstart[u]:cstart[u+1]] are the flat edge indices
            # of the u-th visited vertex, and lcum over that slice equals
            # the pure ``_cum_weights`` list for it.
            ulo = start[unique]
            lengths = start[unique + 1] - ulo
            cstart = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(lengths))
            )
            positions = np.arange(int(cstart[-1]), dtype=np.int64) + np.repeat(
                ulo - cstart[:-1], lengths
            )
            with np.errstate(over="ignore"):
                cum = np.cumsum(nxt[dst[positions]])
                ext = np.concatenate((np.zeros(1, dtype=np.int64), cum))
                lcum = cum - np.repeat(ext[cstart[:-1]], lengths)
            # Batched bisect_right over each sample's compact block.
            lo = cstart[:-1][inverse].copy()
            hi = cstart[1:][inverse].copy()
            while True:
                active = lo < hi
                if not bool(active.any()):
                    break
                mid = np.where(active, (lo + hi) >> 1, 0)
                go_right = active & (lcum[mid] <= picks)
                lo = np.where(go_right, mid + 1, lo)
                hi = np.where(active & ~go_right, mid, hi)
            chosen = positions[lo]
            picked[:, t] = symbol[chosen]
            states = dst[chosen]
        return [
            tuple(symbols[i] for i in row) for row in picked.tolist()
        ]

    # ------------------------------------------------------------------
    # FPRAS prefix-set bookkeeping
    # ------------------------------------------------------------------

    def _flat_positions(self, starts: Any, indices: Any) -> Any:
        """Flat array positions covering ``[starts[i], starts[i+1])`` for
        every ``i`` in ``indices`` (``None`` when too small to pay)."""
        np = _numpy()
        base = starts[indices]
        lengths = starts[indices + 1] - base
        total = int(lengths.sum())
        if total < _MIN_VECTOR_EDGES:
            return None
        ends = np.cumsum(lengths)
        return (
            np.arange(total, dtype=np.int64)
            + np.repeat(base - (ends - lengths), lengths)
        )

    def step_indices(
        self, kernel: CompiledDAG, t: int, indices: Iterable[int], symbol_i: int
    ) -> frozenset[int] | None:
        """Vectorized one-symbol prefix-set step (``None`` = pure path)."""
        np = _numpy()
        if np is None:
            return None
        idx = np.fromiter(indices, dtype=np.int64)
        if len(idx) == 0:
            return frozenset()
        start, symbol, dst = self._edges(kernel, t)
        positions = self._flat_positions(start, idx)
        if positions is None:
            return None
        matched = positions[symbol[positions] == symbol_i]
        return frozenset(np.unique(dst[matched]).tolist())

    def predecessor_groups(
        self, kernel: CompiledDAG, t: int, indices: Iterable[int]
    ) -> dict[Symbol, frozenset[int]] | None:
        """Vectorized ``{b: T_b}`` predecessor partition (``None`` = pure)."""
        np = _numpy()
        if np is None:
            return None
        idx = np.fromiter(indices, dtype=np.int64)
        if len(idx) == 0:
            return {}
        starts, r_symbol, r_src = self._reverse(kernel, t)
        positions = self._flat_positions(starts, idx)
        if positions is None:
            return None
        grouped: dict[Symbol, frozenset[int]] = {}
        hit_symbols = r_symbol[positions]
        hit_src = r_src[positions]
        for si in np.unique(hit_symbols).tolist():
            grouped[kernel.symbols[si]] = frozenset(
                np.unique(hit_src[hit_symbols == si]).tolist()
            )
        return grouped


_instance: NumpyAccel | None = None


def _singleton() -> NumpyAccel:
    global _instance
    if _instance is None:
        _instance = NumpyAccel()
    return _instance


__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "NumpyAccel",
    "numpy_available",
    "resolve",
]
