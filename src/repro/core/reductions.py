"""Witness-preserving reductions and the transfer of solvers (Prop. 11).

The paper's notion of reduction is deliberately strict: ``R`` reduces to
``S`` via a polynomial-time ``f`` when ``W_R(x) = W_S(f(x))`` — the
witness *sets are literally equal*, not merely equinumerous.  The payoff
(Proposition 11) is that every solver — constant/polynomial-delay
enumerators, exact counters, FPRASes, exact and Las Vegas generators —
transfers across the reduction verbatim: run the ``S``-solver on ``f(x)``.

:class:`WitnessPreservingReduction` packages an ``f`` together with that
transfer.  The canonical instances are the Proposition 12 completeness
maps: every relation in the library reduces to MEM-NFA (or MEM-UFA) via
its :meth:`~repro.core.relations.AutomatonBackedRelation.compile`, and
:func:`completeness_reduction` exposes exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generic, Iterator, TypeVar

from repro.automata.nfa import Word
from repro.core.relations import AutomatonBackedRelation, CompiledInstance

SourceT = TypeVar("SourceT")
TargetT = TypeVar("TargetT")


@dataclass(frozen=True)
class WitnessPreservingReduction(Generic[SourceT, TargetT]):
    """A reduction ``f`` with ``W_R(x) = W_S(f(x))`` and its solver transfer.

    ``transform`` is the polynomial-time ``f``; ``target`` names the
    relation ``S`` whose solvers we borrow.
    """

    transform: Callable[[SourceT], TargetT]
    target: AutomatonBackedRelation

    # --- Proposition 11, bullet by bullet ---------------------------------

    def enumerate(self, instance: SourceT) -> Iterator:
        """ENUM(R) from ENUM(S): enumerate on the transformed input.

        Delay class (constant / polynomial) is inherited from the target
        solver — the transform adds only preprocessing time.
        """
        return self.target.witnesses(self.transform(instance))

    def count_exact(self, instance: SourceT) -> int:
        """COUNT(R) from an exact COUNT(S)."""
        return self.target.witness_count_exact(self.transform(instance))

    def count_approx(
        self,
        instance: SourceT,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
    ) -> float:
        """COUNT(R) from an FPRAS for COUNT(S)."""
        from repro.core.fpras import approx_count_nfa

        compiled = self.target.compile(self.transform(instance))
        return approx_count_nfa(compiled.nfa, compiled.length, delta=delta, rng=rng)

    def sample(
        self, instance: SourceT, rng: random.Random | int | None = None
    ) -> Word | None:
        """GEN(R) from a PLVUG for GEN(S) (None encodes ⊥)."""
        from repro.core.plvug import LasVegasUniformGenerator

        compiled = self.target.compile(self.transform(instance))
        generator = LasVegasUniformGenerator(compiled.nfa, compiled.length, rng=rng)
        return generator.generate()


class MemNfaRelation(AutomatonBackedRelation):
    """MEM-NFA itself as a relation: inputs are ``(NFA, k)`` pairs.

    The identity compilation — this is the complete problem every other
    relation reduces to (Proposition 12).
    """

    name = "MEM-NFA"

    def compile(self, instance: tuple) -> CompiledInstance:
        nfa, k = instance
        return CompiledInstance(nfa=nfa.without_epsilon(), length=k)


class MemUfaRelation(MemNfaRelation):
    """MEM-UFA: the unambiguous restriction, complete for RelationUL."""

    name = "MEM-UFA"

    def compile(self, instance: tuple) -> CompiledInstance:
        from repro.automata.unambiguous import require_unambiguous

        nfa, k = instance
        return CompiledInstance(
            nfa=require_unambiguous(nfa, context="MEM-UFA"), length=k
        )


def completeness_reduction(
    relation: AutomatonBackedRelation, unambiguous: bool = False
) -> WitnessPreservingReduction:
    """The Proposition 12 reduction of ``relation`` to MEM-NFA / MEM-UFA.

    ``f(x) = (N_x, k_x)`` — the relation's own compilation, packaged as a
    witness-preserving reduction whose target is the complete problem.
    """
    target = MemUfaRelation() if unambiguous else MemNfaRelation()

    def transform(instance):
        compiled = relation.compile(instance)
        return (compiled.nfa, compiled.length)

    return WitnessPreservingReduction(transform=transform, target=target)
