"""Relations as problems: the framework of Section 2.

A *problem* is a relation ``R ⊆ Σ* × Σ*``; the witnesses of an input ``x``
are ``W_R(x) = {y : (x, y) ∈ R}``, and the three fundamental questions
about an input are

* ``ENUM(R)``  — list ``W_R(x)`` without repetition,
* ``COUNT(R)`` — compute ``|W_R(x)|``,
* ``GEN(R)``   — draw a uniform element of ``W_R(x)``.

The paper works with *p-relations*: witness length is a fixed polynomial
of the input (wlog exactly, via padding), and membership ``(x, y) ∈ R``
is decidable in polynomial time.

Everything in this library routes through one structural fact
(Proposition 12 + Lemma 13): a relation in RelationNL/RelationUL can be
compiled, input by input, into an NFA/UFA whose fixed-length language *is*
the witness set.  :class:`AutomatonBackedRelation` is that interface: an
object that, given ``x``, produces ``(N_x, k_x)`` with
``W_R(x) = L_{k_x}(N_x)``.  The concrete relations of Section 3/4
(SAT-DNF, EVAL-eVA, EVAL-RPQ, EVAL-OBDD, ...) implement it, and
:mod:`repro.core.classes` attaches the right solver set per class.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, TypeVar

from repro.automata.nfa import NFA, Word

InputT = TypeVar("InputT")
WitnessT = TypeVar("WitnessT")


@dataclass(frozen=True)
class CompiledInstance:
    """The Lemma 13 artifact for one input: an automaton and a length.

    ``W_R(x) = decode(L_length(nfa))`` — the automaton's fixed-length
    language, pushed through the relation's witness decoding.
    """

    nfa: NFA
    length: int


class AutomatonBackedRelation(abc.ABC, Generic[InputT, WitnessT]):
    """A p-relation presented by per-input automaton compilation.

    Subclasses provide:

    * :meth:`compile` — the polynomial-time ``x ↦ (N_x, k_x)`` map
      (Lemma 13 / the completeness reduction of Proposition 12);
    * :meth:`decode_witness` / :meth:`encode_witness` — the bijection
      between automaton words and domain-level witnesses (e.g. marker-set
      sequences ↔ span mappings for document spanners);
    * :meth:`check` — the polynomial-time membership test of the
      p-relation definition (used by tests as an independent oracle).

    The default encode/decode are identity (witnesses *are* words).
    """

    #: Human-readable relation name (for reports and error messages).
    name: str = "relation"

    @abc.abstractmethod
    def compile(self, instance: InputT) -> CompiledInstance:
        """Compile ``instance`` into ``(N_x, k_x)``."""

    def decode_witness(self, instance: InputT, w: Word) -> WitnessT:
        """Map an automaton word to a domain witness (default: identity)."""
        return w  # type: ignore[return-value]

    def encode_witness(self, instance: InputT, witness: WitnessT) -> Word:
        """Map a domain witness to its automaton word (default: identity)."""
        return witness  # type: ignore[return-value]

    def check(self, instance: InputT, witness: WitnessT) -> bool:
        """Polynomial membership test ``(x, y) ∈ R`` (default: via the NFA)."""
        compiled = self.compile(instance)
        w = self.encode_witness(instance, witness)
        return len(w) == compiled.length and compiled.nfa.accepts(w)

    # Convenience wrappers; the class facades in repro.core.classes add
    # the full solver suites (delay guarantees, FPRAS, PLVUG).

    def witnesses(self, instance: InputT) -> Iterator[WitnessT]:
        """Enumerate all witnesses (polynomial delay; see RelationNL for more)."""
        from repro.core.enumeration import enumerate_words

        compiled = self.compile(instance)
        for w in enumerate_words(compiled.nfa, compiled.length):
            yield self.decode_witness(instance, w)

    def witness_count_exact(self, instance: InputT) -> int:
        """Exact |W_R(x)| via the subset-construction counter (may blow up)."""
        from repro.core.exact import count_words_exact

        compiled = self.compile(instance)
        return count_words_exact(compiled.nfa, compiled.length)


@dataclass(frozen=True)
class PaddedWitness:
    """Helper for the paper's equal-length convention.

    p-relations may be padded so all witnesses of an input share one
    length (Section 2.1).  When a natural encoding has variable length,
    wrap words with this marker-padding helper: ``pad`` appends a fresh
    padding symbol, ``strip`` removes it.
    """

    pad_symbol: Hashable = "§"

    def pad(self, w: Word, target_length: int) -> Word:
        if len(w) > target_length:
            raise ValueError("witness longer than the target length")
        return w + (self.pad_symbol,) * (target_length - len(w))

    def strip(self, w: Word) -> Word:
        out = list(w)
        while out and out[-1] == self.pad_symbol:
            out.pop()
        return tuple(out)
