"""The complexity-class facades: RelationNL, RelationUL, and SpanL.

These classes are the library's main user-facing API: wrap a relation
(anything implementing
:class:`~repro.core.relations.AutomatonBackedRelation`, or a raw
``(NFA, k)`` instance) and get exactly the solver suite the paper's
theorems grant:

====================  =========================  ==========================
Problem               :class:`RelationULSolver`   :class:`RelationNLSolver`
====================  =========================  ==========================
ENUM                  constant delay (Alg. 1)     polynomial delay
COUNT                 exact, poly time (§5.3.2)   FPRAS (Thm 22)
GEN                   exact uniform (§5.3.3)      PLVUG (Cor. 23)
====================  =========================  ==========================

:class:`SpanLFunction` packages Corollary 3: any function presented as
``x ↦ |M(x)|`` for an NL-transducer ``M`` gets an FPRAS by compiling the
transducer (Lemma 13) and running the #NFA FPRAS on the result.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.automata.nfa import NFA, Word
from repro.automata.unambiguous import is_unambiguous, require_unambiguous
from repro.core.enumeration import enumerate_words_nfa, enumerate_words_ufa
from repro.core.exact import count_accepting_runs_of_length, count_words_exact
from repro.core.exact_sampler import ExactUniformSampler
from repro.core.fpras import FprasParameters, approx_count_nfa
from repro.core.plvug import LasVegasUniformGenerator
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.core.transducers import Transducer, compile_to_nfa
from repro.errors import EmptyWitnessSetError
from repro.utils.rng import make_rng


class RelationULSolver:
    """Theorem 5's solver suite for one compiled RelationUL instance.

    Construction verifies unambiguity (the class membership certificate)
    and does the shared preprocessing; the three problem methods are then
    as cheap as the paper promises.
    """

    def __init__(self, nfa: NFA, length: int, check: bool = True):
        self.nfa = (
            require_unambiguous(nfa, context="RelationUL")
            if check
            else nfa.without_epsilon()
        )
        self.length = length
        self._sampler: ExactUniformSampler | None = None

    def enumerate(self) -> Iterator[Word]:
        """ENUM with constant delay (Algorithm 1)."""
        return enumerate_words_ufa(self.nfa, self.length, check=False)

    def count(self) -> int:
        """COUNT exactly, in polynomial time (Section 5.3.2)."""
        return count_accepting_runs_of_length(self.nfa, self.length)

    def sample(self, rng: random.Random | int | None = None) -> Word:
        """GEN: an exactly uniform witness (Section 5.3.3).

        Raises :class:`EmptyWitnessSetError` when there are none.
        """
        if self._sampler is None:
            self._sampler = ExactUniformSampler(self.nfa, self.length, check=False)
        return self._sampler.sample(rng)

    def sample_or_none(self, rng: random.Random | int | None = None) -> Word | None:
        """GEN with the paper's ⊥ convention (None when empty)."""
        try:
            return self.sample(rng)
        except EmptyWitnessSetError:
            return None


class RelationNLSolver:
    """Theorem 2's solver suite for one compiled RelationNL instance."""

    def __init__(
        self,
        nfa: NFA,
        length: int,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
        params: FprasParameters | None = None,
    ):
        self.nfa = nfa.without_epsilon()
        self.length = length
        self.delta = delta
        self.rng = make_rng(rng)
        self.params = params
        self._generator: LasVegasUniformGenerator | None = None

    def enumerate(self) -> Iterator[Word]:
        """ENUM with polynomial delay (flashlight search)."""
        return enumerate_words_nfa(self.nfa, self.length)

    def count_approx(self, delta: float | None = None) -> float:
        """COUNT via the FPRAS (Theorem 22)."""
        return approx_count_nfa(
            self.nfa,
            self.length,
            delta=delta if delta is not None else self.delta,
            rng=self.rng,
            params=self.params,
        )

    def count_exact(self) -> int:
        """COUNT exactly — exponential worst case; baseline/testing only."""
        return count_words_exact(self.nfa, self.length)

    def _plvug(self) -> LasVegasUniformGenerator:
        if self._generator is None:
            self._generator = LasVegasUniformGenerator(
                self.nfa, self.length, delta=self.delta, rng=self.rng, params=self.params
            )
        return self._generator

    def sample(self) -> Word | None:
        """GEN via the PLVUG (Corollary 23); None encodes ⊥ (empty set)."""
        return self._plvug().generate()

    def sample_many(self, count: int) -> list[Word]:
        return self._plvug().sample_many(count)


class RelationUL:
    """A relation in RelationUL: a relation plus Theorem 5's guarantees.

    Wraps an :class:`AutomatonBackedRelation`; per-input solvers are built
    by :meth:`solver`, and the convenience methods decode witnesses back
    into the relation's domain objects.
    """

    def __init__(self, relation: AutomatonBackedRelation, check: bool = True):
        self.relation = relation
        self.check = check

    def solver(self, instance) -> RelationULSolver:
        compiled = self.relation.compile(instance)
        return RelationULSolver(compiled.nfa, compiled.length, check=self.check)

    def enumerate(self, instance) -> Iterator:
        solver = self.solver(instance)
        for w in solver.enumerate():
            yield self.relation.decode_witness(instance, w)

    def count(self, instance) -> int:
        return self.solver(instance).count()

    def sample(self, instance, rng: random.Random | int | None = None):
        w = self.solver(instance).sample(rng)
        return self.relation.decode_witness(instance, w)


class RelationNL:
    """A relation in RelationNL: a relation plus Theorem 2's guarantees."""

    def __init__(
        self,
        relation: AutomatonBackedRelation,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
        params: FprasParameters | None = None,
    ):
        self.relation = relation
        self.delta = delta
        self.rng = make_rng(rng)
        self.params = params

    def solver(self, instance) -> RelationNLSolver:
        compiled = self.relation.compile(instance)
        return RelationNLSolver(
            compiled.nfa,
            compiled.length,
            delta=self.delta,
            rng=self.rng,
            params=self.params,
        )

    def enumerate(self, instance) -> Iterator:
        solver = self.solver(instance)
        for w in solver.enumerate():
            yield self.relation.decode_witness(instance, w)

    def count_approx(self, instance, delta: float | None = None) -> float:
        return self.solver(instance).count_approx(delta)

    def count_exact(self, instance) -> int:
        return self.solver(instance).count_exact()

    def sample(self, instance):
        w = self.solver(instance).sample()
        if w is None:
            return None
        return self.relation.decode_witness(instance, w)

    def upgrade_if_unambiguous(self, instance) -> RelationULSolver | None:
        """Opportunistic upgrade: if this input's automaton happens to be
        unambiguous, return the (strictly better) RelationUL solver.

        The class dispatch a practical system would perform: unambiguity
        is checkable in polynomial time, and the exact algorithms dominate
        the approximate ones whenever they apply.
        """
        compiled = self.relation.compile(instance)
        if is_unambiguous(compiled.nfa):
            return RelationULSolver(compiled.nfa, compiled.length, check=False)
        return None


class TransducerRelation(AutomatonBackedRelation):
    """The relation ``R(M)`` of an NL-transducer ``M`` (Definition 1).

    Compilation is Lemma 13 (configuration graph → NFA).  The witness
    length must be supplied by the transducer's relation semantics — the
    paper's p-relation convention fixes ``|y| = q(|x|)``; pass that ``q``
    as ``witness_length``.
    """

    def __init__(self, transducer: Transducer, witness_length, name: str | None = None):
        self.transducer = transducer
        self.witness_length = witness_length
        self.name = name or f"R({transducer.name})"

    def compile(self, instance) -> CompiledInstance:
        nfa = compile_to_nfa(self.transducer, instance)
        return CompiledInstance(nfa=nfa, length=self.witness_length(instance))


class SpanLFunction:
    """A SpanL function ``f(x) = |M(x)|`` and its FPRAS (Corollary 3).

    ``witness_length`` gives the common output length on each input (the
    padding convention of Section 2.1).  ``approx`` runs Lemma 13 + the
    #NFA FPRAS; ``exact`` is the exponential baseline.
    """

    def __init__(self, transducer: Transducer, witness_length, name: str = "SpanL function"):
        self.relation = TransducerRelation(transducer, witness_length, name=name)
        self.name = name

    def approx(
        self,
        x,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
        params: FprasParameters | None = None,
    ) -> float:
        compiled = self.relation.compile(x)
        return approx_count_nfa(
            compiled.nfa, compiled.length, delta=delta, rng=rng, params=params
        )

    def exact(self, x) -> int:
        compiled = self.relation.compile(x)
        return count_words_exact(compiled.nfa, compiled.length)
