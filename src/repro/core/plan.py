"""The symbolic automaton-plan IR: lazy products lowered straight to the kernel.

The paper's headline applications are *compositions*: RPQ evaluation is
the synchronous product ``G × A_R`` (Section 4.2), spanner evaluation the
Lemma-13 document product ``N_{A,d}`` (Section 4.1), and the unambiguity
certificate itself is a self-product.  The eager pipeline materializes
the full cross product as an :class:`~repro.automata.nfa.NFA` — tuple
states, frozensets, validation — and then ``trim()`` throws most of it
away.  On large graphs or long documents that construction dominates
wall-clock and memory, not the counting.

This module makes the composition *symbolic*.  A :class:`Plan` is an
operator tree (:class:`Atom`, :class:`Product`, :class:`Union`,
:class:`Concat`, :class:`Star`, :class:`Relabel`, :class:`GraphProduct`,
:class:`DocProduct`) whose nodes expose one uniform on-the-fly
interface — ``initial`` / ``out_edges(state)`` / ``successors(state,
symbol)`` / ``finals`` — instead of a materialized transition set.
Composite states exist only while the lowering's frontier touches them.

:func:`lower_plan` is the fused lowering pass: it explores only the
forward-reachable product states layer by layer (and, in trimmed mode,
prunes to the backward-useful ones, exactly the Lemma 15 semantics of
:mod:`repro.core.unroll`), memoizes each state's successor block exactly
once, and writes the result *directly* into the integer-indexed CSR
arrays of :class:`~repro.core.kernel.CompiledDAG` — no intermediate NFA
object for composite inputs.  The lowering records a
:class:`LoweringStats` so callers (``WitnessSet.describe()``, the
``bench_lazy_product`` gate) can verify that no more states were ever
materialized than the exploration reached, and how that compares to the
nominal cross-product size the eager pipeline would have allocated.

Every plan is ε-free by construction: nodes that classically introduce
ε-transitions (:class:`Union`, :class:`Concat`, :class:`Star`) perform
the closure on the fly, Brzozowski-derivative style — the same move that
makes lazy regex engines (cf. :mod:`repro.automata.brzozowski`) avoid
materializing unreachable derivative states.

Interoperability: a plan implements enough of the :class:`NFA` read
interface (``initial`` / ``finals`` membership / ``out_edges`` /
``successors`` / ``alphabet`` / ``has_epsilon``) that the kernel, the
lazy self-product unambiguity check
(:func:`repro.automata.unambiguous.is_unambiguous`) and the shared
product exploration of :mod:`repro.automata.operations` consume NFAs and
plans through one code path.  :meth:`Plan.to_nfa` is the eager escape
hatch for algorithms that genuinely need a materialized automaton (the
FPRAS fallback on ambiguous instances).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator, Mapping, TypeAlias, cast

from repro.automata.nfa import NFA, State, Symbol
from repro.core.kernel import CompiledDAG
from repro.errors import InvalidAutomatonError

if TYPE_CHECKING:
    from repro.graphdb.graph import GraphDatabase, Vertex
    from repro.spanners.eva import EVA

#: The successor memo shared between :func:`lower_plan` and
#: :class:`_MemoSource`: plan state → its (symbol, target) block.
_Adjacency: TypeAlias = "dict[State, tuple[tuple[Symbol, State], ...]]"


@dataclass(frozen=True)
class LoweringStats:
    """What :func:`lower_plan` touched, versus what eager would have built.

    Attributes
    ----------
    nominal_states:
        The cross-product state count the eager construction allocates
        (``|V|·|Q|`` for a graph product, ``|Q_L|·|Q_R|`` for an
        intersection, ...), before any trimming.
    explored_states:
        Distinct plan states whose successor blocks were computed — the
        only states that ever existed in memory.
    reached_states:
        Distinct plan states the forward exploration reached within
        ``n`` layers (a state can be reached at layer ``n`` without
        being expanded).  ``explored_states ≤ reached_states`` always:
        the lowering never materializes a state it did not reach.
    explored_edges:
        Total successor edges memoized during exploration.
    kernel_vertices / kernel_edges:
        Size of the compiled DAG actually handed to the algorithms
        (after trimmed-mode pruning).
    n / trimmed:
        The lowering request.
    """

    nominal_states: int
    explored_states: int
    reached_states: int
    explored_edges: int
    kernel_vertices: int
    kernel_edges: int
    n: int
    trimmed: bool

    def as_dict(self) -> dict[str, int | bool]:
        return {
            "nominal_states": self.nominal_states,
            "explored_states": self.explored_states,
            "reached_states": self.reached_states,
            "explored_edges": self.explored_edges,
            "kernel_vertices": self.kernel_vertices,
            "kernel_edges": self.kernel_edges,
            "n": self.n,
            "trimmed": self.trimmed,
        }


class _LazyFinals:
    """Set-like view of a plan's accepting states (membership only).

    The kernel and the lazy product explorations only ever ask ``state in
    finals``; answering through :meth:`Plan.is_final` keeps composite
    finals symbolic (no enumeration of accepting product states).
    """

    __slots__ = ("_plan",)

    _plan: "Plan"

    def __init__(self, plan: "Plan") -> None:
        self._plan = plan

    def __contains__(self, state: object) -> bool:
        return self._plan.is_final(state)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<LazyFinals of {self._plan.describe()}>"


class Plan:
    """Base class: one node of the symbolic automaton-plan IR.

    Subclasses implement :attr:`initial`, :meth:`out_edges`,
    :meth:`is_final`, :attr:`alphabet` and :meth:`nominal_states`; the
    uniform derived interface (:meth:`successors`, :attr:`finals`,
    :meth:`accepts`, :meth:`to_nfa`, the ``&``/``|`` operator sugar)
    comes for free.  ``out_edges`` must yield *distinct* ``(symbol,
    target)`` pairs — the same contract :meth:`NFA.out_edges` satisfies —
    because the kernel lowering turns each pair into one CSR edge.
    """

    #: Plans are ε-free by construction (the NFA-interface contract).
    has_epsilon: bool = False

    @property
    def initial(self) -> State:
        raise NotImplementedError

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        """Distinct ``(symbol, target)`` pairs leaving ``state`` — the
        on-the-fly successor interface every consumer walks."""
        raise NotImplementedError

    def is_final(self, state: State) -> bool:
        raise NotImplementedError

    @property
    def alphabet(self) -> frozenset[Symbol]:
        raise NotImplementedError

    def nominal_states(self) -> int:
        """The state count of the eager (cross-product) construction."""
        raise NotImplementedError

    def describe(self) -> str:
        """A short shape string for reports (`ws.describe()["plan"]`)."""
        return type(self).__name__

    # -- derived interface -------------------------------------------------

    @property
    def finals(self) -> _LazyFinals:
        """Membership-only view of the accepting states."""
        return _LazyFinals(self)

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        """Targets of ``state`` on ``symbol`` (the NFA-compatible form)."""
        return frozenset(t for s, t in self.out_edges(state) if s == symbol)

    def accepts(self, input_word: Iterable[Symbol]) -> bool:
        """On-the-fly subset simulation — no materialization."""
        current: set[State] = {self.initial}
        for symbol in input_word:
            nxt: set[State] = set()
            for state in current:
                for edge_symbol, target in self.out_edges(state):
                    if edge_symbol == symbol:
                        nxt.add(target)
            if not nxt:
                return False
            current = nxt
        return any(self.is_final(state) for state in current)

    def to_nfa(self) -> NFA:
        """Eagerly materialize the reachable fragment as an :class:`NFA`.

        The escape hatch for algorithms that need a concrete automaton
        (the ambiguous-instance FPRAS fallback, ``languages_equal``
        ground-truthing in tests).  Cost is the eager product cost the
        lazy pipeline otherwise avoids.
        """
        initial = self.initial
        states: set[State] = {initial}
        transitions: list[tuple[State, Symbol, State]] = []
        frontier: deque[State] = deque([initial])
        while frontier:
            state = frontier.popleft()
            for symbol, target in self.out_edges(state):
                transitions.append((state, symbol, target))
                if target not in states:
                    states.add(target)
                    frontier.append(target)
        finals = [state for state in states if self.is_final(state)]
        return NFA(states, self.alphabet, transitions, initial, finals)

    def __and__(self, other: "Plan | NFA | str") -> "Product":
        return Product(self, as_plan(other))

    def __or__(self, other: "Plan | NFA | str") -> "Union":
        return Union(self, as_plan(other))

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<Plan {self.describe()}>"


def as_plan(source: "Plan | NFA | str") -> Plan:
    """Coerce an operand into a plan: plans pass through, NFAs wrap in
    :class:`Atom`, strings compile as regexes."""
    if isinstance(source, Plan):
        return source
    if isinstance(source, NFA):
        return Atom(source)
    if isinstance(source, str):
        from repro.automata.regex import compile_regex

        return Atom(compile_regex(source))
    raise InvalidAutomatonError(
        f"cannot build a plan from {type(source).__name__}; "
        "expected a Plan, NFA or regex string"
    )


class Atom(Plan):
    """A leaf: one concrete automaton (ε-eliminated at wrap time)."""

    __slots__ = ("nfa",)

    nfa: NFA

    def __init__(self, nfa: NFA) -> None:
        self.nfa = nfa.without_epsilon()

    @property
    def initial(self) -> State:
        return self.nfa.initial

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        return self.nfa.out_edges(state)

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        return self.nfa.successors(state, symbol)

    def is_final(self, state: State) -> bool:
        return state in self.nfa.finals

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self.nfa.alphabet

    def nominal_states(self) -> int:
        return self.nfa.num_states

    def describe(self) -> str:
        return f"Atom(states={self.nfa.num_states})"


class Product(Plan):
    """Synchronous product / intersection: states are ``(left, right)``
    pairs, expanded only when the lowering frontier reaches them.

    State naming matches the eager
    :func:`repro.automata.operations.intersection`, so the lazy lowering
    and the eager product compile to bit-identical kernels (the
    equivalence tests rely on this for seeded sampling comparisons).
    """

    __slots__ = ("left", "right")

    left: Plan
    right: Plan

    def __init__(self, left: "Plan | NFA | str", right: "Plan | NFA | str") -> None:
        self.left = as_plan(left)
        self.right = as_plan(right)

    @property
    def initial(self) -> State:
        return (self.left.initial, self.right.initial)

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        left_state, right_state = cast("tuple[State, State]", state)
        for symbol, left_target in self.left.out_edges(left_state):
            for right_target in self.right.successors(right_state, symbol):
                yield symbol, (left_target, right_target)

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        left_state, right_state = cast("tuple[State, State]", state)
        return frozenset(
            (left_target, right_target)
            for left_target in self.left.successors(left_state, symbol)
            for right_target in self.right.successors(right_state, symbol)
        )

    def is_final(self, state: State) -> bool:
        pair = cast("tuple[State, State]", state)
        return self.left.is_final(pair[0]) and self.right.is_final(pair[1])

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self.left.alphabet & self.right.alphabet

    def nominal_states(self) -> int:
        return self.left.nominal_states() * self.right.nominal_states()

    def describe(self) -> str:
        return f"Product({self.left.describe()}, {self.right.describe()})"


#: The intersection spelling of the same node.
Intersect = Product


class Union(Plan):
    """L(left) ∪ L(right) with the ε-fan-out performed on the fly.

    The classical construction adds a fresh initial state with
    ε-transitions into both operands; here the fresh state's successors
    are simply the merged successor blocks of the two operand initials,
    and it accepts iff either operand accepts ε.
    """

    __slots__ = ("left", "right")

    left: Plan
    right: Plan

    _INITIAL: ClassVar[tuple[str, int]] = ("∪", 0)

    def __init__(self, left: "Plan | NFA | str", right: "Plan | NFA | str") -> None:
        self.left = as_plan(left)
        self.right = as_plan(right)

    @property
    def initial(self) -> State:
        return self._INITIAL

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        if state == self._INITIAL:
            for symbol, target in self.left.out_edges(self.left.initial):
                yield symbol, (0, target)
            for symbol, target in self.right.out_edges(self.right.initial):
                yield symbol, (1, target)
            return
        tag, inner = cast("tuple[int, State]", state)
        child = self.left if tag == 0 else self.right
        for symbol, target in child.out_edges(inner):
            yield symbol, (tag, target)

    def is_final(self, state: State) -> bool:
        if state == self._INITIAL:
            return self.left.is_final(self.left.initial) or self.right.is_final(
                self.right.initial
            )
        tag, inner = cast("tuple[int, State]", state)
        return (self.left if tag == 0 else self.right).is_final(inner)

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self.left.alphabet | self.right.alphabet

    def nominal_states(self) -> int:
        return self.left.nominal_states() + self.right.nominal_states() + 1

    def describe(self) -> str:
        return f"Union({self.left.describe()}, {self.right.describe()})"


class Concat(Plan):
    """L(left)·L(right) with the final→initial ε-bridge taken on the fly.

    Reading a symbol into a left-final state also offers the right
    operand's initial successors (the ε-closure of the textbook
    construction), so no ε-edges — and no unreachable right-side
    states — ever exist.
    """

    __slots__ = ("left", "right")

    left: Plan
    right: Plan

    def __init__(self, left: "Plan | NFA | str", right: "Plan | NFA | str") -> None:
        self.left = as_plan(left)
        self.right = as_plan(right)

    @property
    def initial(self) -> State:
        return (0, self.left.initial)

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        tag, inner = cast("tuple[int, State]", state)
        if tag == 1:
            for symbol, target in self.right.out_edges(inner):
                yield symbol, (1, target)
            return
        # Left edges carry tag 0 and bridge edges tag 1, so the two
        # groups can never collide — no dedup needed (unlike Star, where
        # both groups share the child's tag).
        for symbol, target in self.left.out_edges(inner):
            yield symbol, (0, target)
        if self.left.is_final(inner):
            for symbol, target in self.right.out_edges(self.right.initial):
                yield symbol, (1, target)

    def is_final(self, state: State) -> bool:
        tag, inner = cast("tuple[int, State]", state)
        if tag == 1:
            return self.right.is_final(inner)
        return self.left.is_final(inner) and self.right.is_final(self.right.initial)

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self.left.alphabet | self.right.alphabet

    def nominal_states(self) -> int:
        return self.left.nominal_states() + self.right.nominal_states()

    def describe(self) -> str:
        return f"Concat({self.left.describe()}, {self.right.describe()})"


class Star(Plan):
    """L(child)* with the loop-back ε taken on the fly (Thompson star,
    hub state included so ε is accepted)."""

    __slots__ = ("child",)

    child: Plan

    _HUB: ClassVar[tuple[str, int]] = ("★", 0)

    def __init__(self, child: "Plan | NFA | str") -> None:
        self.child = as_plan(child)

    @property
    def initial(self) -> State:
        return self._HUB

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        child = self.child
        if state == self._HUB:
            for symbol, target in child.out_edges(child.initial):
                yield symbol, (0, target)
            return
        _, inner = cast("tuple[int, State]", state)
        seen: set[tuple[Symbol, State]] = set()
        for symbol, target in child.out_edges(inner):
            edge = (symbol, (0, target))
            seen.add(edge)
            yield edge
        if child.is_final(inner):
            for symbol, target in child.out_edges(child.initial):
                edge = (symbol, (0, target))
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    def is_final(self, state: State) -> bool:
        if state == self._HUB:
            return True
        _, inner = cast("tuple[int, State]", state)
        return self.child.is_final(inner)

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self.child.alphabet

    def nominal_states(self) -> int:
        return self.child.nominal_states() + 1

    def describe(self) -> str:
        return f"Star({self.child.describe()})"


class Relabel(Plan):
    """Symbol relabelling through an injective mapping, applied per edge."""

    __slots__ = ("child", "mapping", "_inverse")

    child: Plan
    mapping: dict[Symbol, Symbol]
    _inverse: dict[Symbol, Symbol]

    def __init__(self, child: "Plan | NFA | str", mapping: Mapping[Symbol, Symbol]) -> None:
        if len(set(mapping.values())) != len(mapping):
            raise InvalidAutomatonError("symbol mapping must be injective")
        self.child = as_plan(child)
        missing = self.child.alphabet - set(mapping)
        if missing:
            raise InvalidAutomatonError(
                f"mapping does not cover symbols {sorted(map(repr, missing))}"
            )
        self.mapping = dict(mapping)
        self._inverse = {new: old for old, new in self.mapping.items()}

    @property
    def initial(self) -> State:
        return self.child.initial

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        mapping = self.mapping
        for symbol, target in self.child.out_edges(state):
            yield mapping[symbol], target

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        original = self._inverse.get(symbol)
        if original is None:
            return frozenset()
        return self.child.successors(state, original)

    def is_final(self, state: State) -> bool:
        return self.child.is_final(state)

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return frozenset(self.mapping[s] for s in self.child.alphabet)

    def nominal_states(self) -> int:
        return self.child.nominal_states()

    def describe(self) -> str:
        return f"Relabel({self.child.describe()})"


class GraphProduct(Plan):
    """The RPQ product ``G × A_R`` of Section 4.2, never materialized.

    States are ``(vertex, query state)`` pairs; symbols are ``(label,
    target vertex)`` pairs so a word both *is* a path encoding and
    carries the label word (the paths-not-pairs semantics of footnote 1).
    Matches :func:`repro.graphdb.rpq.compile_rpq` state-for-state, but a
    pair exists only while the lowering frontier holds it — on a large
    graph the eager product allocates ``|V|·|Q|`` states before
    ``trim()`` discards the bulk, while this node's lowering only ever
    touches the pairs reachable from ``(source, q₀)`` within ``n``
    steps.
    """

    __slots__ = ("graph", "query", "source", "target", "_alphabet")

    graph: GraphDatabase
    query: NFA
    source: Vertex
    target: Vertex
    _alphabet: frozenset[Symbol] | None

    def __init__(
        self, graph: GraphDatabase, query: NFA, source: Vertex, target: Vertex
    ) -> None:
        from repro.errors import InvalidRelationInputError

        if source not in graph.vertices or target not in graph.vertices:
            raise InvalidRelationInputError("endpoints must be graph vertices")
        self.graph = graph
        self.query = query.without_epsilon()
        self.source = source
        self.target = target
        self._alphabet = None

    @property
    def initial(self) -> State:
        return (self.source, self.query.initial)

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        vertex, q = cast("tuple[Vertex, State]", state)
        query = self.query
        for label, next_vertex in self.graph.out_edges(vertex):
            for q_next in query.successors(q, label):
                yield (label, next_vertex), (next_vertex, q_next)

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        vertex, q = cast("tuple[Vertex, State]", state)
        label, next_vertex = cast("tuple[str, Vertex]", symbol)
        if not self.graph.has_edge(vertex, label, next_vertex):
            return frozenset()
        return frozenset(
            (next_vertex, q_next) for q_next in self.query.successors(q, label)
        )

    def is_final(self, state: State) -> bool:
        vertex, q = cast("tuple[Vertex, State]", state)
        return vertex == self.target and q in self.query.finals

    @property
    def alphabet(self) -> frozenset[Symbol]:
        if self._alphabet is None:
            self._alphabet = frozenset(
                (label, target) for _, label, target in self.graph.edges
            )
        return self._alphabet

    def nominal_states(self) -> int:
        return self.graph.num_vertices * self.query.num_states

    def describe(self) -> str:
        return (
            f"GraphProduct(|V|={self.graph.num_vertices}, "
            f"|E|={self.graph.num_edges}, query_states={self.query.num_states})"
        )


class DocProduct(Plan):
    """The spanner document product ``N_{A,d}`` of Lemma 13 / Section 4.1.

    States are ``(eVA state, position)`` pairs plus the ``accept`` sink;
    symbols are marker sets (the witness encoding of Corollaries 6–7).
    Mirrors :func:`repro.spanners.evaluation.compile_eva` transition for
    transition, but the eager compiler allocates all ``|Q|·(n+1)``
    configuration states up front and trims afterwards — this node only
    ever yields the configurations a run can actually visit.
    """

    __slots__ = ("eva", "document", "_choices", "_options")

    eva: EVA
    document: str
    _choices: frozenset[Symbol]
    _options: dict[State, tuple[tuple[Symbol, State], ...]]

    _ACCEPT: ClassVar[tuple[str]] = ("accept",)

    def __init__(self, eva: EVA, document: str) -> None:
        eva.require_functional()
        self.eva = eva
        self.document = document
        self._choices = eva.marker_choices()
        # Per eVA state: the (marker set, state after markers) pairs a run
        # can take at one position — ∅ (stay put) plus each variable
        # transition.  Precomputed once so the per-configuration successor
        # walk does no marker-set scanning.
        self._options = {
            q: ((frozenset(), q),)
            + tuple((t.markers, t.target) for t in eva.variable_successors(q))
            for q in eva.states
        }

    @property
    def initial(self) -> State:
        return (self.eva.initial, 0)

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        if state == self._ACCEPT:
            return
        q, position = cast("tuple[State, int]", state)
        eva = self.eva
        document = self.document
        n = len(document)
        seen: set[tuple[Symbol, State]] = set()
        for symbol, q_mid in self._options[q]:
            if position < n:
                for q_next in eva.letter_successors(q_mid, document[position]):
                    edge = (symbol, (q_next, position + 1))
                    if edge not in seen:
                        seen.add(edge)
                        yield edge
            elif q_mid in eva.finals:
                edge = (symbol, self._ACCEPT)
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    def is_final(self, state: State) -> bool:
        return state == self._ACCEPT

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self._choices

    def nominal_states(self) -> int:
        return len(self.eva.states) * (len(self.document) + 1) + 1

    def describe(self) -> str:
        return (
            f"DocProduct(eva_states={len(self.eva.states)}, "
            f"doc_length={len(self.document)})"
        )


# ----------------------------------------------------------------------
# The fused lowering pass
# ----------------------------------------------------------------------


class _MemoSource:
    """The adjacency memo :func:`lower_plan` built, wearing the NFA read
    interface the kernel consumes.

    Every successor block computed during exploration is served from the
    memo; states first touched later (``CompiledDAG.extend_to`` growing a
    reachable-mode kernel) fall through to the plan and are memoized
    then.  This is what lets one CSR-construction code path serve both
    concrete NFAs and symbolic plans.
    """

    __slots__ = ("plan", "adjacency")

    plan: Plan
    adjacency: _Adjacency

    has_epsilon = False

    def __init__(self, plan: Plan, adjacency: _Adjacency) -> None:
        self.plan = plan
        self.adjacency = adjacency

    @property
    def initial(self) -> State:
        return self.plan.initial

    @property
    def finals(self) -> _LazyFinals:
        return self.plan.finals

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self.plan.alphabet

    def out_edges(self, state: State) -> tuple[tuple[Symbol, State], ...]:
        edges = self.adjacency.get(state)
        if edges is None:
            edges = tuple(self.plan.out_edges(state))
            self.adjacency[state] = edges
        return edges

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        return frozenset(t for s, t in self.out_edges(state) if s == symbol)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<MemoSource {self.plan.describe()} states={len(self.adjacency)}>"


def memoized_source(plan: "Plan | NFA | str") -> _MemoSource:
    """Wrap ``plan`` so each state's successor block is computed once.

    Used by consumers that revisit states many times (the self-product
    ambiguity walk); :func:`lower_plan` builds its own memo internally.
    """
    return _MemoSource(as_plan(plan), {})


def lower_plan(
    plan: "Plan | NFA | str",
    n: int,
    trimmed: bool = True,
    adjacency: _Adjacency | None = None,
) -> CompiledDAG:
    """Lower ``plan``'s length-``n`` unrolling straight into a kernel.

    One fused pass: explore the forward-reachable plan states layer by
    layer (each state's successor block computed exactly once and
    memoized), prune to the backward-useful vertices when ``trimmed``
    (the Lemma 15 semantics of :func:`repro.core.unroll.unroll_trimmed`),
    then hand the memoized adjacency and the live-layer sets to
    :class:`~repro.core.kernel.CompiledDAG`, which writes the CSR edge
    arrays from the memo — never from a materialized NFA.

    The returned kernel is bit-identical (states, edge order, symbols) to
    compiling the eager product NFA of the same composition, so exact
    counts, spectra and seeded sampling streams agree with the eager
    pipeline; only the construction cost differs.  ``kernel.lowering``
    carries the :class:`LoweringStats`.

    ``adjacency`` optionally supplies a successor memo shared across
    several lowerings of the *same plan* (the facade passes one dict for
    its trimmed and reachable kernels, so the exploration is paid once
    per witness set); the stats still report only the states this
    lowering's own forward pass reached.
    """
    if n < 0:
        raise ValueError("word length must be ≥ 0")
    plan = as_plan(plan)
    if adjacency is None:
        adjacency = {}
    source = _MemoSource(plan, adjacency)

    layers: list[frozenset[State]] = [frozenset({plan.initial})]
    for _ in range(n):
        nxt: set[State] = set()
        for state in layers[-1]:
            for _, target in source.out_edges(state):
                nxt.add(target)
        layers.append(frozenset(nxt))

    reached: set[State] = set()
    for layer in layers:
        reached |= layer

    if trimmed:
        finals = plan.finals
        # The backward-useful layers, built back to front (appending the
        # earlier layer each step, then reversing) so no placeholder slots
        # ever hold a non-frozenset.
        alive: list[frozenset[State]] = [
            frozenset(state for state in layers[n] if state in finals)
        ]
        for t in range(n - 1, -1, -1):
            later = alive[-1]
            alive.append(
                frozenset(
                    state
                    for state in layers[t]
                    if any(target in later for _, target in adjacency[state])
                )
            )
        alive.reverse()
        layers = alive

    kernel = CompiledDAG(source, n, trimmed, layers=layers)
    # Count against `reached` (not the raw memo) so a shared adjacency
    # dict from an earlier lowering never inflates this lowering's stats.
    explored = [state for state in reached if state in adjacency]
    kernel.lowering = LoweringStats(
        nominal_states=plan.nominal_states(),
        explored_states=len(explored),
        reached_states=len(reached),
        explored_edges=sum(len(adjacency[state]) for state in explored),
        kernel_vertices=kernel.vertex_count(),
        kernel_edges=kernel.edge_count(),
        n=n,
        trimmed=trimmed,
    )
    return kernel


__all__ = [
    "Plan",
    "Atom",
    "Product",
    "Intersect",
    "Union",
    "Concat",
    "Star",
    "Relabel",
    "GraphProduct",
    "DocProduct",
    "LoweringStats",
    "as_plan",
    "lower_plan",
    "memoized_source",
]
