"""Context-free extension: counting and sampling derivations of a CFG.

The paper's history section leans on [GJK+97] — the quasi-polynomial
scheme for *sampling words from a context-free language* that was, with
KSM95, the previous best for this problem family.  This subpackage
provides the exact substrate of that problem: Chomsky-normal-form
grammars, the O(n³)-style dynamic program counting derivation trees per
(nonterminal, length), exactly uniform *derivation* sampling, and — for
unambiguous grammars, where derivations biject with words — exact uniform
*word* sampling and counting, the context-free analogue of the paper's
RelationUL story.  For ambiguous grammars the derivation/word gap is
precisely the #NFA-style difficulty the paper's FPRAS resolves for the
regular case; the module exposes the gap rather than hiding it.
"""

from repro.grammars.cfg import (
    CNFGrammar,
    Rule,
    count_derivations,
    derivation_sampler,
    parse_cnf,
)

__all__ = ["CNFGrammar", "Rule", "count_derivations", "derivation_sampler", "parse_cnf"]
