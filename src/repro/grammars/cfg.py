"""Chomsky-normal-form grammars: derivation counting and uniform sampling.

A CNF grammar has rules ``A → B C`` (two nonterminals) and ``A → a`` (one
terminal).  The derivation-tree count per (nonterminal, length) obeys the
convolution recurrence

    T(A, 1) = #{A → a},
    T(A, ℓ) = Σ_{A → B C} Σ_{i=1}^{ℓ-1} T(B, i) · T(C, ℓ - i),

computable exactly in O(|R|·n²) bignum steps.  Uniform derivation-tree
sampling walks the same table top-down (choose a rule and a split point
with probability proportional to its count) — the exact analogue of the
paper's §5.3.3 sampler with the DAG replaced by the derivation DP.

For *unambiguous* grammars each word has one derivation, so derivation
counts/samples are word counts/samples — the context-free RelationUL
case.  For ambiguous grammars, word counting from derivation counts
over-counts, exactly as accepting-run counting over-counts for ambiguous
NFAs (Section 6.1); :meth:`CNFGrammar.word_multiplicities` makes the gap
measurable on small instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import EmptyWitnessSetError, InvalidRelationInputError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class Rule:
    """A CNF rule: ``head → body`` with body a terminal or a pair."""

    head: str
    body: tuple  # ("a",) terminal rule, or ("B", "C") binary rule

    def __post_init__(self):
        if len(self.body) not in (1, 2):
            raise InvalidRelationInputError(
                f"CNF bodies have 1 terminal or 2 nonterminals, got {self.body!r}"
            )

    @property
    def is_terminal(self) -> bool:
        return len(self.body) == 1


class CNFGrammar:
    """An immutable CNF grammar.

    Parameters
    ----------
    nonterminals / terminals:
        Disjoint symbol sets (validated).
    rules:
        Iterable of :class:`Rule` (or (head, body) pairs).
    start:
        The start nonterminal.
    """

    def __init__(
        self,
        nonterminals: Iterable[str],
        terminals: Iterable[str],
        rules: Iterable,
        start: str,
    ):
        self.nonterminals = frozenset(nonterminals)
        self.terminals = frozenset(terminals)
        self.start = start
        normalized = []
        for rule in rules:
            if not isinstance(rule, Rule):
                head, body = rule
                rule = Rule(head, tuple(body))
            normalized.append(rule)
        self.rules = tuple(normalized)
        self._validate()
        self._by_head: dict[str, list[Rule]] = {}
        for rule in self.rules:
            self._by_head.setdefault(rule.head, []).append(rule)

    def _validate(self) -> None:
        if self.nonterminals & self.terminals:
            raise InvalidRelationInputError("nonterminals and terminals must be disjoint")
        if self.start not in self.nonterminals:
            raise InvalidRelationInputError(f"start symbol {self.start!r} not a nonterminal")
        for rule in self.rules:
            if rule.head not in self.nonterminals:
                raise InvalidRelationInputError(f"rule head {rule.head!r} not a nonterminal")
            if rule.is_terminal:
                if rule.body[0] not in self.terminals:
                    raise InvalidRelationInputError(
                        f"terminal rule body {rule.body[0]!r} not a terminal"
                    )
            else:
                for part in rule.body:
                    if part not in self.nonterminals:
                        raise InvalidRelationInputError(
                            f"binary rule body symbol {part!r} not a nonterminal"
                        )

    def rules_for(self, head: str) -> list[Rule]:
        return self._by_head.get(head, [])

    # ------------------------------------------------------------------
    # Recognition and brute-force semantics (test oracles)
    # ------------------------------------------------------------------

    def recognizes(self, w: Sequence[str]) -> bool:
        """CYK membership test, O(n³·|R|)."""
        n = len(w)
        if n == 0:
            return False  # CNF has no ε-rules
        table: dict[tuple, set] = {}
        for i, symbol in enumerate(w):
            table[(i, 1)] = {
                rule.head for rule in self.rules if rule.is_terminal and rule.body[0] == symbol
            }
        for span in range(2, n + 1):
            for i in range(n - span + 1):
                cell: set = set()
                for split in range(1, span):
                    left = table.get((i, split), set())
                    right = table.get((i + split, span - split), set())
                    for rule in self.rules:
                        if not rule.is_terminal and rule.body[0] in left and rule.body[1] in right:
                            cell.add(rule.head)
                table[(i, span)] = cell
        return self.start in table.get((0, n), set())

    def words_of_length(self, n: int, limit: int = 100_000) -> list[tuple]:
        """All length-n words of the language (exponential; tests only)."""
        memo: dict[tuple, set] = {}

        def expand(head: str, length: int) -> set:
            key = (head, length)
            if key in memo:
                return memo[key]
            memo[key] = set()  # cycle guard: languages of shorter length only
            out: set = set()
            for rule in self.rules_for(head):
                if rule.is_terminal:
                    if length == 1:
                        out.add((rule.body[0],))
                else:
                    for split in range(1, length):
                        for left in expand(rule.body[0], split):
                            for right in expand(rule.body[1], length - split):
                                out.add(left + right)
                                if len(out) > limit:
                                    raise InvalidRelationInputError("word set too large")
            memo[key] = out
            return out

        return sorted(expand(self.start, n)) if n > 0 else []

    def word_multiplicities(self, n: int) -> dict[tuple, int]:
        """word → number of derivation trees (ambiguity profile)."""
        # Exact route: recompute per word by constrained DP.
        result: dict[tuple, int] = {}
        for w in self.words_of_length(n):
            result[w] = _count_derivations_of_word(self, w)
        return result

    def is_unambiguous_up_to(self, n: int) -> bool:
        """Check derivations-per-word = 1 for all words of length ≤ n."""
        for length in range(1, n + 1):
            for w, multiplicity in self.word_multiplicities(length).items():
                if multiplicity != 1:
                    return False
        return True


def parse_cnf(text: str) -> CNFGrammar:
    """Parse the textual CNF syntax used by CLI ``--cfg`` files.

    One rule per line, ``Head -> body | body | ...`` with ``#`` comments;
    a body is either one terminal or two nonterminal names separated by
    whitespace.  The start symbol is the head of the first rule,
    nonterminals are exactly the rule heads, and every other body symbol
    is a terminal.  Example::

        # balanced-ish toy grammar
        S -> A B | a
        A -> a
        B -> b

    CNF shape violations surface through :class:`CNFGrammar`'s own
    validation.
    """
    rules: list[Rule] = []
    heads: list[str] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" not in line:
            raise InvalidRelationInputError(
                f"line {line_number}: expected 'Head -> body | body', got {raw!r}"
            )
        head, _, bodies = line.partition("->")
        head = head.strip()
        if not head or len(head.split()) != 1:
            raise InvalidRelationInputError(
                f"line {line_number}: rule head must be a single symbol, got {head!r}"
            )
        if head not in heads:
            heads.append(head)
        for body_text in bodies.split("|"):
            body = tuple(body_text.split())
            if len(body) not in (1, 2):
                raise InvalidRelationInputError(
                    f"line {line_number}: CNF bodies have 1 terminal or 2 "
                    f"nonterminals, got {body_text.strip()!r}"
                )
            rules.append(Rule(head, body))
    if not rules:
        raise InvalidRelationInputError("no grammar rules found")
    nonterminals = set(heads)
    terminals = {
        symbol for rule in rules for symbol in rule.body if symbol not in nonterminals
    }
    return CNFGrammar(nonterminals, terminals, rules, heads[0])


def _count_derivations_of_word(grammar: CNFGrammar, w: Sequence[str]) -> int:
    """Weighted CYK: number of derivation trees of this specific word."""
    n = len(w)
    table: dict[tuple, dict[str, int]] = {}
    for i, symbol in enumerate(w):
        cell: dict[str, int] = {}
        for rule in grammar.rules:
            if rule.is_terminal and rule.body[0] == symbol:
                cell[rule.head] = cell.get(rule.head, 0) + 1
        table[(i, 1)] = cell
    for span in range(2, n + 1):
        for i in range(n - span + 1):
            cell = {}
            for split in range(1, span):
                left = table.get((i, split), {})
                right = table.get((i + split, span - split), {})
                for rule in grammar.rules:
                    if rule.is_terminal:
                        continue
                    ways = left.get(rule.body[0], 0) * right.get(rule.body[1], 0)
                    if ways:
                        cell[rule.head] = cell.get(rule.head, 0) + ways
            table[(i, span)] = cell
    return table.get((0, n), {}).get(grammar.start, 0)


def count_derivations(grammar: CNFGrammar, n: int) -> dict[tuple, int]:
    """The table ``T(A, ℓ)`` for ℓ = 1..n — exact bignum counts.

    ``T(A, ℓ)`` counts derivation *trees*; it equals the number of
    length-ℓ words derivable from A iff the grammar is unambiguous.
    """
    table: dict[tuple, int] = {}
    for head in grammar.nonterminals:
        table[(head, 1)] = sum(1 for rule in grammar.rules_for(head) if rule.is_terminal)
    for length in range(2, n + 1):
        for head in grammar.nonterminals:
            total = 0
            for rule in grammar.rules_for(head):
                if rule.is_terminal:
                    continue
                left_head, right_head = rule.body
                for split in range(1, length):
                    total += table[(left_head, split)] * table[(right_head, length - split)]
            table[(head, length)] = total
    return table


class derivation_sampler:
    """Exactly uniform sampler over derivation trees of length ``n``.

    The top-down walk of the counting table: at (head, length), pick a
    (rule, split) pair with probability proportional to its subtree
    count, recurse.  Bignum cumulative sums + ``randrange`` — no floats,
    exact uniformity over *derivations* (hence over words iff the grammar
    is unambiguous; the class exposes which regime the caller is in only
    through :meth:`CNFGrammar.is_unambiguous_up_to`, since deciding CFG
    ambiguity in general is undecidable).
    """

    def __init__(self, grammar: CNFGrammar, n: int, counts: dict | None = None):
        if n < 1:
            raise ValueError("CNF languages contain no empty word; need n ≥ 1")
        self.grammar = grammar
        self.n = n
        self.counts = counts if counts is not None else count_derivations(grammar, n)
        self.total = self.counts[(grammar.start, n)]

    def sample_word(self, rng: random.Random | int | None = None) -> tuple:
        """The yield (terminal word) of one uniform derivation tree."""
        return tuple(leaf for leaf in self._sample(self.grammar.start, self.n, make_rng(rng)))

    def _sample(self, head: str, length: int, generator: random.Random) -> list:
        total = self.counts[(head, length)]
        if total == 0:
            raise EmptyWitnessSetError(
                f"no derivations of length {length} from {head!r}"
            )
        pick = generator.randrange(total)
        accumulated = 0
        for rule in self.grammar.rules_for(head):
            if rule.is_terminal:
                if length == 1:
                    accumulated += 1
                    if pick < accumulated:
                        return [rule.body[0]]
                continue
            left_head, right_head = rule.body
            for split in range(1, length):
                weight = self.counts[(left_head, split)] * self.counts[(right_head, length - split)]
                if not weight:
                    continue
                accumulated += weight
                if pick < accumulated:
                    return self._sample(left_head, split, generator) + self._sample(
                        right_head, length - split, generator
                    )
        raise AssertionError("cumulative walk exhausted without a choice")
