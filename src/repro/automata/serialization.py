"""Serialization and visualization: JSON round-trips and DOT export.

A library users adopt needs its objects to survive a process boundary.
This module provides:

* :func:`nfa_to_json` / :func:`nfa_from_json` — a stable, versioned JSON
  encoding of NFAs (states and symbols must be JSON-representable:
  strings, numbers, booleans, or nested lists/tuples thereof; tuples are
  encoded as tagged lists so round-trips are exact);
* :func:`nfa_to_dot` — Graphviz DOT text for automata (initial state
  marked with an entry arrow, finals double-circled);
* :func:`unrolled_dag_to_dot` — the layered ``N_unroll`` view, which is
  how Figure 2 of the paper can be re-rendered from code.

The JSON format is intentionally explicit about ε (the sentinel has no
JSON value, so it is encoded as the tagged object ``{"ε": true}``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.automata.nfa import EPSILON, NFA
from repro.core.unroll import UnrolledDAG
from repro.errors import InvalidAutomatonError

FORMAT_VERSION = 1

_TUPLE_TAG = "§tuple"
_EPSILON_TAG = "§epsilon"


def _encode_atom(value: Any) -> Any:
    """Encode a state/symbol into JSON-safe form (tuples tagged)."""
    if value is EPSILON:
        return {_EPSILON_TAG: True}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_atom(item) for item in value]}
    if isinstance(value, frozenset):
        # frozensets appear as spanner marker-set symbols; encode sorted.
        return {"§frozenset": [_encode_atom(item) for item in sorted(value, key=repr)]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise InvalidAutomatonError(
        f"cannot serialize {value!r}: states/symbols must be JSON-representable"
    )


def _decode_atom(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_EPSILON_TAG):
            return EPSILON
        if _TUPLE_TAG in value:
            return tuple(_decode_atom(item) for item in value[_TUPLE_TAG])
        if "§frozenset" in value:
            return frozenset(_decode_atom(item) for item in value["§frozenset"])
        raise InvalidAutomatonError(f"unknown tagged value {value!r}")
    if isinstance(value, list):
        return tuple(_decode_atom(item) for item in value)
    return value


def nfa_to_json(nfa: NFA, indent: int | None = None) -> str:
    """Serialize an NFA to a versioned JSON document."""
    document = {
        "format": "repro.nfa",
        "version": FORMAT_VERSION,
        "states": [_encode_atom(state) for state in sorted(nfa.states, key=repr)],
        "alphabet": [_encode_atom(symbol) for symbol in sorted(nfa.alphabet, key=repr)],
        "initial": _encode_atom(nfa.initial),
        "finals": [_encode_atom(state) for state in sorted(nfa.finals, key=repr)],
        "transitions": [
            [_encode_atom(source), _encode_atom(symbol), _encode_atom(target)]
            for source, symbol, target in sorted(nfa.transitions, key=repr)
        ],
    }
    return json.dumps(document, indent=indent)


def nfa_from_json(text: str) -> NFA:
    """Inverse of :func:`nfa_to_json` (validates format and version)."""
    document = json.loads(text)
    if document.get("format") != "repro.nfa":
        raise InvalidAutomatonError("not a repro.nfa document")
    if document.get("version") != FORMAT_VERSION:
        raise InvalidAutomatonError(
            f"unsupported format version {document.get('version')!r}"
        )
    return NFA(
        [_decode_atom(state) for state in document["states"]],
        [_decode_atom(symbol) for symbol in document["alphabet"]],
        [
            (_decode_atom(source), _decode_atom(symbol), _decode_atom(target))
            for source, symbol, target in document["transitions"]
        ],
        _decode_atom(document["initial"]),
        [_decode_atom(state) for state in document["finals"]],
    )


def _dot_id(value: Any) -> str:
    return json.dumps(str(value))


def nfa_to_dot(nfa: NFA, name: str = "nfa", rankdir: str = "LR") -> str:
    """Graphviz DOT rendering of an automaton.

    Parallel edges between the same state pair are merged into one arrow
    labelled with the comma-joined symbol list, which keeps dense automata
    readable.
    """
    lines = [f"digraph {json.dumps(name)} {{", f"  rankdir={rankdir};"]
    lines.append('  __start [shape=point, label=""];')
    for state in sorted(nfa.states, key=repr):
        shape = "doublecircle" if state in nfa.finals else "circle"
        lines.append(f"  {_dot_id(state)} [shape={shape}];")
    lines.append(f"  __start -> {_dot_id(nfa.initial)};")
    merged: dict[tuple, list] = {}
    for source, symbol, target in nfa.transitions:
        label = "ε" if symbol is EPSILON else str(symbol)
        merged.setdefault((source, target), []).append(label)
    for (source, target), labels in sorted(merged.items(), key=repr):
        text = ",".join(sorted(labels))
        lines.append(
            f"  {_dot_id(source)} -> {_dot_id(target)} "
            f"[label={json.dumps(text, ensure_ascii=False)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def unrolled_dag_to_dot(dag: UnrolledDAG, name: str = "unroll") -> str:
    """DOT rendering of the layered DAG — Figure 2, from code.

    Vertices are grouped into same-rank layers; only live vertices and
    edges appear, so a trimmed DAG renders exactly the paper's picture.
    """
    lines = [f"digraph {json.dumps(name)} {{", "  rankdir=LR;"]
    for t in range(dag.n + 1):
        layer = sorted(dag.layer(t), key=repr)
        if not layer:
            continue
        ids = " ".join(_dot_id(f"{state}@{t}") for state in layer)
        lines.append(f"  {{ rank=same; {ids} }}")
        for state in layer:
            final = t == dag.n and state in dag.nfa.finals
            shape = "doublecircle" if final else "circle"
            lines.append(
                f"  {_dot_id(f'{state}@{t}')} "
                f"[shape={shape}, label={json.dumps(f'{state},{t}')}];"
            )
    for t in range(dag.n):
        for state in sorted(dag.layer(t), key=repr):
            for symbol, target in dag.ordered_successors(t, state):
                lines.append(
                    f"  {_dot_id(f'{state}@{t}')} -> {_dot_id(f'{target}@{t + 1}')} "
                    f"[label={json.dumps(str(symbol))}];"
                )
    lines.append("}")
    return "\n".join(lines)
