"""Automata substrate: NFAs, DFAs, regexes, language algebra, generators.

Everything in :mod:`repro.core` operates on the :class:`~repro.automata.NFA`
defined here — see Proposition 12 of the paper (MEM-NFA / MEM-UFA are
complete for the two relation classes), which is why one automaton toolkit
serves the whole library.
"""

from repro.automata.nfa import EPSILON, NFA, word, word_str
from repro.automata.dfa import DFA, determinize, languages_equal, minimize
from repro.automata.operations import (
    canonical_minimal_dfa,
    concatenate,
    difference,
    intersection,
    optional,
    plus,
    repeat,
    reverse,
    star,
    union,
    words_of_length,
)
from repro.automata.unambiguous import (
    ambiguity_counts,
    disambiguate,
    is_unambiguous,
    require_unambiguous,
)
from repro.automata.regex import compile_regex, glushkov, parse, render, thompson
from repro.automata.random_gen import (
    ambiguity_blowup,
    chain_of_unions,
    contains_pattern_nfa,
    divisibility_dfa,
    random_nfa,
    random_ufa,
    unary_counter,
)
from repro.automata.encoding import BinaryEncodedNFA, decode_word, encode_word, symbol_codes
from repro.automata.serialization import (
    nfa_from_json,
    nfa_to_dot,
    nfa_to_json,
    unrolled_dag_to_dot,
)
from repro.automata.brzozowski import brzozowski_dfa, derivative, matches as regex_matches

__all__ = [
    "EPSILON",
    "NFA",
    "DFA",
    "word",
    "word_str",
    "determinize",
    "minimize",
    "languages_equal",
    "union",
    "intersection",
    "concatenate",
    "star",
    "plus",
    "optional",
    "repeat",
    "reverse",
    "difference",
    "canonical_minimal_dfa",
    "words_of_length",
    "is_unambiguous",
    "require_unambiguous",
    "disambiguate",
    "ambiguity_counts",
    "compile_regex",
    "parse",
    "render",
    "thompson",
    "glushkov",
    "random_nfa",
    "random_ufa",
    "ambiguity_blowup",
    "contains_pattern_nfa",
    "unary_counter",
    "divisibility_dfa",
    "chain_of_unions",
    "BinaryEncodedNFA",
    "symbol_codes",
    "encode_word",
    "decode_word",
    "nfa_to_json",
    "nfa_from_json",
    "nfa_to_dot",
    "unrolled_dag_to_dot",
    "brzozowski_dfa",
    "derivative",
    "regex_matches",
]
