"""Nondeterministic finite automata — the substrate of the whole library.

The paper's complete problems (Proposition 12) are

* ``MEM-NFA``: witnesses of ``(N, 0^k)`` are the length-``k`` words accepted
  by an NFA ``N``;
* ``MEM-UFA``: the same with ``N`` unambiguous.

Every algorithm in :mod:`repro.core` — enumeration, exact counting, exact
uniform generation, the FPRAS and the Las Vegas generator — operates on the
:class:`NFA` defined here.  The class is a *value type*: the transition
structure is frozen at construction, adjacency maps are precomputed, and all
"mutating" operations return new automata.

Conventions
-----------
* Symbols are arbitrary hashable objects; the usual case is 1-character
  strings (``"0"``/``"1"`` for the paper's binary alphabet).
* Words are tuples of symbols.  :func:`word` converts a string to a word
  over 1-character symbols, and :func:`word_str` renders one back.
* ε-transitions are written with the :data:`EPSILON` sentinel.  The paper's
  #NFA problem is for ε-free automata; :meth:`NFA.without_epsilon` removes
  them with the standard closure construction, preserving the language.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import InvalidAutomatonError

State = Hashable
Symbol = Hashable
Word = tuple


class _Epsilon:
    """Singleton sentinel for ε-transitions."""

    _instance: "_Epsilon | None" = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "ε"

    def __reduce__(self):  # keep singleton across pickling
        return (_Epsilon, ())


EPSILON = _Epsilon()

Transition = tuple  # (State, Symbol | _Epsilon, State)


def word(text: Iterable[Symbol]) -> Word:
    """Normalize a string or iterable of symbols into a word (tuple)."""
    return tuple(text)


def word_str(w: Word) -> str:
    """Render a word of 1-character string symbols back into a string."""
    return "".join(str(symbol) for symbol in w)


class NFA:
    """An immutable nondeterministic finite automaton.

    Parameters
    ----------
    states:
        Iterable of state labels (hashable, distinct).
    alphabet:
        Iterable of input symbols; must not contain :data:`EPSILON`.
    transitions:
        Iterable of ``(source, symbol, target)`` triples; ``symbol`` may be
        :data:`EPSILON`.
    initial:
        The initial state (the paper's machines have a single initial
        state; use an ε-fan-out from a fresh state to model several).
    finals:
        Iterable of accepting states.

    Raises
    ------
    InvalidAutomatonError
        If any transition or distinguished state refers outside the
        declared sets.
    """

    __slots__ = (
        "_states",
        "_alphabet",
        "_transitions",
        "_initial",
        "_finals",
        "_delta",
        "_rdelta",
        "_has_epsilon",
        "_hash",
    )

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Iterable[Transition],
        initial: State,
        finals: Iterable[State],
    ):
        self._states = frozenset(states)
        self._alphabet = frozenset(alphabet)
        self._initial = initial
        self._finals = frozenset(finals)
        transition_set = frozenset(
            (source, symbol, target) for source, symbol, target in transitions
        )
        self._transitions = transition_set
        self._validate()
        delta: dict[State, dict[Symbol, set[State]]] = {}
        rdelta: dict[State, dict[Symbol, set[State]]] = {}
        has_epsilon = False
        for source, symbol, target in transition_set:
            delta.setdefault(source, {}).setdefault(symbol, set()).add(target)
            rdelta.setdefault(target, {}).setdefault(symbol, set()).add(source)
            if symbol is EPSILON:
                has_epsilon = True
        self._delta = {
            source: {symbol: frozenset(targets) for symbol, targets in by_symbol.items()}
            for source, by_symbol in delta.items()
        }
        self._rdelta = {
            target: {symbol: frozenset(sources) for symbol, sources in by_symbol.items()}
            for target, by_symbol in rdelta.items()
        }
        self._has_epsilon = has_epsilon
        self._hash = None

    def _validate(self) -> None:
        if EPSILON in self._alphabet:
            raise InvalidAutomatonError("EPSILON cannot be an alphabet symbol")
        if self._initial not in self._states:
            raise InvalidAutomatonError(f"initial state {self._initial!r} not in states")
        missing_finals = self._finals - self._states
        if missing_finals:
            raise InvalidAutomatonError(f"final states not in states: {missing_finals!r}")
        for source, symbol, target in self._transitions:
            if source not in self._states:
                raise InvalidAutomatonError(f"transition source {source!r} not in states")
            if target not in self._states:
                raise InvalidAutomatonError(f"transition target {target!r} not in states")
            if symbol is not EPSILON and symbol not in self._alphabet:
                raise InvalidAutomatonError(
                    f"transition symbol {symbol!r} not in alphabet"
                )

    # ------------------------------------------------------------------
    # Basic structure accessors
    # ------------------------------------------------------------------

    @property
    def states(self) -> frozenset:
        return self._states

    @property
    def alphabet(self) -> frozenset:
        return self._alphabet

    @property
    def transitions(self) -> frozenset:
        return self._transitions

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def finals(self) -> frozenset:
        return self._finals

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    @property
    def has_epsilon(self) -> bool:
        return self._has_epsilon

    def successors(self, state: State, symbol: Symbol) -> frozenset:
        """States reachable from ``state`` by one ``symbol`` transition."""
        return self._delta.get(state, {}).get(symbol, frozenset())

    def predecessors(self, state: State, symbol: Symbol) -> frozenset:
        """States with a ``symbol`` transition into ``state``."""
        return self._rdelta.get(state, {}).get(symbol, frozenset())

    def out_symbols(self, state: State) -> frozenset:
        """Symbols (possibly including EPSILON) labelling edges out of ``state``."""
        return frozenset(self._delta.get(state, {}))

    def out_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        """Iterate ``(symbol, target)`` over edges leaving ``state``."""
        for symbol, targets in self._delta.get(state, {}).items():
            for target in targets:
                yield symbol, target

    def in_edges(self, state: State) -> Iterator[tuple[Symbol, State]]:
        """Iterate ``(symbol, source)`` over edges entering ``state``."""
        for symbol, sources in self._rdelta.get(state, {}).items():
            for source in sources:
                yield symbol, source

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NFA):
            return NotImplemented
        return (
            self._states == other._states
            and self._alphabet == other._alphabet
            and self._transitions == other._transitions
            and self._initial == other._initial
            and self._finals == other._finals
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._states, self._alphabet, self._transitions, self._initial, self._finals)
            )
        return self._hash

    def __repr__(self) -> str:
        return (
            f"NFA(states={self.num_states}, alphabet={sorted(map(repr, self._alphabet))}, "
            f"transitions={self.num_transitions}, finals={len(self._finals)})"
        )

    # ------------------------------------------------------------------
    # ε-closure and membership
    # ------------------------------------------------------------------

    def epsilon_closure(self, states: Iterable[State]) -> frozenset:
        """All states reachable from ``states`` via ε-transitions (incl. themselves)."""
        closure = set(states)
        frontier = deque(closure)
        while frontier:
            state = frontier.popleft()
            for target in self.successors(state, EPSILON):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: Symbol) -> frozenset:
        """One symbol step from a state set, with ε-closure on both sides."""
        current = self.epsilon_closure(states)
        after = set()
        for state in current:
            after.update(self.successors(state, symbol))
        return self.epsilon_closure(after)

    def accepts(self, input_word: Iterable[Symbol]) -> bool:
        """Decide whether the automaton accepts ``input_word``.

        Runs the standard on-the-fly subset simulation: O(|w|·m²) time,
        O(m) space.
        """
        current = self.epsilon_closure({self._initial})
        for symbol in input_word:
            if symbol is EPSILON:
                raise InvalidAutomatonError("input word contains EPSILON")
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._finals)

    def reachable_sets_by_layer(self, input_word: Sequence[Symbol]) -> list[frozenset]:
        """The subset-simulation trajectory: sets of states after each prefix.

        ``result[i]`` is the ε-closed set of states reachable by reading
        ``input_word[:i]``.  Used by the FPRAS's membership tests (checking
        whether a sampled prefix is a member of a layer vertex) and by the
        spanner/RPQ decoders.
        """
        current = self.epsilon_closure({self._initial})
        trajectory = [current]
        for symbol in input_word:
            current = self.step(current, symbol)
            trajectory.append(current)
        return trajectory

    def accepting_runs(self, input_word: Sequence[Symbol], limit: int | None = None):
        """Enumerate accepting runs (state sequences) on ``input_word``.

        A run is a tuple ``(q_0, ..., q_k)`` with ``q_0`` the initial state,
        ``q_k`` final and each step a transition on the matching symbol.
        Only defined for ε-free automata (runs and words are in sync then).
        Exponentially many runs may exist; ``limit`` caps the enumeration.
        Used by the ambiguity diagnostics and the naive Monte Carlo baseline.
        """
        if self._has_epsilon:
            raise InvalidAutomatonError("accepting_runs requires an ε-free automaton")
        w = tuple(input_word)
        found = 0
        stack: list[tuple[tuple, int]] = [((self._initial,), 0)]
        while stack:
            run, position = stack.pop()
            if position == len(w):
                if run[-1] in self._finals:
                    yield run
                    found += 1
                    if limit is not None and found >= limit:
                        return
                continue
            for target in self.successors(run[-1], w[position]):
                stack.append((run + (target,), position + 1))

    def count_accepting_runs(self, input_word: Sequence[Symbol]) -> int:
        """Count accepting runs on ``input_word`` by dynamic programming.

        Linear in ``|w|·|δ|``; this is the quantity whose equality with 1
        for every accepted word characterizes unambiguity.
        """
        if self._has_epsilon:
            raise InvalidAutomatonError("count_accepting_runs requires an ε-free automaton")
        counts: dict[State, int] = {self._initial: 1}
        for symbol in input_word:
            nxt: dict[State, int] = {}
            for state, ways in counts.items():
                for target in self.successors(state, symbol):
                    nxt[target] = nxt.get(target, 0) + ways
            counts = nxt
        return sum(ways for state, ways in counts.items() if state in self._finals)

    # ------------------------------------------------------------------
    # Structural transformations (all return new NFAs)
    # ------------------------------------------------------------------

    def without_epsilon(self) -> "NFA":
        """Equivalent ε-free NFA via the closure construction.

        For each state ``q`` and symbol ``a``, the new transitions are
        ``q --a--> r`` whenever ``q --ε*--> p --a--> r`` in the original;
        ``q`` becomes final if its ε-closure meets the final set.  The
        language is preserved exactly.
        """
        if not self._has_epsilon:
            return self
        new_transitions: set[Transition] = set()
        new_finals: set[State] = set()
        for state in self._states:
            closure = self.epsilon_closure({state})
            if closure & self._finals:
                new_finals.add(state)
            for intermediate in closure:
                for symbol, targets in self._delta.get(intermediate, {}).items():
                    if symbol is EPSILON:
                        continue
                    for target in targets:
                        new_transitions.add((state, symbol, target))
        return NFA(self._states, self._alphabet, new_transitions, self._initial, new_finals)

    def reachable_states(self) -> frozenset:
        """States reachable from the initial state (any symbols, incl. ε)."""
        seen = {self._initial}
        frontier = deque(seen)
        while frontier:
            state = frontier.popleft()
            for by_symbol in (self._delta.get(state, {}),):
                for targets in by_symbol.values():
                    for target in targets:
                        if target not in seen:
                            seen.add(target)
                            frontier.append(target)
        return frozenset(seen)

    def coreachable_states(self) -> frozenset:
        """States from which some final state is reachable."""
        seen = set(self._finals)
        frontier = deque(seen)
        while frontier:
            state = frontier.popleft()
            for by_symbol in (self._rdelta.get(state, {}),):
                for sources in by_symbol.values():
                    for source in sources:
                        if source not in seen:
                            seen.add(source)
                            frontier.append(source)
        return frozenset(seen)

    def trim(self) -> "NFA":
        """Restrict to useful states (reachable and co-reachable).

        If the initial state itself is useless the result is a canonical
        single-state automaton with the empty language (the initial state
        must exist by definition).
        """
        useful = self.reachable_states() & self.coreachable_states()
        if self._initial not in useful:
            return NFA([self._initial], self._alphabet, [], self._initial, [])
        transitions = [
            (source, symbol, target)
            for source, symbol, target in self._transitions
            if source in useful and target in useful
        ]
        return NFA(useful, self._alphabet, transitions, self._initial, self._finals & useful)

    def with_unique_final(self, final_label: State = ("__final__",)) -> "NFA":
        """Equivalent NFA with exactly one final state and no ε-transitions.

        This is the normalization step of Section 5.3.1: add a fresh final
        state, ε-transitions from the old finals, then remove ε.  The label
        of the fresh state can be customized to avoid collisions.
        """
        if len(self._finals) == 1 and not self._has_epsilon:
            return self
        if final_label in self._states:
            raise InvalidAutomatonError(f"final label {final_label!r} collides with a state")
        states = set(self._states) | {final_label}
        transitions = set(self._transitions)
        for old_final in self._finals:
            transitions.add((old_final, EPSILON, final_label))
        widened = NFA(states, self._alphabet, transitions, self._initial, [final_label])
        collapsed = widened.without_epsilon()
        # ε-removal makes states whose closure meets {final_label} final, so
        # the result can again have several final states; but it accepts the
        # same language and is ε-free, which is what the downstream layered
        # algorithms need.  For a genuinely unique final state, the unrolled
        # DAG of repro.core.unroll introduces s_final — that construction is
        # what Sections 5.3.1 and 6.2 actually consume.
        return collapsed

    def renumbered(self) -> "NFA":
        """Isomorphic copy with states relabelled 0..m-1 (BFS order from initial).

        Canonicalizes instances for hashing/serialization and makes error
        messages stable.  Unreachable states keep deterministic labels after
        the reachable block (sorted by repr).
        """
        order: dict[State, int] = {}
        frontier = deque([self._initial])
        order[self._initial] = 0
        while frontier:
            state = frontier.popleft()
            by_symbol = self._delta.get(state, {})
            for symbol in sorted(by_symbol, key=repr):
                for target in sorted(by_symbol[symbol], key=repr):
                    if target not in order:
                        order[target] = len(order)
                        frontier.append(target)
        for state in sorted(self._states - set(order), key=repr):
            order[state] = len(order)
        transitions = [
            (order[source], symbol, order[target])
            for source, symbol, target in self._transitions
        ]
        return NFA(
            range(len(order)),
            self._alphabet,
            transitions,
            order[self._initial],
            [order[state] for state in self._finals],
        )

    def map_symbols(self, mapping: Mapping[Symbol, Symbol]) -> "NFA":
        """Relabel alphabet symbols through ``mapping`` (a bijection)."""
        if len(set(mapping.values())) != len(mapping):
            raise InvalidAutomatonError("symbol mapping must be injective")
        new_alphabet = {mapping[symbol] for symbol in self._alphabet}
        transitions = [
            (source, symbol if symbol is EPSILON else mapping[symbol], target)
            for source, symbol, target in self._transitions
        ]
        return NFA(self._states, new_alphabet, transitions, self._initial, self._finals)

    def is_deterministic(self) -> bool:
        """True if ε-free and every (state, symbol) has at most one successor."""
        if self._has_epsilon:
            return False
        for by_symbol in self._delta.values():
            for targets in by_symbol.values():
                if len(targets) > 1:
                    return False
        return True

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty_language(cls, alphabet: Iterable[Symbol]) -> "NFA":
        """The automaton accepting no word at all."""
        return cls(["q0"], alphabet, [], "q0", [])

    @classmethod
    def only_empty_word(cls, alphabet: Iterable[Symbol]) -> "NFA":
        """The automaton accepting exactly the empty word ε."""
        return cls(["q0"], alphabet, [], "q0", ["q0"])

    @classmethod
    def single_word(cls, input_word: Iterable[Symbol], alphabet: Iterable[Symbol] | None = None) -> "NFA":
        """The automaton accepting exactly one word."""
        w = tuple(input_word)
        alpha = frozenset(alphabet) if alphabet is not None else frozenset(w)
        states = list(range(len(w) + 1))
        transitions = [(i, symbol, i + 1) for i, symbol in enumerate(w)]
        return cls(states, alpha, transitions, 0, [len(w)])

    @classmethod
    def full_language(cls, alphabet: Iterable[Symbol]) -> "NFA":
        """The automaton accepting every word over ``alphabet`` (Σ*)."""
        alpha = frozenset(alphabet)
        return cls(["q0"], alpha, [("q0", symbol, "q0") for symbol in alpha], "q0", ["q0"])
