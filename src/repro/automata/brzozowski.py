"""Brzozowski derivatives: a third, independent regex semantics.

The derivative of a language L by a symbol a is a⁻¹L = {w : aw ∈ L} —
exactly the residual the ψ self-reduction of §5.2 computes on automata.
On regex ASTs the derivative is a syntactic rewrite (Brzozowski 1964),
which gives us:

* :func:`derivative` — the rewrite itself (with light smart-constructor
  simplification so derivative chains stay small);
* :func:`matches` — derivative-based matching, a regex semantics that is
  completely independent of the Thompson/Glushkov compilers and of the
  brute-force matcher — three-way cross-validation in the test suite;
* :func:`brzozowski_dfa` — the derivative automaton: states are
  simplified derivatives, which yields a (often small) DFA directly and
  hence yet another route into the RelationUL algorithms.

The derivative construction terminates because derivatives are taken
modulo the similarity rules (associativity/commutativity/idempotence of
union), approximated here by the smart constructors plus a hard cap that
turns pathological blow-ups into a clear error instead of a hang.
"""

from __future__ import annotations

from repro.automata.nfa import NFA
from repro.automata.regex import (
    AnyChar,
    CharClass,
    Concat,
    Empty,
    EpsilonNode,
    Literal,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Union,
    _expand_repeats,
)
from repro.errors import InvalidRegexError


def _union(*options: Regex) -> Regex:
    """Smart union: drop ∅, flatten, deduplicate."""
    flat: list[Regex] = []
    seen: set = set()
    stack = list(options)
    while stack:
        node = stack.pop(0)
        if isinstance(node, Empty):
            continue
        if isinstance(node, Union):
            stack = list(node.options) + stack
            continue
        if node not in seen:
            seen.add(node)
            flat.append(node)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def _concat(*parts: Regex) -> Regex:
    """Smart concatenation: ∅ annihilates, ε is the unit."""
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Empty):
            return Empty()
        if isinstance(part, EpsilonNode):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EpsilonNode()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def nullable(node: Regex) -> bool:
    """Does the language contain ε?"""
    if isinstance(node, (EpsilonNode, Star, Optional)):
        return True
    if isinstance(node, (Empty, Literal, AnyChar, CharClass)):
        return False
    if isinstance(node, Concat):
        return all(nullable(part) for part in node.parts)
    if isinstance(node, Union):
        return any(nullable(option) for option in node.options)
    if isinstance(node, Plus):
        return nullable(node.inner)
    if isinstance(node, Repeat):
        return node.low == 0 or nullable(node.inner)
    raise TypeError(f"unknown node {node!r}")


def derivative(node: Regex, symbol: str, alphabet: frozenset) -> Regex:
    """The Brzozowski derivative ∂_symbol(node)."""
    if isinstance(node, (Empty, EpsilonNode)):
        return Empty()
    if isinstance(node, Literal):
        return EpsilonNode() if node.symbol == symbol else Empty()
    if isinstance(node, AnyChar):
        return EpsilonNode() if symbol in alphabet else Empty()
    if isinstance(node, CharClass):
        return EpsilonNode() if symbol in node.resolve(alphabet) else Empty()
    if isinstance(node, Union):
        return _union(*(derivative(option, symbol, alphabet) for option in node.options))
    if isinstance(node, Concat):
        head, tail = node.parts[0], node.parts[1:]
        rest = _concat(*tail) if tail else EpsilonNode()
        first = _concat(derivative(head, symbol, alphabet), rest)
        if nullable(head):
            return _union(first, derivative(rest, symbol, alphabet))
        return first
    if isinstance(node, Star):
        return _concat(derivative(node.inner, symbol, alphabet), node)
    if isinstance(node, Plus):
        return _concat(derivative(node.inner, symbol, alphabet), Star(node.inner))
    if isinstance(node, Optional):
        return derivative(node.inner, symbol, alphabet)
    if isinstance(node, Repeat):
        return derivative(_expand_repeats(node), symbol, alphabet)
    raise TypeError(f"unknown node {node!r}")


def matches(node: Regex, w, alphabet) -> bool:
    """Derivative-based matching: nullable(∂_{w_k}…∂_{w_1} node)."""
    alphabet = frozenset(alphabet)
    current = node
    for symbol in w:
        current = derivative(current, symbol, alphabet)
        if isinstance(current, Empty):
            return False
    return nullable(current)


def brzozowski_dfa(node: Regex, alphabet, max_states: int = 10_000) -> NFA:
    """The derivative DFA of a regex (as an :class:`NFA` value).

    States are derivative ASTs (canonicalized by the smart constructors);
    a state is final iff nullable.  Deterministic by construction, hence
    unambiguous — the RelationUL suite applies to any pattern compiled
    this way.
    """
    alphabet = frozenset(alphabet)
    ordered_symbols = sorted(alphabet, key=repr)
    start = node
    index_of: dict[Regex, int] = {start: 0}
    order: list[Regex] = [start]
    transitions: list[tuple] = []
    position = 0
    while position < len(order):
        current = order[position]
        position += 1
        for symbol in ordered_symbols:
            next_node = derivative(current, symbol, alphabet)
            if isinstance(next_node, Empty):
                continue  # dead state omitted (partial DFA)
            if next_node not in index_of:
                if len(index_of) >= max_states:
                    raise InvalidRegexError(
                        repr(node), 0,
                        f"derivative construction exceeded {max_states} states; "
                        "the pattern needs the Glushkov route",
                    )
                index_of[next_node] = len(index_of)
                order.append(next_node)
            transitions.append((index_of[current], symbol, index_of[next_node]))
    finals = [index_of[state] for state in order if nullable(state)]
    return NFA(range(len(order)), alphabet, transitions, 0, finals).trim()
