"""Binary-alphabet encoding of automata (Algorithm 5's Σ = {0,1} setting).

The paper states its FPRAS for NFAs over the binary alphabet.  Our
implementation handles arbitrary alphabets directly (the partition step of
``Sample`` ranges over Σ rather than {0,1}), but for cross-validation — and
for users who want the letter-for-letter paper algorithm — this module
provides the standard block encoding:

* each symbol of Σ is assigned a distinct fixed-width binary codeword
  (width ``b = ⌈log₂|Σ|⌉``);
* an NFA ``N`` over Σ maps to an NFA ``N'`` over {0,1} whose words are the
  symbol-wise encodings, so ``|L_n(N)| = |L_{b·n}(N')|`` and the encoding
  is a bijection on words — counts and the uniform distribution transfer
  exactly (this is what makes the substitution *faithful* rather than
  approximate).

Unused codewords lead to dead branches which the construction never
creates: each symbol's codeword is a fresh path of ``b-1`` intermediate
states per (source, symbol) group, sharing a prefix tree per source state
to keep the size at ``O(|δ|·b)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.automata.nfa import NFA, Symbol, Word
from repro.errors import InvalidAutomatonError


def code_width(alphabet_size: int) -> int:
    """Bits needed per symbol: ⌈log₂|Σ|⌉, minimum 1."""
    if alphabet_size < 1:
        raise ValueError("alphabet must be nonempty")
    return max(1, math.ceil(math.log2(alphabet_size)))


def symbol_codes(alphabet: Iterable[Symbol]) -> dict[Symbol, tuple[str, ...]]:
    """A deterministic symbol → binary-codeword map (sorted by repr)."""
    symbols = sorted(set(alphabet), key=repr)
    width = code_width(len(symbols))
    codes: dict[Symbol, tuple[str, ...]] = {}
    for index, symbol in enumerate(symbols):
        bits = format(index, f"0{width}b")
        codes[symbol] = tuple(bits)
    return codes


def encode_word(w: Word, codes: Mapping[Symbol, tuple[str, ...]]) -> Word:
    """Symbol-wise encode a word into its binary form."""
    out: list[str] = []
    for symbol in w:
        if symbol not in codes:
            raise InvalidAutomatonError(f"symbol {symbol!r} has no codeword")
        out.extend(codes[symbol])
    return tuple(out)


def decode_word(bits: Word, codes: Mapping[Symbol, tuple[str, ...]]) -> Word:
    """Invert :func:`encode_word`.  Raises if ``bits`` is not a valid code."""
    if not codes:
        raise InvalidAutomatonError("empty code table")
    width = len(next(iter(codes.values())))
    if len(bits) % width != 0:
        raise InvalidAutomatonError(
            f"bit string length {len(bits)} is not a multiple of the code width {width}"
        )
    reverse = {code: symbol for symbol, code in codes.items()}
    out = []
    for start in range(0, len(bits), width):
        block = tuple(bits[start : start + width])
        if block not in reverse:
            raise InvalidAutomatonError(f"unknown codeword {block!r}")
        out.append(reverse[block])
    return tuple(out)


class BinaryEncodedNFA:
    """An NFA over {0,1} encoding an NFA over an arbitrary alphabet.

    Attributes
    ----------
    nfa:
        The binary automaton.  ``L_{width·n}(nfa)`` is in bijection with
        ``L_n(original)``.
    codes:
        The symbol → codeword table used.
    width:
        Bits per original symbol.
    """

    def __init__(self, original: NFA):
        stripped = original.without_epsilon()
        self.codes = symbol_codes(stripped.alphabet)
        self.width = code_width(len(stripped.alphabet))
        states: set = set(stripped.states)
        transitions: list[tuple] = []
        for source, symbol, target in stripped.transitions:
            bits = self.codes[symbol]
            previous = source
            # Intermediate states are keyed by (source, bit-prefix) so that
            # transitions sharing a source and a code prefix share states —
            # a per-source prefix tree, keeping the blow-up at O(|δ|·width).
            for depth in range(len(bits) - 1):
                node = ("enc", source, bits[: depth + 1])
                states.add(node)
                transitions.append((previous, bits[depth], node))
                previous = node
            transitions.append((previous, bits[-1], target))
        self.original = stripped
        self.nfa = NFA(
            states, ("0", "1"), transitions, stripped.initial, stripped.finals
        )

    def encoded_length(self, n: int) -> int:
        """Binary word length corresponding to original length ``n``."""
        return n * self.width

    def encode(self, w: Word) -> Word:
        return encode_word(w, self.codes)

    def decode(self, bits: Word) -> Word:
        return decode_word(bits, self.codes)
