"""Regular expressions: AST, parser, and compilation to NFAs.

The calibration notes for this reproduction flag "uniform regex/NFA
sampling" as the novel capability with no canonical OSS tool.  This module
is the user-facing front end for it: parse a pattern, compile to an NFA,
then hand the NFA to the Section 5/6 machinery::

    >>> from repro import WitnessSet
    >>> ws = WitnessSet.from_regex("(ab|ba)*a?", 5)
    >>> ws.count()                   # exact (this pattern is ambiguous → NFA route)
    ...

Supported syntax (a deliberate, clean subset of POSIX/Python syntax):

* literals, ``.`` wildcard (over the declared alphabet)
* character classes ``[abc]``, ranges ``[a-z]``, negation ``[^abc]``
* grouping ``( )``, alternation ``|``, concatenation
* quantifiers ``*``, ``+``, ``?``, ``{m}``, ``{m,}``, ``{m,n}``
* escapes ``\\(``, ``\\*``, ... for metacharacters

Two compilation strategies are provided:

* :func:`thompson` — the classical Thompson construction: O(|pattern|)
  states, ε-transitions (removed afterwards for the counting pipeline).
* :func:`glushkov` — the position automaton: ε-free by construction,
  |pattern|+1 states; often *unambiguous* for deterministic-ish patterns,
  in which case the fast RelationUL algorithms apply.

Both yield language-equivalent NFAs (property-tested against a
brute-force matcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.automata.nfa import NFA
from repro.automata import operations as ops
from repro.errors import InvalidRegexError

METACHARACTERS = set("()[]{}|*+?.\\")


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Regex:
    """Base class for regex AST nodes."""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return render(self)


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language ∅ (no strings)."""


@dataclass(frozen=True)
class EpsilonNode(Regex):
    """The language {ε}."""


@dataclass(frozen=True)
class Literal(Regex):
    """A single symbol."""

    symbol: str


@dataclass(frozen=True)
class CharClass(Regex):
    """A set of symbols (one character of the class)."""

    symbols: frozenset
    negated: bool = False

    def resolve(self, alphabet: frozenset) -> frozenset:
        """Concrete symbol set relative to ``alphabet``."""
        if self.negated:
            return alphabet - self.symbols
        return self.symbols & alphabet if self.symbols <= alphabet else self.symbols


@dataclass(frozen=True)
class AnyChar(Regex):
    """The ``.`` wildcard: any single symbol of the alphabet."""


@dataclass(frozen=True)
class Concat(Regex):
    parts: tuple

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("Concat needs at least two parts")


@dataclass(frozen=True)
class Union(Regex):
    options: tuple

    def __post_init__(self):
        if len(self.options) < 2:
            raise ValueError("Union needs at least two options")


@dataclass(frozen=True)
class Star(Regex):
    inner: Regex


@dataclass(frozen=True)
class Plus(Regex):
    inner: Regex


@dataclass(frozen=True)
class Optional(Regex):
    inner: Regex


@dataclass(frozen=True)
class Repeat(Regex):
    inner: Regex
    low: int
    high: int | None  # None = unbounded


def render(node: Regex) -> str:
    """Pretty-print an AST back to (parenthesized) pattern syntax."""
    if isinstance(node, Empty):
        return "[]"  # an empty class matches nothing
    if isinstance(node, EpsilonNode):
        return "()"
    if isinstance(node, Literal):
        return "\\" + node.symbol if node.symbol in METACHARACTERS else node.symbol
    if isinstance(node, AnyChar):
        return "."
    if isinstance(node, CharClass):
        body = "".join(sorted(node.symbols))
        return f"[^{body}]" if node.negated else f"[{body}]"
    if isinstance(node, Concat):
        return "".join(
            f"({render(part)})" if isinstance(part, Union) else render(part)
            for part in node.parts
        )
    if isinstance(node, Union):
        return "|".join(render(option) for option in node.options)
    if isinstance(node, (Star, Plus, Optional)):
        suffix = {"Star": "*", "Plus": "+", "Optional": "?"}[type(node).__name__]
        return f"({render(node.inner)}){suffix}"
    if isinstance(node, Repeat):
        high = "" if node.high is None else str(node.high)
        bounds = f"{{{node.low},{high}}}" if node.high != node.low else f"{{{node.low}}}"
        return f"({render(node.inner)}){bounds}"
    raise TypeError(f"unknown node {node!r}")


# ----------------------------------------------------------------------
# Parser (recursive descent)
# ----------------------------------------------------------------------


class _Parser:
    """Recursive-descent parser for the supported regex subset."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.position = 0

    def error(self, message: str) -> InvalidRegexError:
        return InvalidRegexError(self.pattern, self.position, message)

    def peek(self) -> str | None:
        if self.position < len(self.pattern):
            return self.pattern[self.position]
        return None

    def take(self) -> str:
        char = self.peek()
        if char is None:
            raise self.error("unexpected end of pattern")
        self.position += 1
        return char

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.position += 1

    def parse(self) -> Regex:
        node = self.parse_union()
        if self.position != len(self.pattern):
            raise self.error(f"unexpected {self.peek()!r}")
        return node

    def parse_union(self) -> Regex:
        options = [self.parse_concat()]
        while self.peek() == "|":
            self.take()
            options.append(self.parse_concat())
        if len(options) == 1:
            return options[0]
        return Union(tuple(options))

    def parse_concat(self) -> Regex:
        parts: list[Regex] = []
        while self.peek() is not None and self.peek() not in "|)":
            parts.append(self.parse_quantified())
        if not parts:
            return EpsilonNode()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_quantified(self) -> Regex:
        atom = self.parse_atom()
        while True:
            char = self.peek()
            if char == "*":
                self.take()
                atom = Star(atom)
            elif char == "+":
                self.take()
                atom = Plus(atom)
            elif char == "?":
                self.take()
                atom = Optional(atom)
            elif char == "{":
                atom = self.parse_bounds(atom)
            else:
                return atom

    def parse_bounds(self, atom: Regex) -> Regex:
        self.expect("{")
        low = self.parse_number()
        high: int | None
        if self.peek() == ",":
            self.take()
            if self.peek() == "}":
                high = None
            else:
                high = self.parse_number()
        else:
            high = low
        self.expect("}")
        if high is not None and high < low:
            raise self.error(f"repetition bounds out of order: {{{low},{high}}}")
        return Repeat(atom, low, high)

    def parse_number(self) -> int:
        digits = []
        while self.peek() is not None and self.peek().isdigit():
            digits.append(self.take())
        if not digits:
            raise self.error("expected a number")
        return int("".join(digits))

    def parse_atom(self) -> Regex:
        char = self.peek()
        if char is None:
            raise self.error("expected an atom")
        if char == "(":
            self.take()
            inner = self.parse_union()
            self.expect(")")
            return inner
        if char == "[":
            return self.parse_class()
        if char == ".":
            self.take()
            return AnyChar()
        if char == "\\":
            self.take()
            return Literal(self.take())
        if char in "*+?{":
            raise self.error(f"quantifier {char!r} with nothing to repeat")
        if char in ")|":
            raise self.error(f"unexpected {char!r}")
        self.take()
        return Literal(char)

    def parse_class(self) -> Regex:
        self.expect("[")
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        symbols: set[str] = set()
        while self.peek() != "]":
            if self.peek() is None:
                raise self.error("unterminated character class")
            first = self.take()
            if first == "\\":
                first = self.take()
            if self.peek() == "-" and self.position + 1 < len(self.pattern) and self.pattern[
                self.position + 1
            ] != "]":
                self.take()  # the dash
                last = self.take()
                if last == "\\":
                    last = self.take()
                if ord(last) < ord(first):
                    raise self.error(f"character range {first}-{last} out of order")
                symbols.update(chr(code) for code in range(ord(first), ord(last) + 1))
            else:
                symbols.add(first)
        self.expect("]")
        if not symbols and not negated:
            return Empty()
        return CharClass(frozenset(symbols), negated=negated)


def parse(pattern: str) -> Regex:
    """Parse ``pattern`` into a :class:`Regex` AST."""
    return _Parser(pattern).parse()


# ----------------------------------------------------------------------
# Alphabet inference
# ----------------------------------------------------------------------


def pattern_symbols(node: Regex) -> frozenset:
    """All concrete symbols mentioned in the AST (ignoring negation/wildcards)."""
    if isinstance(node, Literal):
        return frozenset({node.symbol})
    if isinstance(node, CharClass):
        return node.symbols
    if isinstance(node, Concat):
        out: frozenset = frozenset()
        for part in node.parts:
            out |= pattern_symbols(part)
        return out
    if isinstance(node, Union):
        out = frozenset()
        for option in node.options:
            out |= pattern_symbols(option)
        return out
    if isinstance(node, (Star, Plus, Optional, Repeat)):
        return pattern_symbols(node.inner)
    return frozenset()


def _resolve_alphabet(node: Regex, alphabet: Iterable[str] | None) -> frozenset:
    symbols = pattern_symbols(node)
    if alphabet is None:
        if any_wildcards(node):
            raise InvalidRegexError(
                render(node), 0, "patterns with '.' or negated classes need an explicit alphabet"
            )
        if not symbols:
            raise InvalidRegexError(render(node), 0, "cannot infer an alphabet (no symbols)")
        return symbols
    resolved = frozenset(alphabet)
    if not symbols <= resolved:
        missing = symbols - resolved
        raise InvalidRegexError(
            render(node), 0, f"pattern symbols outside the alphabet: {sorted(missing)}"
        )
    return resolved


def any_wildcards(node: Regex) -> bool:
    """True if the AST contains ``.`` or a negated class (alphabet-relative)."""
    if isinstance(node, AnyChar):
        return True
    if isinstance(node, CharClass):
        return node.negated
    if isinstance(node, Concat):
        return any(any_wildcards(part) for part in node.parts)
    if isinstance(node, Union):
        return any(any_wildcards(option) for option in node.options)
    if isinstance(node, (Star, Plus, Optional, Repeat)):
        return any_wildcards(node.inner)
    return False


# ----------------------------------------------------------------------
# Thompson construction
# ----------------------------------------------------------------------


def thompson(node: Regex, alphabet: Iterable[str] | None = None) -> NFA:
    """Compile an AST to an NFA by the Thompson construction.

    Builds via the :mod:`repro.automata.operations` algebra, then trims.
    The result may contain ε-transitions; callers heading into the
    counting pipeline should call :meth:`NFA.without_epsilon`.
    """
    resolved = _resolve_alphabet(node, alphabet)

    def build(n: Regex) -> NFA:
        if isinstance(n, Empty):
            return NFA.empty_language(resolved)
        if isinstance(n, EpsilonNode):
            return NFA.only_empty_word(resolved)
        if isinstance(n, Literal):
            return NFA.single_word((n.symbol,), resolved)
        if isinstance(n, AnyChar):
            return _class_nfa(resolved, resolved)
        if isinstance(n, CharClass):
            return _class_nfa(n.resolve(resolved), resolved)
        if isinstance(n, Concat):
            result = build(n.parts[0])
            for part in n.parts[1:]:
                result = ops.concatenate(result, part if isinstance(part, NFA) else build(part))
            return result
        if isinstance(n, Union):
            result = build(n.options[0])
            for option in n.options[1:]:
                result = ops.union(result, build(option))
            return result
        if isinstance(n, Star):
            return ops.star(build(n.inner))
        if isinstance(n, Plus):
            return ops.plus(build(n.inner))
        if isinstance(n, Optional):
            return ops.optional(build(n.inner))
        if isinstance(n, Repeat):
            return ops.repeat(build(n.inner), n.low, n.high)
        raise TypeError(f"unknown node {n!r}")

    return build(node).trim().renumbered()


def _class_nfa(symbols: frozenset, alphabet: frozenset) -> NFA:
    transitions = [(0, symbol, 1) for symbol in symbols]
    return NFA([0, 1], alphabet, transitions, 0, [1])


# ----------------------------------------------------------------------
# Glushkov (position) construction
# ----------------------------------------------------------------------


def glushkov(node: Regex, alphabet: Iterable[str] | None = None) -> NFA:
    """Compile an AST to the ε-free Glushkov position automaton.

    States are 0 (initial) plus one state per symbol *position* of the
    linearized pattern.  The construction computes nullable/first/last/
    follow sets over positions; bounded repetitions are expanded first
    (so `a{3}` contributes three positions).
    """
    resolved = _resolve_alphabet(node, alphabet)
    expanded = _expand_repeats(node)

    positions: list[frozenset] = []  # index -> set of symbols at that position

    def linearize(n: Regex) -> Regex:
        """Replace each leaf with a Literal carrying its position index."""
        if isinstance(n, (Empty, EpsilonNode)):
            return n
        if isinstance(n, Literal):
            positions.append(frozenset({n.symbol}))
            return Literal(f"@{len(positions) - 1}")
        if isinstance(n, AnyChar):
            positions.append(resolved)
            return Literal(f"@{len(positions) - 1}")
        if isinstance(n, CharClass):
            concrete = n.resolve(resolved)
            if not concrete:
                return Empty()
            positions.append(concrete)
            return Literal(f"@{len(positions) - 1}")
        if isinstance(n, Concat):
            return Concat(tuple(linearize(part) for part in n.parts))
        if isinstance(n, Union):
            return Union(tuple(linearize(option) for option in n.options))
        if isinstance(n, Star):
            return Star(linearize(n.inner))
        if isinstance(n, Plus):
            return Plus(linearize(n.inner))
        if isinstance(n, Optional):
            return Optional(linearize(n.inner))
        raise TypeError(f"unexpected node after expansion: {n!r}")

    linear = linearize(expanded)

    def position_of(n: Literal) -> int:
        return int(n.symbol[1:])

    def analyze(n: Regex) -> tuple[bool, frozenset, frozenset]:
        """Return (nullable, first-positions, last-positions) and fill follow."""
        if isinstance(n, Empty):
            return False, frozenset(), frozenset()
        if isinstance(n, EpsilonNode):
            return True, frozenset(), frozenset()
        if isinstance(n, Literal):
            index = position_of(n)
            return False, frozenset({index}), frozenset({index})
        if isinstance(n, Concat):
            nullable, first, last = True, frozenset(), frozenset()
            for part in n.parts:
                p_nullable, p_first, p_last = analyze(part)
                for source in last:
                    follow.setdefault(source, set()).update(p_first)
                first = first | p_first if nullable else first
                if not first:
                    first = p_first
                last = last | p_last if p_nullable else p_last
                nullable = nullable and p_nullable
            return nullable, first, last
        if isinstance(n, Union):
            nullable, first, last = False, frozenset(), frozenset()
            for option in n.options:
                o_nullable, o_first, o_last = analyze(option)
                nullable = nullable or o_nullable
                first |= o_first
                last |= o_last
            return nullable, first, last
        if isinstance(n, (Star, Plus)):
            i_nullable, i_first, i_last = analyze(n.inner)
            for source in i_last:
                follow.setdefault(source, set()).update(i_first)
            nullable = True if isinstance(n, Star) else i_nullable
            return nullable, i_first, i_last
        if isinstance(n, Optional):
            i_nullable, i_first, i_last = analyze(n.inner)
            return True, i_first, i_last
        raise TypeError(f"unexpected node: {n!r}")

    follow: dict[int, set] = {}
    nullable, first, last = analyze(linear)

    states = [-1] + list(range(len(positions)))  # -1 is the initial state
    transitions: list[tuple] = []
    for target in first:
        for symbol in positions[target]:
            transitions.append((-1, symbol, target))
    for source, targets in follow.items():
        for target in targets:
            for symbol in positions[target]:
                transitions.append((source, symbol, target))
    finals = set(last)
    if nullable:
        finals.add(-1)
    return NFA(states, resolved, transitions, -1, finals).trim().renumbered()


def _expand_repeats(node: Regex) -> Regex:
    """Rewrite Repeat nodes into concat/optional/star form (for Glushkov)."""
    if isinstance(node, Repeat):
        inner = _expand_repeats(node.inner)
        parts: list[Regex] = [inner] * node.low
        if node.high is None:
            parts.append(Star(inner))
        else:
            parts.extend([Optional(inner)] * (node.high - node.low))
        if not parts:
            return EpsilonNode()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))
    if isinstance(node, Concat):
        return Concat(tuple(_expand_repeats(part) for part in node.parts))
    if isinstance(node, Union):
        return Union(tuple(_expand_repeats(option) for option in node.options))
    if isinstance(node, Star):
        return Star(_expand_repeats(node.inner))
    if isinstance(node, Plus):
        return Plus(_expand_repeats(node.inner))
    if isinstance(node, Optional):
        return Optional(_expand_repeats(node.inner))
    return node


def compile_regex(
    pattern: str,
    alphabet: Iterable[str] | None = None,
    method: str = "glushkov",
) -> NFA:
    """Parse and compile a regex pattern into an ε-free trimmed NFA.

    ``method`` is ``"glushkov"`` (default; ε-free by construction, often
    unambiguous) or ``"thompson"`` (classical; ε-removed afterwards).
    """
    ast = parse(pattern)
    if method == "glushkov":
        return glushkov(ast, alphabet)
    if method == "thompson":
        return thompson(ast, alphabet).without_epsilon().trim().renumbered()
    raise ValueError(f"unknown method {method!r}; use 'glushkov' or 'thompson'")


def match_brute_force(node: Regex, w: Sequence[str], alphabet: frozenset) -> bool:
    """Reference matcher by structural recursion (exponential; tests only)."""
    if isinstance(node, Empty):
        return False
    if isinstance(node, EpsilonNode):
        return len(w) == 0
    if isinstance(node, Literal):
        return len(w) == 1 and w[0] == node.symbol
    if isinstance(node, AnyChar):
        return len(w) == 1 and w[0] in alphabet
    if isinstance(node, CharClass):
        return len(w) == 1 and w[0] in node.resolve(alphabet)
    if isinstance(node, Concat):
        return _match_concat(node.parts, w, alphabet)
    if isinstance(node, Union):
        return any(match_brute_force(option, w, alphabet) for option in node.options)
    if isinstance(node, Star):
        return _match_star(node.inner, w, alphabet, allow_empty=True)
    if isinstance(node, Plus):
        return _match_star(node.inner, w, alphabet, allow_empty=False)
    if isinstance(node, Optional):
        return len(w) == 0 or match_brute_force(node.inner, w, alphabet)
    if isinstance(node, Repeat):
        return match_brute_force(_expand_repeats(node), w, alphabet)
    raise TypeError(f"unknown node {node!r}")


def _match_concat(parts: tuple, w: Sequence[str], alphabet: frozenset) -> bool:
    if not parts:
        return len(w) == 0
    head, rest = parts[0], parts[1:]
    for split in range(len(w) + 1):
        if match_brute_force(head, w[:split], alphabet):
            if len(rest) == 1:
                if match_brute_force(rest[0], w[split:], alphabet):
                    return True
            elif not rest:
                if split == len(w):
                    return True
            elif _match_concat(rest, w[split:], alphabet):
                return True
    return False


def _match_star(inner: Regex, w: Sequence[str], alphabet: frozenset, allow_empty: bool) -> bool:
    if len(w) == 0:
        return allow_empty or match_brute_force(inner, w, alphabet)
    for split in range(1, len(w) + 1):
        if match_brute_force(inner, w[:split], alphabet):
            if split == len(w) or _match_star(inner, w[split:], alphabet, allow_empty=True):
                return True
    return allow_empty and len(w) == 0
