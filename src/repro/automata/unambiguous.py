"""Unambiguity: testing, certification and measurement.

An NFA is *unambiguous* (a UFA) when every accepted word has exactly one
accepting run.  This is the defining property of the paper's MEM-UFA
problem, complete for ``RelationUL`` (Proposition 12): the exact counter,
the constant-delay enumerator and the exact uniform sampler of Section 5.3
are only correct on UFAs.

The test is the classical *self-product* criterion: build the product of
the (trimmed) automaton with itself; the automaton is ambiguous iff some
useful product state ``(p, q)`` with ``p ≠ q`` lies on an accepting product
path.  That runs in O(m²·|Σ|) — polynomial, as required for a class
membership check.

The product pairs are explored through the shared lazy pair walk
:func:`repro.automata.operations.product_transitions`, so the check
accepts either a concrete :class:`NFA` (ε-eliminated and trimmed first)
or any source exposing the on-the-fly successor interface — in
particular the symbolic plans of :mod:`repro.core.plan`, whose product
states are never materialized beyond the pairs the walk actually
reaches.

Also provided:

* :func:`ambiguity_counts` — for diagnostics and the Monte Carlo baseline:
  the number of accepting runs per accepted word length (max/total).
* :func:`disambiguate` — an equivalent UFA via determinization (worst-case
  exponential; DFAs are trivially unambiguous).  Used by tests to compare
  the UL pipeline against the NL pipeline on the same language.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import determinize
from repro.automata.nfa import NFA
from repro.errors import AmbiguityError


def is_unambiguous(source) -> bool:
    """Decide unambiguity in O(m²·|Σ|) via the self-product construction.

    ``source`` is an :class:`NFA` — ε-eliminated and trimmed first, since
    ambiguity is a property of *useful* runs and dead branches must not
    trigger false positives — or any lazy automaton source (a
    :class:`repro.core.plan.Plan`), checked directly on the on-the-fly
    successor interface without materializing the operand.  Only the
    forward-reachable pairs of the self-product ever exist; usefulness
    of a divergent pair is decided by the backward sweep below, so the
    explicit pre-trim is unnecessary for correctness (it only shrinks the
    NFA walk).
    """
    if isinstance(source, NFA):
        source = source.without_epsilon().trim()
        if not source.finals:
            return True  # empty language: vacuously unambiguous
    else:
        # Lazy sources recompute successor blocks per call; the pair walk
        # revisits each component state many times, so memoize once here.
        from repro.core.plan import memoized_source

        source = memoized_source(source)

    # One shared lazy pair walk streams the self-product transitions:
    # record the reached pairs, the off-diagonal ("divergent") ones, and
    # the reverse adjacency the backward sweep needs — a single pass
    # instead of the former explore-then-re-explore duplicate of the
    # operations.intersection product loop.
    from repro.automata.operations import product_transitions

    start = (source.initial, source.initial)
    seen = {start}
    diagonal_escaped: set = set()
    reverse: dict[tuple, set] = {}
    for predecessor, _, pair in product_transitions(source, source):
        seen.add(pair)
        if pair[0] != pair[1]:
            diagonal_escaped.add(pair)
        reverse.setdefault(pair, set()).add(predecessor)

    if not diagonal_escaped:
        return True

    # A divergent pair (p, q), p ≠ q, witnesses ambiguity iff both legs can
    # reach final states by the same word suffix — i.e. iff (p, q) can reach
    # a pair of finals in the product.  Backward BFS from final pairs.
    finals = source.finals
    final_pairs = {(p, q) for p, q in seen if p in finals and q in finals}
    if not final_pairs:
        return True
    coreachable = set(final_pairs)
    frontier = deque(final_pairs)
    while frontier:
        pair = frontier.popleft()
        for predecessor in reverse.get(pair, ()):
            if predecessor not in coreachable:
                coreachable.add(predecessor)
                frontier.append(predecessor)
    return not (diagonal_escaped & coreachable)


def require_unambiguous(nfa: NFA, context: str = "this operation") -> NFA:
    """Raise :class:`AmbiguityError` unless ``nfa`` is unambiguous.

    Returns the ε-free trimmed automaton, which is what the Section 5.3
    algorithms consume.
    """
    stripped = nfa.without_epsilon().trim()
    if not is_unambiguous(stripped):
        raise AmbiguityError(
            f"{context} requires an unambiguous NFA, but the given automaton "
            "has a word with more than one accepting run; disambiguate() or "
            "use the RelationNL algorithms (FPRAS / PLVUG) instead"
        )
    return stripped


def disambiguate(nfa: NFA) -> NFA:
    """An equivalent unambiguous NFA, via subset construction.

    DFAs have at most one run per word, hence are unambiguous.  Worst-case
    exponential — this is the cost the RelationUL algorithms avoid *when
    the input is already unambiguous*; the paper's separation between the
    two classes is exactly that this step is infeasible in general.
    """
    return determinize(nfa.without_epsilon()).to_nfa().trim()


def ambiguity_counts(nfa: NFA, length: int) -> tuple[int, int, int]:
    """Measure ambiguity at word length ``length``.

    Returns ``(distinct_words, accepting_runs, max_runs_per_word)`` where
    ``accepting_runs`` counts accepting *paths* of length ``length`` and
    ``distinct_words`` counts accepted *words*.  Their ratio (and the max)
    quantifies the variance blow-up of the naive Monte Carlo estimator
    (Section 6.1): the estimator's relative variance scales with
    ``max_runs / min_runs`` across accepted words.

    Exponential in ``length`` for the word count (uses the brute-force
    enumerator); intended for diagnostics at small sizes.
    """
    from repro.automata.operations import words_of_length

    stripped = nfa.without_epsilon()
    accepted = words_of_length(stripped, length)
    run_counts = [stripped.count_accepting_runs(w) for w in accepted]
    return (
        len(accepted),
        sum(run_counts),
        max(run_counts, default=0),
    )
