"""Reproducible random and structured automaton generators.

The paper has no datasets: its "workloads" are whatever automata a caller
brings.  For the experiments we therefore need instance families with
controllable size, density and — crucially — *ambiguity*, since ambiguity
is what separates the easy UL world from the NL world where only the
FPRAS works:

* :func:`random_nfa` — Erdős–Rényi-style random transition relation.
* :func:`random_ufa` — random *unambiguous* NFA built as a random DFA with
  extra unreachable-for-any-word redundancy removed (a DFA is trivially a
  UFA; randomized partial DFAs give non-trivial languages).
* :func:`ambiguity_blowup` — the ``(a | aa)ᵏ``-style family from the
  discussion in Section 6.1: the number of accepting runs per word grows
  exponentially with the word length, which makes the naive Monte Carlo
  estimator's variance explode while the FPRAS is unaffected.  This is the
  E5 workload.
* :func:`unary_counter` / :func:`divisibility_dfa` — structured families
  with known exact counts (used as self-checking ground truth).
* :func:`binary_counter_nfa` — accepts binary words containing a given
  pattern; known inclusion–exclusion counts.

Every generator takes a seed (or ``random.Random``) and is deterministic
given it.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.automata.nfa import NFA
from repro.utils.rng import make_rng

BINARY = ("0", "1")


def random_nfa(
    num_states: int,
    alphabet: Sequence[str] = BINARY,
    density: float = 1.5,
    final_fraction: float = 0.3,
    rng: random.Random | int | None = None,
    ensure_nonempty_length: int | None = None,
) -> NFA:
    """A random NFA with ~``density`` outgoing edges per (state, symbol).

    ``density`` is the expected number of successors for each (state,
    symbol) pair; values above 1 produce genuinely ambiguous automata.
    If ``ensure_nonempty_length`` is given, the generator retries (with
    fresh randomness from the same stream) until the automaton accepts at
    least one word of that length — convenient for sampling experiments
    that need a non-empty witness set.
    """
    generator = make_rng(rng)
    if num_states < 1:
        raise ValueError("num_states must be ≥ 1")
    probability = min(1.0, density / max(1, num_states))
    for _ in range(1000):
        states = list(range(num_states))
        transitions = [
            (source, symbol, target)
            for source in states
            for symbol in alphabet
            for target in states
            if generator.random() < probability
        ]
        num_finals = max(1, round(final_fraction * num_states))
        finals = generator.sample(states, num_finals)
        candidate = NFA(states, alphabet, transitions, 0, finals).trim()
        if ensure_nonempty_length is None:
            return candidate
        if _accepts_some_word(candidate, ensure_nonempty_length):
            return candidate
    raise RuntimeError(
        "could not generate an NFA with a nonempty witness set; "
        "increase density or num_states"
    )


def _accepts_some_word(nfa: NFA, length: int) -> bool:
    """Does the automaton accept at least one word of this length?

    Layered reachability: forward sets of states reachable in exactly i
    steps; accept iff the length-th set meets the finals.  O(length·|δ|).
    """
    stripped = nfa.without_epsilon()
    current = {stripped.initial}
    for _ in range(length):
        nxt: set = set()
        for state in current:
            for symbol in stripped.alphabet:
                nxt |= stripped.successors(state, symbol)
        current = nxt
        if not current:
            return False
    return bool(current & stripped.finals)


def random_ufa(
    num_states: int,
    alphabet: Sequence[str] = BINARY,
    completeness: float = 0.8,
    final_fraction: float = 0.3,
    rng: random.Random | int | None = None,
    ensure_nonempty_length: int | None = None,
) -> NFA:
    """A random *unambiguous* NFA (a random partial DFA, trimmed).

    A deterministic automaton has at most one run per word, hence is
    unambiguous; partiality (each (state, symbol) has a transition with
    probability ``completeness``) keeps the language non-trivial.
    """
    generator = make_rng(rng)
    for _ in range(1000):
        states = list(range(num_states))
        transitions = [
            (source, symbol, generator.choice(states))
            for source in states
            for symbol in alphabet
            if generator.random() < completeness
        ]
        num_finals = max(1, round(final_fraction * num_states))
        finals = generator.sample(states, num_finals)
        candidate = NFA(states, alphabet, transitions, 0, finals).trim()
        if ensure_nonempty_length is None:
            return candidate
        if _accepts_some_word(candidate, ensure_nonempty_length):
            return candidate
    raise RuntimeError("could not generate a UFA with a nonempty witness set")


def ambiguity_blowup(depth: int, alphabet: Sequence[str] = BINARY) -> NFA:
    """The Monte-Carlo-killer family of Section 6.1 (experiment E5).

    A chain of ``depth`` diamond gadgets over symbol ``alphabet[0]``; each
    gadget can be crossed by one step in two distinct ways, so the word
    ``a^depth`` has ``2^depth`` accepting runs, while words that mix in
    ``alphabet[1]`` (taken via a deterministic bypass at each stage) have
    exactly one.  The run-count imbalance between accepted words is then
    exponential in ``depth``, which drives the variance of the naive
    path-sampling estimator through the roof while leaving the FPRAS
    untouched.
    """
    if depth < 1:
        raise ValueError("depth must be ≥ 1")
    a, b = alphabet[0], alphabet[1]
    transitions: list[tuple] = []
    # States: hub_i for i in 0..depth; mid_i two parallel mid states per gadget.
    for i in range(depth):
        hub, nxt = f"h{i}", f"h{i + 1}"
        # Two parallel 'a' edges realized via two distinct epsilon-free paths:
        # duplicate intermediate states collapse to parallel edges; an NFA
        # cannot have two identical (q, a, q') transitions, so we route one
        # through a doubling state pair with the same total length 1 —
        # instead we make TWO distinct successors that then merge on the
        # next symbol.  Simpler and standard: hub --a--> m0_i and
        # hub --a--> m1_i, then m0_i --a--> next and m1_i --a--> next.
        # Each gadget thus consumes 'aa' with 2 runs; 'ab' has 1 run.
        m0, m1 = f"m0_{i}", f"m1_{i}"
        transitions.append((hub, a, m0))
        transitions.append((hub, a, m1))
        transitions.append((m0, a, nxt))
        transitions.append((m1, a, nxt))
        # Deterministic bypass consuming 'b' then 'a' (keeps lengths equal).
        bypass = f"bp_{i}"
        transitions.append((hub, b, bypass))
        transitions.append((bypass, a, nxt))
    states = {source for source, _, _ in transitions} | {
        target for _, _, target in transitions
    }
    return NFA(states, tuple(alphabet), transitions, "h0", [f"h{depth}"])


def unary_counter(modulus: int, residues: Sequence[int], symbol: str = "0") -> NFA:
    """DFA over a unary alphabet accepting lengths ≡ r (mod modulus).

    ``|L_n| = 1`` if ``n mod modulus ∈ residues`` else 0 — trivially
    verifiable ground truth for the counting pipeline's corner cases.
    """
    if modulus < 1:
        raise ValueError("modulus must be ≥ 1")
    bad = [r for r in residues if not 0 <= r < modulus]
    if bad:
        raise ValueError(f"residues out of range: {bad}")
    states = list(range(modulus))
    transitions = [(i, symbol, (i + 1) % modulus) for i in states]
    return NFA(states, [symbol], transitions, 0, list(residues))


def divisibility_dfa(base: int, divisor: int) -> NFA:
    """DFA accepting base-``base`` numerals divisible by ``divisor``.

    Symbols are the digit characters ``"0"..``; the state is the value
    mod ``divisor``.  Exact counts of length-n members have a clean
    closed form for divisor values coprime with the base (≈ baseⁿ/divisor),
    making this a good sanity family for the FPRAS.
    """
    if base < 2 or divisor < 1:
        raise ValueError("need base ≥ 2 and divisor ≥ 1")
    digits = [str(d) for d in range(base)]
    states = list(range(divisor))
    transitions = [
        (value, digit, (value * base + int(digit)) % divisor)
        for value in states
        for digit in digits
    ]
    return NFA(states, digits, transitions, 0, [0])


def contains_pattern_nfa(pattern: Sequence[str], alphabet: Sequence[str] = BINARY) -> NFA:
    """The classical ambiguous NFA for Σ*·pattern·Σ*.

    The textbook nondeterministic 'guess where the pattern starts'
    automaton: heavily ambiguous (every occurrence of the pattern gives a
    distinct accepting run), with known counts via inclusion–exclusion on
    small cases — a natural FPRAS stress family.
    """
    w = tuple(pattern)
    if not w:
        raise ValueError("pattern must be nonempty")
    states = list(range(len(w) + 1))
    transitions: list[tuple] = []
    for symbol in alphabet:
        transitions.append((0, symbol, 0))            # loop before the guess
        transitions.append((len(w), symbol, len(w)))  # loop after the match
    for i, symbol in enumerate(w):
        transitions.append((i, symbol, i + 1))
    return NFA(states, tuple(alphabet), transitions, 0, [len(w)])


def chain_of_unions(num_blocks: int, block_words: Sequence[Sequence[str]]) -> NFA:
    """Concatenation of ``num_blocks`` copies of a finite-word union block.

    With blocks like ("a", "aa") this generalizes the classical ambiguous
    families; counts are computable by convolution (the tests do so), and
    ambiguity is tunable through overlapping block words.
    """
    from repro.automata import operations as ops

    if num_blocks < 1:
        raise ValueError("num_blocks must be ≥ 1")
    words = [tuple(w) for w in block_words]
    if not words:
        raise ValueError("need at least one block word")
    alphabet = {symbol for w in words for symbol in w}
    block = NFA.single_word(words[0], alphabet)
    for w in words[1:]:
        block = ops.union(block, NFA.single_word(w, alphabet))
    result = block
    for _ in range(num_blocks - 1):
        result = ops.concatenate(result, block)
    return result.without_epsilon().trim().renumbered()
