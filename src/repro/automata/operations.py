"""Language algebra on NFAs: union, intersection, concatenation, star, ...

These constructions follow the textbook recipes with fresh-state labelling
that keeps results well-formed regardless of source state names: every
operation relabels operands into disjoint namespaces before combining.

The product (intersection) construction here is also the engine behind the
graph-database RPQ evaluation of Section 4.2 (product of a graph with a
query automaton) and the unambiguity test (product of an automaton with
itself) — all three now share one lazy pair exploration,
:func:`product_transitions`, which works over anything exposing the
on-the-fly successor interface (concrete :class:`NFA`\\ s or the symbolic
plans of :mod:`repro.core.plan`).

Two construction styles coexist:

* the **eager** functions below keep their materialize-an-NFA API, but
  the binary products now *trim as they build* — the pair frontier is
  bounded by per-operand usefulness, so even the legacy path stops
  allocating the full cross product before ``trim()``;
* each combinator has a **plan-returning** sibling (``union_plan``,
  ``intersection_plan``, ...) that builds a symbolic
  :class:`~repro.core.plan.Plan` node instead, for callers that lower
  straight into the :class:`~repro.core.kernel.CompiledDAG` kernel and
  never want the intermediate automaton.
"""

from __future__ import annotations

from typing import Iterator

from repro.automata.dfa import determinize, minimize
from repro.automata.nfa import EPSILON, NFA


def _tagged(nfa: NFA, tag: object) -> NFA:
    """Relabel every state as ``(tag, state)`` to force disjointness."""
    transitions = [
        ((tag, source), symbol, (tag, target)) for source, symbol, target in nfa.transitions
    ]
    return NFA(
        [(tag, state) for state in nfa.states],
        nfa.alphabet,
        transitions,
        (tag, nfa.initial),
        [(tag, state) for state in nfa.finals],
    )


def union(left: NFA, right: NFA) -> NFA:
    """NFA accepting L(left) ∪ L(right) (fresh initial state, ε-fan-out)."""
    a = _tagged(left, 0)
    b = _tagged(right, 1)
    initial = ("u", 0)
    states = set(a.states) | set(b.states) | {initial}
    transitions = set(a.transitions) | set(b.transitions)
    transitions.add((initial, EPSILON, a.initial))
    transitions.add((initial, EPSILON, b.initial))
    return NFA(
        states,
        left.alphabet | right.alphabet,
        transitions,
        initial,
        set(a.finals) | set(b.finals),
    )


def concatenate(left: NFA, right: NFA) -> NFA:
    """NFA accepting L(left)·L(right) (ε-edges from left finals to right start)."""
    a = _tagged(left, 0)
    b = _tagged(right, 1)
    states = set(a.states) | set(b.states)
    transitions = set(a.transitions) | set(b.transitions)
    for final in a.finals:
        transitions.add((final, EPSILON, b.initial))
    return NFA(states, left.alphabet | right.alphabet, transitions, a.initial, b.finals)


def star(nfa: NFA) -> NFA:
    """NFA accepting L(nfa)* (Thompson star with a fresh initial/final state)."""
    a = _tagged(nfa, 0)
    hub = ("star", 0)
    states = set(a.states) | {hub}
    transitions = set(a.transitions)
    transitions.add((hub, EPSILON, a.initial))
    for final in a.finals:
        transitions.add((final, EPSILON, hub))
    return NFA(states, nfa.alphabet, transitions, hub, [hub])


def plus(nfa: NFA) -> NFA:
    """NFA accepting L(nfa)+ = L·L*."""
    return concatenate(nfa, star(nfa))


def optional(nfa: NFA) -> NFA:
    """NFA accepting L(nfa) ∪ {ε}."""
    a = _tagged(nfa, 0)
    hub = ("opt", 0)
    states = set(a.states) | {hub}
    transitions = set(a.transitions) | {(hub, EPSILON, a.initial)}
    return NFA(states, nfa.alphabet, transitions, hub, set(a.finals) | {hub})


def repeat(nfa: NFA, low: int, high: int | None) -> NFA:
    """NFA for L{low,high} (bounded repetition; ``high=None`` means ∞)."""
    if low < 0 or (high is not None and high < low):
        raise ValueError(f"invalid repetition bounds {{{low},{high}}}")
    result = NFA.only_empty_word(nfa.alphabet)
    for _ in range(low):
        result = concatenate(result, nfa)
    if high is None:
        return concatenate(result, star(nfa))
    tail = optional(nfa)
    for _ in range(high - low):
        result = concatenate(result, tail)
    return result


def product_transitions(
    a,
    b,
    a_keep: frozenset | None = None,
    b_keep: frozenset | None = None,
) -> Iterator[tuple]:
    """Lazily explore the synchronous product of two automaton sources.

    Yields ``((sa, sb), symbol, (ta, tb))`` transition triples by forward
    BFS from ``(a.initial, b.initial)``, expanding each pair exactly
    once.  ``a``/``b`` are anything exposing the on-the-fly successor
    interface — ``initial``, ``out_edges(state)`` and
    ``successors(state, symbol)`` — i.e. concrete :class:`NFA`\\ s or
    :class:`repro.core.plan.Plan` nodes.

    ``a_keep`` / ``b_keep`` bound the frontier: a successor pair is only
    expanded (or emitted) when each component lies in its keep-set.
    Passing the operands' co-reachable state sets turns the exploration
    into a trim-as-you-build product — pairs whose components cannot
    reach a final state are pruned *before* they are materialized, which
    is a necessary condition for product usefulness.

    This single exploration is shared by the eager :func:`intersection`,
    and — instantiated with ``b = a`` — by the self-product ambiguity
    check of :mod:`repro.automata.unambiguous`.
    """
    start = (a.initial, b.initial)
    seen = {start}
    stack = [start]
    while stack:
        state_a, state_b = stack.pop()
        for symbol, target_a in a.out_edges(state_a):
            if a_keep is not None and target_a not in a_keep:
                continue
            targets_b = b.successors(state_b, symbol)
            if not targets_b:
                continue
            for target_b in targets_b:
                if b_keep is not None and target_b not in b_keep:
                    continue
                pair = (target_a, target_b)
                yield (state_a, state_b), symbol, pair
                if pair not in seen:
                    seen.add(pair)
                    stack.append(pair)


def intersection(left: NFA, right: NFA) -> NFA:
    """Product NFA accepting L(left) ∩ L(right).

    Operands are ε-eliminated first so the synchronous product is sound.
    The exploration trims as it builds: only pairs both of whose
    components are co-reachable in their operand are ever expanded, so
    the intermediate materialization is bounded by the useful-component
    pairs rather than the full cross product; the final ``trim()`` then
    removes the (now few) pairs that are not *jointly* useful.  The
    resulting automaton is identical to the classical
    explore-everything-then-trim construction.
    """
    a = left.without_epsilon()
    b = right.without_epsilon()
    alphabet = a.alphabet & b.alphabet
    initial = (a.initial, b.initial)
    states = {initial}
    transitions: list[tuple] = []
    for source, symbol, pair in product_transitions(
        a, b, a_keep=a.coreachable_states(), b_keep=b.coreachable_states()
    ):
        transitions.append((source, symbol, pair))
        states.add(pair)
    finals = {
        (state_a, state_b)
        for (state_a, state_b) in states
        if state_a in a.finals and state_b in b.finals
    }
    return NFA(states, alphabet, transitions, initial, finals).trim()


# ----------------------------------------------------------------------
# Plan-returning variants: symbolic nodes instead of materialized NFAs
# ----------------------------------------------------------------------


def intersection_plan(left, right):
    """L(left) ∩ L(right) as a lazy :class:`~repro.core.plan.Product` node.

    Nothing is materialized: the product states exist only while a
    lowering (:func:`repro.core.plan.lower_plan`) or a facade query
    (:meth:`repro.api.WitnessSet.from_plan`) walks them.  Operands may be
    NFAs, regex strings or other plans.
    """
    from repro.core.plan import Product

    return Product(left, right)


def union_plan(left, right):
    """L(left) ∪ L(right) as a lazy plan node (on-the-fly ε-fan-out)."""
    from repro.core.plan import Union

    return Union(left, right)


def concatenate_plan(left, right):
    """L(left)·L(right) as a lazy plan node (on-the-fly ε-bridge)."""
    from repro.core.plan import Concat

    return Concat(left, right)


def star_plan(operand):
    """L(operand)* as a lazy plan node (on-the-fly loop-back)."""
    from repro.core.plan import Star

    return Star(operand)


def relabel_plan(operand, mapping):
    """Symbol relabelling as a lazy plan node (per-edge mapping)."""
    from repro.core.plan import Relabel

    return Relabel(operand, mapping)


def difference(left: NFA, right: NFA) -> NFA:
    """NFA for L(left) \\ L(right), via right's complement DFA.

    Exponential in ``right`` (determinization) — test/ground-truth use only.
    """
    alphabet = left.alphabet | right.alphabet
    widened = NFA(
        right.states, alphabet, right.transitions, right.initial, right.finals
    )
    complement_dfa = determinize(widened).complement()
    return intersection(left, complement_dfa.to_nfa())


def reverse(nfa: NFA) -> NFA:
    """NFA for the reversal language L(nfa)^R.

    Flips every edge, makes the old initial state final, and fans a fresh
    initial state into the old finals by ε.
    """
    hub = ("rev", 0)
    serial = 0
    while hub in nfa.states:  # stay fresh under iterated reversal
        serial += 1
        hub = ("rev", serial)
    states = set(nfa.states) | {hub}
    transitions = {
        (target, symbol, source) for source, symbol, target in nfa.transitions
    }
    for final in nfa.finals:
        transitions.add((hub, EPSILON, final))
    return NFA(states, nfa.alphabet, transitions, hub, [nfa.initial])


def canonical_minimal_dfa(nfa: NFA) -> "object":
    """The minimal complete DFA of L(nfa), renumbered canonically.

    Convenience used by tests that compare languages structurally.
    """
    return minimize(determinize(nfa.without_epsilon()))


def words_of_length(nfa: NFA, length: int, limit: int | None = None) -> list[tuple]:
    """Brute-force: all length-``length`` words in L(nfa), lexicographic.

    Exponential in ``length``; ground truth for small instances.  Symbols
    are ordered by ``repr`` for determinism.  ``limit`` caps the output
    (useful to bail out early in property tests).
    """
    stripped = nfa.without_epsilon()
    symbols = sorted(stripped.alphabet, key=repr)
    results: list[tuple] = []

    def extend(prefix: tuple, states: frozenset) -> bool:
        """DFS over prefixes; returns False when the limit is hit."""
        if not states:
            return True
        if len(prefix) == length:
            if states & stripped.finals:
                results.append(prefix)
                if limit is not None and len(results) >= limit:
                    return False
            return True
        for symbol in symbols:
            nxt = set()
            for state in states:
                nxt |= stripped.successors(state, symbol)
            if nxt and not extend(prefix + (symbol,), frozenset(nxt)):
                return False
        return True

    extend((), frozenset({stripped.initial}))
    return results
