"""Deterministic finite automata, determinization and minimization.

DFAs appear in this library only as *substrates for exact baselines and
testing*: the paper's point is precisely that the interesting problems are
about NFAs, where determinization costs an exponential blow-up.  We still
implement the full classical toolkit —

* subset-construction determinization (:func:`determinize`),
* completion with a sink state (:meth:`DFA.completed`),
* Hopcroft's partition-refinement minimization (:func:`minimize`),
* complement and language-equality checking —

because the test suite validates every approximate algorithm against exact
language-level ground truth, and language equality of NFAs is decided via
their minimal DFAs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from repro.automata.nfa import EPSILON, NFA, State, Symbol
from repro.errors import InvalidAutomatonError


class DFA:
    """An immutable deterministic finite automaton.

    ``transitions`` maps ``(state, symbol)`` to the unique successor.  The
    automaton may be partial (missing entries mean rejection); use
    :meth:`completed` to make it total.
    """

    __slots__ = ("_states", "_alphabet", "_delta", "_initial", "_finals", "_hash")

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple, State],
        initial: State,
        finals: Iterable[State],
    ):
        self._states = frozenset(states)
        self._alphabet = frozenset(alphabet)
        self._delta = dict(transitions)
        self._initial = initial
        self._finals = frozenset(finals)
        self._hash = None
        self._validate()

    def _validate(self) -> None:
        if self._initial not in self._states:
            raise InvalidAutomatonError(f"initial state {self._initial!r} not in states")
        if not self._finals <= self._states:
            raise InvalidAutomatonError("final states must be a subset of states")
        for (source, symbol), target in self._delta.items():
            if source not in self._states or target not in self._states:
                raise InvalidAutomatonError(
                    f"transition ({source!r}, {symbol!r}) -> {target!r} leaves the state set"
                )
            if symbol not in self._alphabet:
                raise InvalidAutomatonError(f"symbol {symbol!r} not in alphabet")
            if symbol is EPSILON:
                raise InvalidAutomatonError("DFAs cannot have ε-transitions")

    @property
    def states(self) -> frozenset:
        return self._states

    @property
    def alphabet(self) -> frozenset:
        return self._alphabet

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def finals(self) -> frozenset:
        return self._finals

    @property
    def num_states(self) -> int:
        return len(self._states)

    def successor(self, state: State, symbol: Symbol) -> State | None:
        """The unique successor, or None if the transition is undefined."""
        return self._delta.get((state, symbol))

    def transitions_dict(self) -> dict[tuple, State]:
        return dict(self._delta)

    def accepts(self, input_word: Iterable[Symbol]) -> bool:
        state = self._initial
        for symbol in input_word:
            state = self._delta.get((state, symbol))
            if state is None:
                return False
        return state in self._finals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DFA):
            return NotImplemented
        return (
            self._states == other._states
            and self._alphabet == other._alphabet
            and self._delta == other._delta
            and self._initial == other._initial
            and self._finals == other._finals
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._states,
                    self._alphabet,
                    frozenset(self._delta.items()),
                    self._initial,
                    self._finals,
                )
            )
        return self._hash

    def __repr__(self) -> str:
        return f"DFA(states={self.num_states}, alphabet={sorted(map(repr, self._alphabet))})"

    # ------------------------------------------------------------------

    def completed(self, sink_label: State = ("__sink__",)) -> "DFA":
        """Total DFA: add a rejecting sink for all missing transitions."""
        missing = [
            (state, symbol)
            for state in self._states
            for symbol in self._alphabet
            if (state, symbol) not in self._delta
        ]
        if not missing:
            return self
        if sink_label in self._states:
            raise InvalidAutomatonError(f"sink label {sink_label!r} collides with a state")
        delta = dict(self._delta)
        for state, symbol in missing:
            delta[(state, symbol)] = sink_label
        for symbol in self._alphabet:
            delta[(sink_label, symbol)] = sink_label
        return DFA(
            set(self._states) | {sink_label}, self._alphabet, delta, self._initial, self._finals
        )

    def complement(self) -> "DFA":
        """DFA for the complement language (completes first)."""
        total = self.completed()
        return DFA(
            total._states,
            total._alphabet,
            total._delta,
            total._initial,
            total._states - total._finals,
        )

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA (same structure)."""
        transitions = [
            (source, symbol, target) for (source, symbol), target in self._delta.items()
        ]
        return NFA(self._states, self._alphabet, transitions, self._initial, self._finals)

    def reachable(self) -> "DFA":
        """Restrict to states reachable from the initial state."""
        seen = {self._initial}
        frontier = deque([self._initial])
        while frontier:
            state = frontier.popleft()
            for symbol in self._alphabet:
                target = self._delta.get((state, symbol))
                if target is not None and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        delta = {
            (source, symbol): target
            for (source, symbol), target in self._delta.items()
            if source in seen
        }
        return DFA(seen, self._alphabet, delta, self._initial, self._finals & seen)


def determinize(nfa: NFA) -> DFA:
    """Subset-construction determinization.

    States of the result are frozensets of NFA states (ε-closed).  Worst
    case exponential — this is exactly the blow-up the paper's FPRAS
    avoids; we use determinization only for exact ground truth on small
    instances and for language-equality testing.
    """
    start = nfa.epsilon_closure({nfa.initial})
    states: set[frozenset] = {start}
    delta: dict[tuple, frozenset] = {}
    frontier = deque([start])
    while frontier:
        subset = frontier.popleft()
        for symbol in nfa.alphabet:
            target = nfa.step(subset, symbol)
            delta[(subset, symbol)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)
    finals = {subset for subset in states if subset & nfa.finals}
    return DFA(states, nfa.alphabet, delta, start, finals)


def minimize(dfa: DFA) -> DFA:
    """Hopcroft's O(m·|Σ|·log m) DFA minimization.

    The input is completed and restricted to reachable states first; the
    result is the canonical minimal total DFA for the language (up to
    state naming — states are frozensets of merged original states).
    """
    total = dfa.completed().reachable()
    finals = total.finals
    nonfinals = total.states - finals

    # Reverse transition index: (symbol, target) -> set of sources.
    reverse: dict[tuple, set] = {}
    for (source, symbol), target in total.transitions_dict().items():
        reverse.setdefault((symbol, target), set()).add(source)

    partition: list[set] = [set(block) for block in (finals, nonfinals) if block]
    worklist: list[frozenset] = [frozenset(block) for block in partition]

    while worklist:
        splitter = worklist.pop()
        for symbol in total.alphabet:
            predecessors: set = set()
            for target in splitter:
                predecessors |= reverse.get((symbol, target), set())
            if not predecessors:
                continue
            next_partition: list[set] = []
            for block in partition:
                inside = block & predecessors
                outside = block - predecessors
                if inside and outside:
                    next_partition.append(inside)
                    next_partition.append(outside)
                    frozen_block = frozenset(block)
                    if frozen_block in worklist:
                        worklist.remove(frozen_block)
                        worklist.append(frozenset(inside))
                        worklist.append(frozenset(outside))
                    else:
                        smaller = inside if len(inside) <= len(outside) else outside
                        worklist.append(frozenset(smaller))
                else:
                    next_partition.append(block)
            partition = next_partition

    block_of: dict[State, frozenset] = {}
    for block in partition:
        frozen = frozenset(block)
        for state in block:
            block_of[state] = frozen
    delta = {
        (block_of[source], symbol): block_of[target]
        for (source, symbol), target in total.transitions_dict().items()
    }
    new_states = set(block_of.values())
    new_finals = {block for block in new_states if block & finals}
    return DFA(new_states, total.alphabet, delta, block_of[total.initial], new_finals)


def languages_equal(left: NFA, right: NFA) -> bool:
    """Decide L(left) = L(right) via Hopcroft–Karp style pair exploration.

    Runs a synchronous BFS over the pair graph of the two determinized
    automata, bailing out at the first distinguishing pair.  Exponential in
    the worst case (inherent), fine at test sizes.
    """
    if left.alphabet != right.alphabet:
        # Different alphabets can still be language-equal only if neither
        # uses the extra symbols; comparing over the union is correct.
        alphabet = left.alphabet | right.alphabet
    else:
        alphabet = left.alphabet
    left = left.without_epsilon()
    right = right.without_epsilon()
    start = (
        left.epsilon_closure({left.initial}),
        right.epsilon_closure({right.initial}),
    )
    seen = {start}
    frontier = deque([start])
    while frontier:
        subset_l, subset_r = frontier.popleft()
        accept_l = bool(subset_l & left.finals)
        accept_r = bool(subset_r & right.finals)
        if accept_l != accept_r:
            return False
        for symbol in alphabet:
            nxt = (left.step(subset_l, symbol), right.step(subset_r, symbol))
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return True
