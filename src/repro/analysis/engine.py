"""The lint driver: parse sources, run rules, honour suppressions.

The engine is deliberately small — rules carry all project knowledge.
A rule subclasses :class:`Rule` and overrides either

* :meth:`Rule.check_module` — called once per parsed file, for purely
  local properties (blocking calls in ``async def``, bare ``except``);
  or
* :meth:`Rule.check_project` — called once with *every* parsed file,
  for cross-file invariants (protocol-op exhaustiveness).

Findings land on a source line and can be silenced there with an
inline comment::

    risky_call()  # repro-lint: ignore[rule-id] -- why this is safe

The reason after ``--`` is mandatory: a suppression without one is
itself reported (``bad-suppression``), so every silenced finding in the
tree carries a written justification.  ``ignore[*]`` silences all rules
on the line.
"""

from __future__ import annotations

import ast
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

#: ``# repro-lint: ignore[rule, rule2] -- reason`` (reason optional in the
#: grammar, but its absence is a finding).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([^\]]*)\]\s*(?:--\s*(\S.*?)\s*)?$"
)

#: Findings the engine itself emits; always active, never suppressible.
ENGINE_RULES = ("parse-error", "bad-suppression")


@dataclass(frozen=True)
class Suppression:
    """One inline ``repro-lint: ignore[...]`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


class SourceModule:
    """One parsed Python file handed to every rule."""

    __slots__ = ("path", "rel_path", "text", "tree", "suppressions")

    def __init__(
        self,
        path: Path,
        rel_path: str,
        text: str,
        tree: ast.Module,
        suppressions: dict[int, Suppression],
    ) -> None:
        self.path = path
        self.rel_path = rel_path
        self.text = text
        self.tree = tree
        self.suppressions = suppressions

    @property
    def name(self) -> str:
        """Basename, the key rules use for module-scoped applicability."""
        return self.path.name

    def posix(self) -> str:
        """``rel_path`` with forward slashes, for suffix matching."""
        return self.rel_path.replace("\\", "/")

    @classmethod
    def parse(cls, path: Path, rel_path: str) -> "SourceModule":
        """Read, tokenize (for suppressions) and ``ast.parse`` a file.

        Raises ``SyntaxError`` (propagated to the driver, which turns it
        into a ``parse-error`` finding) when the file does not parse.
        """
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(path, rel_path, text, tree, _extract_suppressions(text))


def _extract_suppressions(text: str) -> dict[int, Suppression]:
    """Map line number → suppression for every ``repro-lint:`` comment.

    Uses the tokenizer rather than a per-line regex so ``#`` characters
    inside string literals can never be mistaken for comments.
    """
    suppressions: dict[int, Suppression] = {}
    lines = iter(text.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            suppressions[token.start[0]] = Suppression(
                line=token.start[0],
                rules=rules or frozenset({"*"}),
                reason=(match.group(2) or "").strip(),
            )
    except tokenize.TokenError:
        # A tokenize failure will surface as a parse-error finding via
        # ast.parse; suppression extraction just degrades gracefully.
        pass
    return suppressions


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (the name used in reports and suppression
    comments), ``description`` (one line, shown by ``--list-rules``) and
    optionally ``hint`` (the default fix hint attached to findings).

    For ``repro-lint --explain``, a rule may also provide ``explain``
    (long-form prose; falls back to the defining module's docstring)
    plus ``example_bad`` / ``example_good`` — a minimal violating
    snippet and its clean counterpart.
    """

    id: str = ""
    description: str = ""
    hint: str = ""
    explain: str = ""
    example_bad: str = ""
    example_good: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        """Findings local to one file; default: none."""
        return ()

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        """Findings needing the whole file set; default: none."""
        return ()

    def finding(
        self,
        module: SourceModule,
        node: ast.AST | None,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` (or the file top)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=module.rel_path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default set."""
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    # Importing the package registers the built-in rules exactly once.
    from repro.analysis import rules as _rules  # repro-lint: ignore[unused-symbol] -- imported for its registration side effect

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation."""

    findings: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    rules: list[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "ok": self.ok,
            "files": len(self.files),
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "findings": [finding.as_dict() for finding in self.findings],
        }


def iter_source_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                parts = child.relative_to(path).parts
                if any(p == "__pycache__" or p.startswith(".") for p in parts):
                    continue
                yield child
        else:
            yield path


def run_lint(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint ``paths`` (files and/or directories) and return the result.

    ``rules`` overrides the registered default set (used by the tests to
    exercise one rule against a fixture); ``select`` filters the default
    set down to the named rule ids.
    """
    active = list(rules) if rules is not None else default_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {rule.id for rule in active}
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        active = [rule for rule in active if rule.id in wanted]

    result = LintResult(rules=[rule.id for rule in active])
    modules: list[SourceModule] = []
    raw_findings: list[Finding] = []

    for path in iter_source_files(paths):
        rel = _relative_path(path)
        try:
            module = SourceModule.parse(path, rel)
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 1) or 1
            raw_findings.append(
                Finding(
                    path=rel,
                    line=line,
                    col=0,
                    rule="parse-error",
                    message=f"file does not parse: {error}",
                    hint="",
                )
            )
            result.files.append(rel)
            continue
        modules.append(module)
        result.files.append(rel)

    for module in modules:
        for rule in active:
            raw_findings.extend(rule.check_module(module))
    for rule in active:
        raw_findings.extend(rule.check_project(modules))

    by_path = {module.rel_path: module for module in modules}
    kept: list[Finding] = []
    for finding in raw_findings:
        module = by_path.get(finding.path)
        suppression = (
            module.suppressions.get(finding.line) if module is not None else None
        )
        if (
            suppression is not None
            and finding.rule not in ENGINE_RULES
            and suppression.covers(finding.rule)
        ):
            result.suppressed += 1
            continue
        kept.append(finding)

    # A suppression without a written reason is itself a violation —
    # the policy is "every silenced finding carries a justification".
    for module in modules:
        for suppression in module.suppressions.values():
            if not suppression.reason:
                kept.append(
                    Finding(
                        path=module.rel_path,
                        line=suppression.line,
                        col=0,
                        rule="bad-suppression",
                        message=(
                            "suppression comment has no reason; write "
                            "'# repro-lint: ignore[rule] -- <why this is safe>'"
                        ),
                        hint="",
                    )
                )

    result.findings = sorted(kept)
    return result


def _relative_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


__all__ = [
    "ENGINE_RULES",
    "Finding",
    "LintResult",
    "Rule",
    "SourceModule",
    "Suppression",
    "default_rules",
    "iter_source_files",
    "register",
    "run_lint",
]
