"""Project-invariant static analysis (the ``repro-lint`` engine).

The codebase carries invariants no general-purpose linter knows about:
the asyncio witness server must never block its event loop, the engine
promises byte-identical seeded samples across worker counts, run-count
rows must route through the int64 bignum-spill guard, and the service
layers must agree on the wire-op vocabulary.  This package enforces
them mechanically:

* :mod:`repro.analysis.engine` — the driver (parsing, rule registry,
  inline suppressions with mandatory reasons, JSON/text reporting);
* :mod:`repro.analysis.rules` — the project rules;
* :mod:`repro.analysis.cli` — the ``repro-lint`` console entry point.

Programmatic use::

    from repro.analysis import run_lint
    result = run_lint(["src/repro"])
    assert result.ok, result.findings
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    LintResult,
    Rule,
    SourceModule,
    Suppression,
    default_rules,
    register,
    run_lint,
)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "SourceModule",
    "Suppression",
    "default_rules",
    "register",
    "run_lint",
]
