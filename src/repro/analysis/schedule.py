"""Seeded deterministic schedule fuzzer for threads and event loops.

Concurrency bugs in the serving stack (the PR 9 scrape race: a metrics
broadcast stealing batch responses off the engine's shared result
queue) only surface under specific interleavings.  This module makes
those interleavings *reproducible*: a seed fully determines the
schedule, so a failing seed is a regression test, not a flake.

Two instruments, one per concurrency style:

* :class:`ScheduleFuzzer` — cooperative scheduler for threads.  Managed
  threads run strictly one at a time and hand the turn back at
  :meth:`~ScheduleFuzzer.point` yield gates (placed by the test, or
  implicitly by :class:`FuzzLock` / :class:`FuzzQueue`); a seeded RNG
  picks who runs next.  The same seed replays the same schedule because
  every pick happens when all live threads are parked at a gate, so the
  candidate set never depends on wall-clock timing.
* :class:`FuzzedEventLoop` — an asyncio event loop that shuffles the
  ready-callback queue with a seeded RNG each iteration, driving async
  server code through adversarial (but replayable) callback orders.

Design note on determinism: :meth:`FuzzQueue.get` yields **once** for
the consume-order decision, then blocks *holding the turn* until an
item arrives.  Polling in a yield loop instead would make the number of
scheduler picks depend on external producer latency and break
seed-determinism.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Any, Callable, Coroutine, Protocol, TypeVar

_T = TypeVar("_T")

#: Scheduler poll interval while a thread runs its turn (seconds).
_TICK_SECONDS = 0.05

#: Slice used by blocking waits inside managed threads (seconds).
_WAIT_SECONDS = 0.5


class DeadlockError(RuntimeError):
    """The schedule stalled: no managed thread can make progress."""


class _AbortSchedule(BaseException):
    """Internal: unwind a managed thread after a deadlock timeout.

    Derives from ``BaseException`` so application ``except Exception``
    blocks cannot swallow the abort.
    """


class _QueueLike(Protocol):
    """The blocking-queue slice shared by ``queue.Queue`` and
    ``multiprocessing.Queue``."""

    def put(self, item: Any, block: bool = ..., timeout: float | None = ...) -> None:
        ...

    def get(self, block: bool = ..., timeout: float | None = ...) -> Any:
        ...


class ScheduleFuzzer:
    """Serialize spawned threads; a seeded RNG picks who proceeds.

    Usage::

        fuzzer = ScheduleFuzzer(seed=7)
        fuzzer.spawn("a", worker_a)
        fuzzer.spawn("b", worker_b)
        trace = fuzzer.run()          # e.g. ["a", "b", "a", ...]

    ``run`` returns the pick trace (one label per scheduling decision);
    the same seed with the same workload returns the same trace.  The
    first pick happens only after *every* spawned thread has parked at
    its initial gate, so startup timing cannot skew the schedule.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._cond = threading.Condition()
        self._threads: dict[str, threading.Thread] = {}
        self._labels: dict[int, str] = {}  # guarded-by: _cond
        self._state: dict[str, str] = {}  # guarded-by: _cond
        self._current: str | None = None  # guarded-by: _cond
        self._aborting = False  # guarded-by: _cond
        self._started = False
        self.errors: dict[str, BaseException] = {}
        self.trace: list[str] = []

    def spawn(
        self,
        label: str,
        target: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> None:
        """Register a managed thread; it starts parked inside ``run``."""

        if self._started:
            raise RuntimeError("spawn() after run() started")
        if label in self._threads:
            raise ValueError(f"duplicate thread label {label!r}")
        self._threads[label] = threading.Thread(
            target=self._runner,
            args=(label, target, args, kwargs),
            name=f"fuzz-{label}",
            daemon=True,
        )
        with self._cond:
            self._state[label] = "new"

    def current_label(self) -> str | None:
        """Label of the calling managed thread, or ``None``."""

        with self._cond:
            return self._labels.get(threading.get_ident())

    def point(self, note: str = "") -> None:
        """Yield gate: hand the turn back and wait to be rescheduled.

        No-op when called from a thread the fuzzer does not manage, so
        instrumented code also runs un-fuzzed (and in the main thread).
        """

        del note  # reserved for trace annotations
        with self._cond:
            label = self._labels.get(threading.get_ident())
            if label is None:
                return
            if self._current == label:
                self._current = None
            self._state[label] = "waiting"
            self._cond.notify_all()
            while self._current != label:
                if self._aborting:
                    raise _AbortSchedule()
                self._cond.wait(timeout=_WAIT_SECONDS)
            self._state[label] = "running"

    def run(self, timeout: float = 30.0) -> list[str]:
        """Drive every spawned thread to completion; return the trace.

        Raises :class:`DeadlockError` when no thread can be scheduled
        before ``timeout``, and re-raises the first (by label) exception
        a managed thread died with.
        """

        if self._started:
            raise RuntimeError("run() may only be called once")
        self._started = True
        if not self._threads:
            return []
        for thread in self._threads.values():
            thread.start()
        deadline = time.monotonic() + timeout
        try:
            with self._cond:
                while True:
                    states = self._state
                    if all(s == "done" for s in states.values()):
                        break
                    waiting = sorted(
                        label
                        for label, s in states.items()
                        if s == "waiting"
                    )
                    starting = any(s == "new" for s in states.values())
                    if self._current is None and waiting and not starting:
                        pick = waiting[self._rng.randrange(len(waiting))]
                        self.trace.append(pick)
                        self._current = pick
                        self._cond.notify_all()
                        continue
                    self._cond.wait(timeout=_TICK_SECONDS)
                    if time.monotonic() > deadline:
                        self._aborting = True
                        self._cond.notify_all()
                        raise DeadlockError(
                            f"schedule stalled after {timeout:.0f}s "
                            f"(states={states!r}, trace={self.trace!r})"
                        )
        finally:
            for thread in self._threads.values():
                thread.join(timeout=_WAIT_SECONDS * 4)
        if self.errors:
            raise self.errors[sorted(self.errors)[0]]
        return list(self.trace)

    def _runner(
        self,
        label: str,
        target: Callable[..., Any],
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
    ) -> None:
        with self._cond:
            self._labels[threading.get_ident()] = label
        try:
            self.point()  # initial gate: wait for the first pick
            target(*args, **kwargs)
        except _AbortSchedule:
            pass
        except BaseException as exc:  # repro-lint: ignore[swallowed-cancel] -- errors are recorded per label and re-raised by run() after joining every managed thread
            self.errors[label] = exc
        finally:
            with self._cond:
                self._state[label] = "done"
                if self._current == label:
                    self._current = None
                self._cond.notify_all()


class FuzzLock:
    """A lock whose contention is resolved by the fuzzer's schedule.

    ``acquire`` yields at a gate, then tries a non-blocking acquire; on
    failure it yields again, so a contended lock hands the turn around
    until the holder releases — every hand-off is an RNG pick, never a
    timing race.
    """

    def __init__(
        self, fuzzer: ScheduleFuzzer, inner: threading.Lock | None = None
    ) -> None:
        self._fuzzer = fuzzer
        self._inner = inner if inner is not None else threading.Lock()

    def acquire(self) -> bool:
        while True:
            self._fuzzer.point("lock-acquire")
            if self._inner.acquire(blocking=False):
                return True

    def release(self) -> None:
        self._inner.release()
        self._fuzzer.point("lock-release")

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class FuzzQueue:
    """Queue wrapper with yield gates and per-consumer receipt records.

    ``received`` logs ``(consumer_label, item)`` in consumption order —
    the instrument that makes response *stealing* observable: in the
    scrape-race reproduction, the steal shows up as the stats thread's
    label paired with the batch thread's reply.
    """

    def __init__(self, fuzzer: ScheduleFuzzer, inner: _QueueLike) -> None:
        self._fuzzer = fuzzer
        self._inner = inner
        self.received: list[tuple[str, Any]] = []

    def put(self, item: Any) -> None:
        self._fuzzer.point("queue-put")
        self._inner.put(item)

    def get(self, timeout: float | None = None) -> Any:
        """Yield once (the consume-order decision), then block with the
        turn held — see the module docstring's determinism note."""

        self._fuzzer.point("queue-get")
        item = self._inner.get(block=True, timeout=timeout)
        label = self._fuzzer.current_label()
        self.received.append((label if label is not None else "<main>", item))
        return item


class FuzzedEventLoop(asyncio.SelectorEventLoop):
    """Event loop that shuffles coroutine resumption with a seeded RNG.

    asyncio guarantees FIFO ordering of ``call_soon`` callbacks; code
    that silently *relies* on that ordering for mutual exclusion is one
    await away from a race.  Each loop iteration this shuffles the
    *task-step* handles (coroutine resumptions) queued in ``_ready``,
    surfacing such assumptions deterministically per seed.  Only
    *contiguous runs* of task steps are permuted — no task step ever
    crosses a transport/plumbing callback, because asyncio's own
    internals depend on that relative order (a task resuming from
    ``sock_connect`` must not overtake its ``_sock_write_done``).
    Falls back to FIFO if the private ``_ready`` deque ever disappears
    from the base loop (it is stable across CPython 3.10–3.12).
    """

    def __init__(self, seed: int) -> None:
        super().__init__()
        self._fuzz_rng = random.Random(seed)

    @staticmethod
    def _is_task_step(handle: object) -> bool:
        callback = getattr(handle, "_callback", None)
        return isinstance(getattr(callback, "__self__", None), asyncio.Task)

    def _run_once(self) -> None:
        ready = getattr(self, "_ready", None)
        if ready is not None and len(ready) > 1:
            handles = list(ready)
            shuffled = False
            run: list[int] = []
            for index in range(len(handles) + 1):
                if index < len(handles) and self._is_task_step(handles[index]):
                    run.append(index)
                    continue
                if len(run) > 1:
                    steps = [handles[i] for i in run]
                    self._fuzz_rng.shuffle(steps)
                    for i, handle in zip(run, steps):
                        handles[i] = handle
                    shuffled = True
                run = []
            if shuffled:
                ready.clear()
                ready.extend(handles)
        run_once = getattr(super(), "_run_once")
        run_once()


def run_fuzzed(
    coro: Coroutine[Any, Any, _T], seed: int, debug: bool = False
) -> _T:
    """``asyncio.run`` on a :class:`FuzzedEventLoop` with ``seed``."""

    loop = FuzzedEventLoop(seed)
    try:
        loop.set_debug(debug)
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coro)
    finally:
        asyncio.set_event_loop(None)
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


__all__ = [
    "DeadlockError",
    "FuzzLock",
    "FuzzQueue",
    "FuzzedEventLoop",
    "ScheduleFuzzer",
    "run_fuzzed",
]
