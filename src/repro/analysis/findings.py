"""The finding record every lint rule emits.

A :class:`Finding` is one diagnosed violation: which rule, where
(``path:line:col``), what is wrong, and — when the rule knows one — the
concrete fix hint.  Findings are value objects ordered by location so
reports are stable regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def as_dict(self) -> dict[str, object]:
        """The JSON-output shape (see ``repro-lint --format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """The human-readable one-per-line report form."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


__all__ = ["Finding"]
