"""Rule ``unused-symbol`` — dead imports, dead locals, dead statements.

Three local checks, all purely syntactic (no type inference, no
cross-module analysis — a name is "used" if it is ever read anywhere in
the module):

* an imported name never read and not re-exported via ``__all__``;
* a function-local name assigned by a plain assignment but never read
  (underscore-prefixed names are conventionally intentional and
  skipped, as are functions that call ``locals()``/``eval``/``exec``);
* statements following an unconditional ``return``/``raise``/``break``/
  ``continue`` in the same block.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.rules._common import assigned_names

_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)
_DYNAMIC_SCOPE_CALLS = frozenset({"locals", "vars", "eval", "exec", "globals"})


def _read_names(tree: ast.AST) -> set[str]:
    """Every name read (Load context) anywhere under ``tree``, plus the
    strings of ``__all__`` (re-export counts as a read)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            names.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
        ):
            for child in ast.walk(node.value):
                if isinstance(child, ast.Constant) and isinstance(
                    child.value, str
                ):
                    names.add(child.value)
    return names


def _statement_blocks(tree: ast.AST) -> Iterator[list[ast.stmt]]:
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                yield block


def _calls_dynamic_scope(func: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _DYNAMIC_SCOPE_CALLS
        for node in ast.walk(func)
    )


@register
class UnusedSymbolRule(Rule):
    id = "unused-symbol"
    description = "unused import/local, or unreachable statement"
    hint = "delete the dead code (or prefix an intentionally unused name with '_')"
    example_bad = """\
import json                    # never used

def total(items):
    return sum(items)
    log("done")                # unreachable
"""
    example_good = """\
def total(items):
    return sum(items)
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        findings.extend(self._unused_imports(module))
        findings.extend(self._unused_locals(module))
        findings.extend(self._unreachable(module))
        return findings

    def _unused_imports(self, module: SourceModule) -> Iterator[Finding]:
        used = _read_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if bound not in used:
                        yield self.finding(
                            module,
                            node,
                            f"import '{alias.asname or alias.name}' is never used",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    if bound not in used:
                        yield self.finding(
                            module,
                            node,
                            f"import '{bound}' from "
                            f"'{node.module or '.'}' is never used",
                        )

    def _unused_locals(self, module: SourceModule) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _calls_dynamic_scope(func):
                continue
            read = _read_names(func)
            declared_elsewhere: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    declared_elsewhere.update(node.names)
            reported: set[str] = set()
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    for name in assigned_names(target):
                        if (
                            name.id.startswith("_")
                            or name.id in read
                            or name.id in declared_elsewhere
                            or name.id in reported
                        ):
                            continue
                        reported.add(name.id)
                        yield self.finding(
                            module,
                            node,
                            f"local '{name.id}' in {func.name}() is assigned "
                            "but never read",
                        )

    def _unreachable(self, module: SourceModule) -> Iterator[Finding]:
        for block in _statement_blocks(module.tree):
            for index, statement in enumerate(block[:-1]):
                if isinstance(statement, _TERMINATORS):
                    yield self.finding(
                        module,
                        block[index + 1],
                        "statement is unreachable (follows "
                        f"'{type(statement).__name__.lower()}')",
                    )
                    break


__all__ = ["UnusedSymbolRule"]
