"""Rule ``int64-overflow`` — no unguarded arithmetic into ``array('q')``.

The kernel stores run-count tables as ``array('q')`` rows for memory
density, but witness counts grow exponentially with word length and
*will* exceed ``2**63 - 1`` on real inputs.  The project convention
(see ``_pack_counts`` in ``core/kernel.py``) is: accumulate counts in a
plain Python list (arbitrary precision), then pack the finished row,
spilling to a list when any entry exceeds the int64 range.

Writing an arithmetic result directly into an ``array('q')`` element
bypasses that guard — ``array`` raises ``OverflowError`` at best and on
some platforms silently wraps.  Within the configured modules the rule
flags, for any name bound from ``array('q', ...)`` in the same scope:

* ``row[i] += expr`` / ``row[i] = a + b`` (any arithmetic result);
* ``row.append(a * b)``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.rules._common import assigned_names

#: Basenames of the modules that own packed count rows.
MODULE_NAMES = frozenset({"kernel.py", "snapshot.py"})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.LShift)


def _is_q_array_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "array":
        return False
    return bool(
        node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "q"
    )


def _has_arithmetic(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.BinOp) and isinstance(child.op, _ARITH_OPS)
        for child in ast.walk(node)
    )


def _scopes(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested functions are their own scope (yielded by _scopes)
        for child in ast.iter_child_nodes(node):
            stack.append(child)


@register
class Int64OverflowRule(Rule):
    id = "int64-overflow"
    description = "arithmetic written into array('q') without the bignum-spill guard"
    hint = (
        "accumulate counts in a plain list and pack the finished row with "
        "_pack_counts (spills past 2**63-1)"
    )
    example_bad = """\
row = array("q", [0]) * width
row[j] = row[j] + count        # silently wraps past 2**63-1
"""
    example_good = """\
counts = [0] * width           # Python ints are arbitrary precision
counts[j] += count
row = _pack_counts(counts)     # spills to bignum storage when needed
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.name not in MODULE_NAMES:
            return ()
        findings: list[Finding] = []
        for body in _scopes(module.tree):
            findings.extend(self._check_scope(module, body))
        return findings

    def _check_scope(
        self, module: SourceModule, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        tracked: set[str] = set()
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign) and _is_q_array_call(node.value):
                for name in assigned_names(node.targets[0]):
                    tracked.add(name.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_q_array_call(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    tracked.add(node.target.id)
        if not tracked:
            return
        for node in _walk_scope(body):
            if isinstance(node, ast.AugAssign):
                target = node.target
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in tracked
                ):
                    yield self.finding(
                        module,
                        node,
                        f"in-place arithmetic into array('q') row "
                        f"'{target.value.id}' can overflow int64",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in tracked
                        and _has_arithmetic(node.value)
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"arithmetic result stored into array('q') row "
                            f"'{target.value.id}' can overflow int64",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "append"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in tracked
                    and any(_has_arithmetic(arg) for arg in node.args)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"arithmetic result appended to array('q') row "
                        f"'{func.value.id}' can overflow int64",
                    )


__all__ = ["Int64OverflowRule", "MODULE_NAMES"]
