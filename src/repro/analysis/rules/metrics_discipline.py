"""Rule ``metrics-discipline`` — telemetry stays cheap and greppable.

The observability layer (:mod:`repro.obs`) has two conventions this
rule enforces outside the obs package itself:

* **Named series only** — every ``.counter(...)`` / ``.gauge(...)`` /
  ``.histogram(...)`` record site names its series with a constant from
  :mod:`repro.obs.names`, never an inline string literal.  One
  vocabulary module means one grep finds every emitter of a series, and
  a renamed metric cannot silently fork into two spellings.
* **Slow-log writes stay off the event loop** — the slow-query log is a
  synchronous file append; calling ``.record()`` (or ``.write()`` /
  ``.maybe_record()``) on a slow-log object directly inside ``async
  def`` blocks the loop.  Route it through ``loop.run_in_executor(None,
  log.record, event)`` — a method *reference*, not a call, which this
  rule therefore never flags.

The obs package is exempt: the registry's own plumbing and the names
vocabulary necessarily spell out strings.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.async_blocking import (
    _async_bodies,
    _own_statements,
    _receiver_tail,
)

#: Registry factory methods whose first argument is a series name.
METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: Slow-log methods that append to a file synchronously.
LOG_WRITE_METHODS = frozenset({"record", "maybe_record", "write"})


def _is_obs_module(module: SourceModule) -> bool:
    return "repro/obs/" in module.posix()


@register
class MetricsDisciplineRule(Rule):
    id = "metrics-discipline"
    description = (
        "metric names come from repro.obs.names; "
        "slow-log writes stay off the event loop"
    )
    hint = "name the series with a repro.obs.names constant"
    example_bad = """\
obs.metrics().counter("server.requests").inc()   # inline literal
"""
    example_good = """\
from repro.obs import names as metric_names

obs.metrics().counter(metric_names.SERVER_REQUESTS).inc()
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if _is_obs_module(module):
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in METRIC_FACTORIES and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"inline metric name {first.value!r} passed to "
                            f".{func.attr}()",
                        )
                    )
        for async_func in _async_bodies(module.tree):
            for node in _own_statements(async_func):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in LOG_WRITE_METHODS:
                    continue
                receiver = _receiver_tail(func)
                if "slow" in receiver or receiver.endswith("log"):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"synchronous slow-log .{func.attr}() inside "
                            f"'async def {async_func.name}'",
                            hint=(
                                "file appends block the loop; pass the bound "
                                "method to loop.run_in_executor(None, "
                                "log.record, event)"
                            ),
                        )
                    )
        return findings


__all__ = [
    "LOG_WRITE_METHODS",
    "METRIC_FACTORIES",
    "MetricsDisciplineRule",
]
