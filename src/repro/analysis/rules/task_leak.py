"""Rule ``task-leak`` — fire-and-forget tasks lose their exceptions.

``asyncio.create_task`` / ``ensure_future`` return a handle the caller
is responsible for.  Dropping it has two failure modes: the event loop
holds only a *weak* reference, so an un-retained task can be garbage
collected mid-flight; and an exception inside it is reported only as a
"Task exception was never retrieved" log line long after the fact —
the natural backpressure (``await``) and the natural error path
(awaiting or a done-callback) both vanish.

Flagged, per function scope:

* a bare expression statement ``create_task(...)`` whose result is
  discarded outright;
* ``handle = create_task(...)`` where ``handle`` is never read again
  in the scope — assignment as decoration, not retention.

Accepted shapes: awaiting the handle, storing it on ``self``/a
container, passing it onward, or chaining
``.add_done_callback(...)`` directly on the call.  ``TaskGroup``
receivers (``tg.create_task(...)``) are exempt — the group itself
retains and joins its tasks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.rules._common import dotted_name

#: Call tails that create a task whose handle must be retained.
TASK_FACTORIES = frozenset({"create_task", "ensure_future"})

#: Receiver names that retain their tasks themselves.
_GROUP_RECEIVERS = frozenset({"tg", "task_group", "group"})


def _factory_call(node: ast.AST) -> ast.Call | None:
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    parts = name.split(".")
    if parts[-1] not in TASK_FACTORIES:
        return None
    if len(parts) > 1 and parts[-2] in _GROUP_RECEIVERS:
        return None
    return node


def _scopes(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""

    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _loaded_names(scope: ast.AST) -> set[str]:
    return {
        node.id
        for node in _own_nodes(scope)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


@register
class TaskLeakRule(Rule):
    id = "task-leak"
    description = (
        "create_task/ensure_future handle dropped: the task can be "
        "garbage-collected mid-flight and its exceptions vanish"
    )
    hint = (
        "retain the handle (await/cancel it, store it on self or in a "
        "collection) or chain .add_done_callback(...)"
    )
    example_bad = (
        "import asyncio\n"
        "\n"
        "async def serve() -> None:\n"
        "    asyncio.create_task(flush())  # handle dropped\n"
    )
    example_good = (
        "import asyncio\n"
        "\n"
        "async def serve() -> None:\n"
        "    task = asyncio.create_task(flush())\n"
        "    await task\n"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for scope in _scopes(module.tree):
            loaded = _loaded_names(scope)
            for node in _own_nodes(scope):
                if isinstance(node, ast.Expr):
                    call = _factory_call(node.value)
                    if call is not None:
                        findings.append(
                            self.finding(
                                module,
                                call,
                                "task handle discarded at creation",
                            )
                        )
                elif isinstance(node, ast.Assign):
                    call = _factory_call(node.value)
                    if call is None or len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    if not isinstance(target, ast.Name):
                        continue  # self.x / container targets retain
                    if target.id not in loaded:
                        findings.append(
                            self.finding(
                                module,
                                call,
                                f"task assigned to {target.id!r} but the "
                                "handle is never used afterwards",
                            )
                        )
        return findings


__all__ = ["TASK_FACTORIES", "TaskLeakRule"]
