"""Rules ``bare-except`` and ``swallowed-cancel``.

``bare-except`` — a bare ``except:`` catches ``SystemExit``,
``KeyboardInterrupt`` and ``asyncio.CancelledError`` alike, which in
the server means a cancelled task can be resurrected as "handled".
Catch a concrete exception type, or ``Exception`` when the intent is
"any application error".

``swallowed-cancel`` — a handler that catches ``CancelledError`` (or
``BaseException``, which includes it) must re-raise: cancellation is a
control-flow signal, and swallowing it leaves ``await task`` hanging
forever from the canceller's point of view.  A handler body containing
a ``raise`` is accepted (the common log-and-reraise shape).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.rules._common import dotted_name

_CANCEL_NAMES = frozenset(
    {"CancelledError", "asyncio.CancelledError", "BaseException"}
)


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        name = dotted_name(expr)
        if name is not None:
            names.append(name)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class BareExceptRule(Rule):
    id = "bare-except"
    description = "bare 'except:' (catches SystemExit/KeyboardInterrupt/CancelledError)"
    hint = "catch a concrete exception type, or 'except Exception' at worst"
    example_bad = """\
try:
    serve()
except:                      # also catches KeyboardInterrupt
    log("failed")
"""
    example_good = """\
try:
    serve()
except OSError as error:
    log(f"failed: {error}")
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return [
            self.finding(module, node, "bare 'except:' clause")
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None
        ]


@register
class SwallowedCancelRule(Rule):
    id = "swallowed-cancel"
    description = "except handler swallows CancelledError/BaseException"
    hint = "re-raise after cleanup: cancellation is control flow, not an error"
    example_bad = """\
async def drain():
    try:
        await pump()
    except BaseException:
        pass                 # cancellation silently vanishes
"""
    example_good = """\
async def drain():
    try:
        await pump()
    except asyncio.CancelledError:
        await flush()
        raise                # cancellation is control flow
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = [
                name for name in _caught_names(node) if name in _CANCEL_NAMES
            ]
            if caught and not _reraises(node):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"handler catches {caught[0]} without re-raising",
                    )
                )
        return findings


__all__ = ["BareExceptRule", "SwallowedCancelRule"]
