"""Built-in project rules for ``repro-lint``.

Importing this package registers every rule with the engine registry
(:func:`repro.analysis.engine.default_rules` does that import).  Each
module holds one invariant family:

* :mod:`~repro.analysis.rules.accel_isolation` — ``numpy`` stays inside
  the optional accelerated backend (``core/accel.py``);
* :mod:`~repro.analysis.rules.async_blocking` — nothing blocking on the
  asyncio event loop;
* :mod:`~repro.analysis.rules.determinism` — no nondeterminism sources
  in modules whose outputs are part of the reproducibility contract;
* :mod:`~repro.analysis.rules.overflow` — ``array('q')`` arithmetic
  must route through the bignum-spill helpers;
* :mod:`~repro.analysis.rules.metrics_discipline` — metric series are
  named by :mod:`repro.obs.names` constants and slow-log writes stay
  off the event loop;
* :mod:`~repro.analysis.rules.protocol_ops` — the service op registry,
  server, client and CLI agree on the wire vocabulary;
* :mod:`~repro.analysis.rules.exceptions` — no bare ``except``, no
  swallowed ``CancelledError``;
* :mod:`~repro.analysis.rules.exports` — ``__all__`` is present where
  required, complete, and only names real bindings;
* :mod:`~repro.analysis.rules.unused` — unused imports/locals and
  unreachable statements;
* :mod:`~repro.analysis.rules.guarded_by` — declared-ownership
  discipline for shared attributes (``# guarded-by:`` /
  ``# owned-by:``) and no ``await`` under a sync lock;
* :mod:`~repro.analysis.rules.lock_order` — a single global lock
  acquisition order (cycle detection over the acquisition graph);
* :mod:`~repro.analysis.rules.task_leak` — no fire-and-forget
  ``create_task`` whose handle (and exceptions) vanish.
"""

from __future__ import annotations

from repro.analysis.rules.accel_isolation import AccelIsolationRule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.determinism import NondeterminismRule
from repro.analysis.rules.exceptions import BareExceptRule, SwallowedCancelRule
from repro.analysis.rules.exports import ExportConsistencyRule
from repro.analysis.rules.guarded_by import (
    AwaitInCriticalSectionRule,
    GuardedByRule,
)
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.metrics_discipline import MetricsDisciplineRule
from repro.analysis.rules.overflow import Int64OverflowRule
from repro.analysis.rules.protocol_ops import ProtocolExhaustiveRule
from repro.analysis.rules.task_leak import TaskLeakRule
from repro.analysis.rules.unused import UnusedSymbolRule

__all__ = [
    "AccelIsolationRule",
    "AsyncBlockingRule",
    "AwaitInCriticalSectionRule",
    "BareExceptRule",
    "ExportConsistencyRule",
    "GuardedByRule",
    "Int64OverflowRule",
    "LockOrderRule",
    "MetricsDisciplineRule",
    "NondeterminismRule",
    "ProtocolExhaustiveRule",
    "SwallowedCancelRule",
    "TaskLeakRule",
    "UnusedSymbolRule",
]
