"""Rule ``protocol-exhaustive`` — the wire vocabulary agrees everywhere.

The service speaks NDJSON requests tagged with an ``op``.  The full
vocabulary is declared once, in ``service/protocol.py``::

    SERVICE_OPS     every op a client may send
    CONTROL_OPS     ops answered by the engine control path (ping/stats/…)
    SAMPLE_OPS      the sampling ops (shared spec grouping)
    CONNECTION_OPS  ops handled purely at the connection layer (cancel)

This project rule cross-checks the declaration against every layer that
dispatches on op strings:

* every registered executable op has a handler — an ``op == "…"`` /
  ``op in SOME_OPS`` branch in ``_execute_one`` or the engine's control
  path;
* every op literal dispatched or emitted anywhere in the service stack
  (server, client, engine, protocol) is registered — no phantom ops;
* the connection-layer ops are actually handled by the async server;
* the CLI ``query`` subcommand offers every client-sendable op (the
  ``enum`` → ``enumerate`` spelling alias is allowed), and offers
  nothing unregistered.

When a layer's module is not among the linted files its checks are
skipped, so linting a subtree stays meaningful.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding

#: CLI spellings accepted as aliases for a registered op.
OP_ALIASES = {"enum": "enumerate"}

_REGISTRY_NAMES = ("SERVICE_OPS", "CONTROL_OPS", "SAMPLE_OPS", "CONNECTION_OPS")


def _frozenset_literals(tree: ast.Module) -> dict[str, frozenset[str]]:
    """Top-level ``NAME = frozenset({...})`` string-set assignments."""
    sets: dict[str, frozenset[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        value = node.value
        if not isinstance(target, ast.Name):
            continue
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
        ):
            continue
        strings: list[str] = []
        literal = True
        for arg in value.args:
            elements = arg.elts if isinstance(arg, (ast.Set, ast.List, ast.Tuple)) else []
            for element in elements:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    strings.append(element.value)
                elif isinstance(element, ast.Name) or isinstance(
                    element, ast.Starred
                ):
                    literal = False
        # ``frozenset(A | B)`` style: union of other registries.
        if value.args and isinstance(value.args[0], ast.BinOp):
            names = [
                child.id
                for child in ast.walk(value.args[0])
                if isinstance(child, ast.Name)
            ]
            combined: set[str] = set(
                child.value
                for child in ast.walk(value.args[0])
                if isinstance(child, ast.Constant) and isinstance(child.value, str)
            )
            for name in names:
                combined.update(sets.get(name, frozenset()))
            strings = sorted(combined)
            literal = True
        if literal:
            sets[target.id] = frozenset(strings)
    return sets


def _is_op_expr(node: ast.AST) -> bool:
    """Does this expression read the request's op?  (``op`` name or
    ``something.get("op")`` / ``something["op"]``.)"""
    if isinstance(node, ast.Name) and node.id == "op":
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "op"
    ):
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == "op"
    ):
        return True
    return False


def _dispatched_ops(
    tree: ast.AST, registries: dict[str, frozenset[str]]
) -> tuple[set[str], set[str]]:
    """(op literals dispatched on or emitted, registry names referenced).

    Covers ``op == "x"`` comparisons, ``op in SOME_OPS`` / ``op in
    ("x", "y")`` membership, and ``{"op": "x"}`` request construction.
    """
    literals: set[str] = set()
    referenced: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            if not any(_is_op_expr(side) for side in sides):
                continue
            for operator, comparator in zip(node.ops, node.comparators):
                if isinstance(operator, (ast.Eq, ast.NotEq)) and isinstance(
                    comparator, ast.Constant
                ):
                    if isinstance(comparator.value, str):
                        literals.add(comparator.value)
                elif isinstance(operator, (ast.In, ast.NotIn)):
                    if isinstance(comparator, ast.Name):
                        if comparator.id in registries:
                            referenced.add(comparator.id)
                    elif isinstance(comparator, (ast.Tuple, ast.Set, ast.List)):
                        literals.update(
                            e.value
                            for e in comparator.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                        )
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "op"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    literals.add(value.value)
    return literals, referenced


def _find(modules: Sequence[SourceModule], suffix: str) -> SourceModule | None:
    for module in modules:
        if module.posix().endswith(suffix):
            return module
    return None


def _function(tree: ast.Module, name: str) -> ast.AST | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def _cli_query_choices(tree: ast.Module) -> tuple[ast.AST | None, set[str]]:
    """The ``choices=[...]`` of the CLI's ``op`` positional argument."""
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "op"
        ):
            continue
        for keyword in node.keywords:
            if keyword.arg == "choices" and isinstance(
                keyword.value, (ast.List, ast.Tuple)
            ):
                return node, {
                    e.value
                    for e in keyword.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                }
    return None, set()


@register
class ProtocolExhaustiveRule(Rule):
    id = "protocol-exhaustive"
    description = (
        "a registered service op lacks a handler/CLI path, or a layer "
        "dispatches an unregistered op"
    )
    hint = "keep SERVICE_OPS in service/protocol.py and the dispatch layers in sync"
    example_bad = """\
# service/protocol.py
SERVICE_OPS = frozenset({"count", "sample"})

# service/server.py dispatches an op the protocol never registered
if op == "histogram":
    ...
"""
    example_good = """\
# service/protocol.py
SERVICE_OPS = frozenset({"count", "sample", "histogram"})

# service/server.py
if op == "histogram":          # registered, handled, and testable
    ...
"""

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        protocol = _find(modules, "service/protocol.py")
        if protocol is None:
            return ()
        findings: list[Finding] = []
        registries = _frozenset_literals(protocol.tree)
        service_ops = registries.get("SERVICE_OPS")
        if service_ops is None:
            findings.append(
                self.finding(
                    protocol,
                    None,
                    "service/protocol.py declares no SERVICE_OPS registry",
                    hint="declare SERVICE_OPS = frozenset({...}) listing every "
                    "wire op",
                )
            )
            return findings
        control_ops = registries.get("CONTROL_OPS", frozenset())
        connection_ops = registries.get("CONNECTION_OPS", frozenset())

        # --- executor coverage -----------------------------------------
        handled: set[str] = set()
        executor = _function(protocol.tree, "_execute_one")
        if executor is not None:
            literals, referenced = _dispatched_ops(executor, registries)
            handled.update(literals)
            for name in referenced:
                handled.update(registries[name])
        engine = _find(modules, "service/engine.py")
        if engine is not None:
            literals, referenced = _dispatched_ops(engine.tree, registries)
            if "CONTROL_OPS" in referenced:
                handled.update(control_ops)
            handled.update(literals & control_ops)
        else:
            # Engine not linted: assume its control path handles these.
            handled.update(control_ops)
        for op in sorted(service_ops - connection_ops - handled):
            findings.append(
                self.finding(
                    protocol,
                    None,
                    f"registered op {op!r} has no handler in _execute_one or "
                    "the engine control path",
                )
            )

        # --- phantom ops anywhere in the service stack ------------------
        known = service_ops | set(OP_ALIASES)
        for suffix in (
            "service/protocol.py",
            "service/server.py",
            "service/client.py",
            "service/engine.py",
        ):
            module = _find(modules, suffix)
            if module is None:
                continue
            literals, _ = _dispatched_ops(module.tree, registries)
            for op in sorted(literals - known):
                findings.append(
                    self.finding(
                        module,
                        None,
                        f"dispatches/emits op {op!r} which is not in "
                        "SERVICE_OPS",
                    )
                )

        # --- connection-layer coverage ----------------------------------
        server = _find(modules, "service/server.py")
        if server is not None and connection_ops:
            literals, _ = _dispatched_ops(server.tree, registries)
            for op in sorted(connection_ops - literals):
                findings.append(
                    self.finding(
                        server,
                        None,
                        f"connection-layer op {op!r} is not handled by the "
                        "async server",
                    )
                )

        # --- client coverage --------------------------------------------
        client = _find(modules, "service/client.py")
        if client is not None:
            has_generic = any(
                _function(client.tree, name) is not None
                for name in ("request", "send")
            )
            literals, _ = _dispatched_ops(client.tree, registries)
            missing = (
                (connection_ops - literals)
                if has_generic
                else (service_ops - literals)
            )
            for op in sorted(missing):
                findings.append(
                    self.finding(
                        client,
                        None,
                        f"client offers no path for op {op!r}",
                        hint="add a method (or route it through the generic "
                        "request() passthrough)",
                    )
                )

        # --- CLI coverage -----------------------------------------------
        cli = None
        for module in modules:
            posix = module.posix()
            if posix.endswith("repro/cli.py") or posix == "cli.py":
                cli = module
                break
        if cli is not None:
            node, choices = _cli_query_choices(cli.tree)
            if node is None:
                findings.append(
                    self.finding(
                        cli,
                        None,
                        "CLI declares no 'op' argument with choices for the "
                        "query subcommand",
                    )
                )
            else:
                normalized = {OP_ALIASES.get(op, op) for op in choices}
                for op in sorted(service_ops - connection_ops - normalized):
                    findings.append(
                        self.finding(
                            cli,
                            node,
                            f"registered op {op!r} is not offered by the CLI "
                            "query subcommand",
                        )
                    )
                for op in sorted(normalized - service_ops):
                    findings.append(
                        self.finding(
                            cli,
                            node,
                            f"CLI offers op {op!r} which is not in SERVICE_OPS",
                        )
                    )
        return findings


__all__ = ["OP_ALIASES", "ProtocolExhaustiveRule"]
