"""Rule ``async-blocking`` — no blocking work on the asyncio event loop.

The witness server (PR 5) runs a single event loop whose batching pump
must stay responsive; one synchronous disk read or ``time.sleep`` stalls
every connected client.  The project convention is that anything
blocking inside ``async def`` goes through ``asyncio.to_thread`` /
``loop.run_in_executor`` (that is exactly how the server calls the
multiprocess engine).

Flagged inside ``async def`` bodies (nested *sync* ``def``/``lambda``
bodies are exempt — those run wherever they are called):

* known-blocking stdlib calls — ``time.sleep``, ``subprocess.*``,
  ``os.system`` and friends, ``socket.create_connection``,
  ``urllib.request.urlopen``;
* synchronous file/console I/O — ``open(...)``, ``print(...)``,
  ``input(...)``, ``Path.read_text``-style methods;
* synchronous socket methods — ``.recv`` / ``.sendall`` / ``.accept``;
* project blocking surfaces — ``KernelStore`` access (``*store.get`` /
  ``put`` / ``entries`` …, disk I/O) and direct ``Engine`` calls
  (``*engine.execute`` / ``stats`` / ``close``, multiprocess queue
  waits).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.rules._common import dotted_name

#: Fully dotted calls that always block.
BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "use 'await asyncio.sleep(...)' instead",
    "os.system": "run subprocesses via asyncio.create_subprocess_exec",
    "os.popen": "run subprocesses via asyncio.create_subprocess_exec",
    "os.wait": "await an asyncio subprocess instead",
    "os.waitpid": "await an asyncio subprocess instead",
    "subprocess.run": "use asyncio.create_subprocess_exec, or wrap in asyncio.to_thread",
    "subprocess.call": "use asyncio.create_subprocess_exec, or wrap in asyncio.to_thread",
    "subprocess.check_call": "use asyncio.create_subprocess_exec, or wrap in asyncio.to_thread",
    "subprocess.check_output": "use asyncio.create_subprocess_exec, or wrap in asyncio.to_thread",
    "subprocess.Popen": "use asyncio.create_subprocess_exec",
    "socket.create_connection": "use asyncio.open_connection",
    "urllib.request.urlopen": "wrap the request in asyncio.to_thread",
}

#: Bare built-in calls that hit the filesystem or the console.
BLOCKING_BUILTINS: dict[str, str] = {
    "open": "wrap file I/O in asyncio.to_thread / run_in_executor",
    "input": "reading stdin blocks the loop; use a reader thread",
    "print": (
        "a console write can block on a slow pipe; route it through "
        "loop.run_in_executor (or queue it to a writer thread)"
    ),
}

#: Method names that are synchronous file I/O wherever they appear.
FILE_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Synchronous socket methods.
SOCKET_METHODS = frozenset({"recv", "recv_into", "sendall", "accept", "connect"})

#: ``KernelStore`` methods that hit the disk; flagged when the receiver
#: looks like a store (its name ends with ``store``).
STORE_METHODS = frozenset(
    {"get", "put", "get_meta", "put_meta", "entries", "total_bytes", "clear"}
)

#: ``Engine`` methods that wait on multiprocess queues; flagged when the
#: receiver looks like an engine.
ENGINE_METHODS = frozenset({"execute", "stats", "close"})


def _receiver_tail(node: ast.Attribute) -> str:
    """Lower-cased last name component of a method call's receiver."""
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr.lower()
    if isinstance(value, ast.Name):
        return value.id.lower()
    return ""


def _async_bodies(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _own_statements(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested *sync*
    functions/lambdas (their bodies run off-loop or via executors)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue  # a nested sync scope: nothing under it runs on-loop
        for child in ast.iter_child_nodes(node):
            stack.append(child)


@register
class AsyncBlockingRule(Rule):
    id = "async-blocking"
    description = "blocking call inside 'async def' (event-loop stall)"
    hint = "move the blocking work to asyncio.to_thread / loop.run_in_executor"
    example_bad = """\
async def handler(request):
    time.sleep(0.1)          # stalls every connection on the loop
    return respond(request)
"""
    example_good = """\
async def handler(request):
    await asyncio.sleep(0.1)
    return respond(request)
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for func in _async_bodies(module.tree):
            for node in _own_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                findings.extend(self._check_call(module, func, node))
        return findings

    def _check_call(
        self, module: SourceModule, func: ast.AsyncFunctionDef, call: ast.Call
    ) -> Iterator[Finding]:
        name = dotted_name(call.func)
        if name is not None and name in BLOCKING_CALLS:
            yield self.finding(
                module,
                call,
                f"blocking call {name}() inside 'async def {func.name}'",
                hint=BLOCKING_CALLS[name],
            )
            return
        if isinstance(call.func, ast.Name) and call.func.id in BLOCKING_BUILTINS:
            yield self.finding(
                module,
                call,
                f"synchronous {call.func.id}() inside 'async def {func.name}'",
                hint=BLOCKING_BUILTINS[call.func.id],
            )
            return
        if not isinstance(call.func, ast.Attribute):
            return
        attr = call.func.attr
        receiver = _receiver_tail(call.func)
        if attr in FILE_METHODS:
            yield self.finding(
                module,
                call,
                f"synchronous file I/O .{attr}() inside 'async def {func.name}'",
            )
        elif attr in SOCKET_METHODS and (
            "sock" in receiver or "conn" in receiver or receiver == "client"
        ):
            yield self.finding(
                module,
                call,
                f"synchronous socket .{attr}() inside 'async def {func.name}'",
                hint="use the asyncio stream reader/writer instead",
            )
        elif attr in STORE_METHODS and receiver.endswith("store"):
            yield self.finding(
                module,
                call,
                f"KernelStore disk I/O .{attr}() inside 'async def {func.name}'",
                hint=(
                    "store reads/writes hit the filesystem; call them via "
                    "loop.run_in_executor like the engine calls"
                ),
            )
        elif attr in ENGINE_METHODS and receiver.endswith("engine"):
            yield self.finding(
                module,
                call,
                f"Engine .{attr}() inside 'async def {func.name}' blocks on "
                "multiprocess queues",
                hint="dispatch engine work via loop.run_in_executor",
            )


__all__ = [
    "AsyncBlockingRule",
    "BLOCKING_BUILTINS",
    "BLOCKING_CALLS",
    "ENGINE_METHODS",
    "FILE_METHODS",
    "SOCKET_METHODS",
    "STORE_METHODS",
]
