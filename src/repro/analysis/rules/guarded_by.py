"""Rules ``guarded-by`` and ``await-in-critical-section``.

``guarded-by`` enforces the declared-ownership model from
:mod:`repro.analysis.guards` across the whole project:

* an attribute declared ``# guarded-by: <lock>`` must be accessed with
  ``self.<lock>`` held — either lexically (``with self.<lock>:``) or
  guaranteed by every caller (the held-at-entry fixpoint from
  :mod:`repro.analysis.project`);
* an attribute declared ``# owned-by: <domain>`` must only be touched
  by functions whose inferred concurrency domains stay inside that
  domain (see :mod:`repro.analysis.domains`);
* inside the serving surface (``repro/service/``, ``repro/obs/``), an
  *undeclared* attribute mutated from two or more shared-memory domains
  is itself a finding — shared mutable state must state its discipline.

Construction is exempt throughout: ``__init__`` (and friends) run
before the object escapes to other domains.

``await-in-critical-section`` flags an ``await`` executed while a
*synchronous* lock is held: the coroutine suspends, the loop runs other
tasks, and any of them blocking on that lock deadlocks the loop thread.
``async with`` on an ``asyncio.Lock`` is the sanctioned shape and is
not flagged.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis.domains import SHARED_MEMORY_DOMAINS, infer_domains
from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.guards import GUARDED_BY, GuardDecl, collect_declarations
from repro.analysis.project import (
    AttrAccess,
    FunctionInfo,
    LockToken,
    ProjectIndex,
    project_index,
)

#: Posix path fragments of the modules where *undeclared* multi-domain
#: mutations are reported (the serving + observability surface).
DECLARATION_SURFACE = ("repro/service/", "repro/obs/")


def _on_surface(module: SourceModule) -> bool:
    posix = module.posix()
    return any(fragment in posix for fragment in DECLARATION_SURFACE)


def _held_names(
    access: AttrAccess, entry_locks: frozenset[LockToken]
) -> set[str]:
    names = {token.name for token in access.held}
    names.update(token.name for token in entry_locks)
    return names


@register
class GuardedByRule(Rule):
    id = "guarded-by"
    description = (
        "shared attributes declare their lock/domain and every access "
        "honours the declaration"
    )
    hint = (
        "hold the declared lock ('with self.<lock>:') at every access, "
        "or declare the attribute's discipline with '# guarded-by: "
        "<lock>' / '# owned-by: <domain>'"
    )
    example_bad = (
        "import threading\n"
        "\n"
        "class Tally:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0  # guarded-by: _lock\n"
        "\n"
        "    def bump(self) -> None:\n"
        "        self.total += 1  # lock not held\n"
    )
    example_good = (
        "import threading\n"
        "\n"
        "class Tally:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0  # guarded-by: _lock\n"
        "\n"
        "    def bump(self) -> None:\n"
        "        with self._lock:\n"
        "            self.total += 1\n"
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        index = project_index(modules)
        declarations: dict[tuple[str, str, str], GuardDecl] = {}
        for module in modules:
            for decl in collect_declarations(module.text, module.tree):
                declarations[(module.posix(), decl.class_name, decl.attr)] = decl

        entry = index.held_at_entry()
        domains = infer_domains(index)
        findings: list[Finding] = []

        for qualname, info in index.functions.items():
            if info.class_name is None or info.is_constructor:
                continue
            posix = info.module.posix()
            for access in info.accesses:
                decl = declarations.get((posix, info.class_name, access.attr))
                if decl is None:
                    continue
                if decl.kind == GUARDED_BY:
                    held = _held_names(access, entry.get(qualname, frozenset()))
                    if decl.target not in held:
                        findings.append(
                            self._at(
                                info,
                                access,
                                f"{info.class_name}.{access.attr} is "
                                f"guarded-by {decl.target!r} but accessed "
                                f"in {info.name}() without holding it",
                            )
                        )
                else:  # owned-by
                    runs_in = domains.get(qualname, frozenset())
                    foreign = (
                        runs_in & SHARED_MEMORY_DOMAINS
                    ) - {decl.target}
                    if foreign:
                        listed = ", ".join(sorted(foreign))
                        findings.append(
                            self._at(
                                info,
                                access,
                                f"{info.class_name}.{access.attr} is "
                                f"owned-by {decl.target!r} but {info.name}()"
                                f" may run in: {listed}",
                            )
                        )

        findings.extend(self._undeclared(index, declarations, domains))
        return findings

    def _undeclared(
        self,
        index: ProjectIndex,
        declarations: dict[tuple[str, str, str], GuardDecl],
        domains: dict[str, frozenset[str]],
    ) -> list[Finding]:
        """Undeclared attributes mutated from >= 2 shared-memory domains."""

        mutation_sites: dict[
            tuple[str, str, str], list[tuple[FunctionInfo, AttrAccess]]
        ] = {}
        for info in index.functions.values():
            if info.class_name is None or info.is_constructor:
                continue
            if not _on_surface(info.module):
                continue
            for access in info.accesses:
                if access.kind != "write":
                    continue
                key = (info.module.posix(), info.class_name, access.attr)
                if key in declarations:
                    continue
                mutation_sites.setdefault(key, []).append((info, access))

        findings: list[Finding] = []
        for key, sites in sorted(mutation_sites.items()):
            touched: set[str] = set()
            for info, _access in sites:
                touched |= domains.get(info.qualname, frozenset())
            shared = touched & SHARED_MEMORY_DOMAINS
            if len(shared) < 2:
                continue
            info, access = min(sites, key=lambda pair: pair[1].line)
            listed = ", ".join(sorted(shared))
            findings.append(
                self._at(
                    info,
                    access,
                    f"{key[1]}.{key[2]} is mutated from domains "
                    f"{{{listed}}} but declares no guarded-by/owned-by "
                    "discipline",
                )
            )
        return findings

    def _at(
        self, info: FunctionInfo, access: AttrAccess, message: str
    ) -> Finding:
        return Finding(
            path=info.module.rel_path,
            line=access.line,
            col=access.col,
            rule=self.id,
            message=message,
            hint=self.hint,
        )


@register
class AwaitInCriticalSectionRule(Rule):
    id = "await-in-critical-section"
    description = (
        "an 'await' suspends while a synchronous lock is held, "
        "deadlocking any task that blocks on it"
    )
    hint = (
        "release the lock before awaiting, or use asyncio.Lock with "
        "'async with'"
    )
    example_bad = (
        "import threading\n"
        "\n"
        "class Cache:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = threading.Lock()\n"
        "\n"
        "    async def refresh(self) -> None:\n"
        "        with self._lock:\n"
        "            self.data = await fetch()\n"
    )
    example_good = (
        "import asyncio\n"
        "\n"
        "class Cache:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = asyncio.Lock()\n"
        "\n"
        "    async def refresh(self) -> None:\n"
        "        async with self._lock:\n"
        "            self.data = await fetch()\n"
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        index = project_index(modules)
        findings: list[Finding] = []
        for info in index.functions.values():
            for await_site in info.awaits:
                if not await_site.sync_locks:
                    continue
                lock = await_site.sync_locks[-1]
                findings.append(
                    Finding(
                        path=info.module.rel_path,
                        line=await_site.line,
                        col=await_site.col,
                        rule=self.id,
                        message=(
                            f"'await' in {info.name}() while holding "
                            f"sync lock {lock.name!r}"
                        ),
                        hint=self.hint,
                    )
                )
        return findings


__all__ = [
    "AwaitInCriticalSectionRule",
    "DECLARATION_SURFACE",
    "GuardedByRule",
]
