"""Rule ``export-consistency`` — ``__all__`` is honest and complete.

Three checks:

* **presence** — modules in the designated public-API surface (the
  service package, the analysis package, and the core kernel/plan/
  enumeration trio) must define ``__all__`` at all, so ``from m import
  *`` and documentation tooling agree on the API;
* **soundness** — every name listed in ``__all__`` must actually be
  bound at module top level (modules providing a module-level
  ``__getattr__``, like the lazy service facade, are exempt — their
  names resolve dynamically);
* **completeness** — a public ``def``/``class``/ALL_CAPS constant
  defined (not merely imported) at top level of an API-surface module
  must appear in ``__all__``; otherwise star-importers and the docs see
  a different API than direct importers.

``__all__`` built as ``list(SOME_DICT)`` / ``sorted(SOME_DICT)`` over a
top-level dict literal is resolved through the dict's keys.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding

#: Posix path fragments selecting the public-API surface.
API_SURFACE = (
    "repro/service/",
    "repro/analysis/",
    "repro/core/kernel.py",
    "repro/core/plan.py",
    "repro/core/enumeration.py",
)

_CONSTANT_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module body, descending into top-level ``if``/``try`` blocks
    (``if TYPE_CHECKING:`` guards, import fallbacks)."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            for handler in node.handlers:
                stack.extend(handler.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)


def _resolve_all(
    tree: ast.Module,
) -> tuple[ast.stmt | None, list[str] | None]:
    """The ``__all__`` assignment and its names (None = dynamic)."""
    dict_keys: dict[str, list[str]] = {}
    for node in _top_level_statements(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Dict
                ):
                    keys = [
                        key.value
                        for key in node.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ]
                    dict_keys[target.id] = keys
    for node in _top_level_statements(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            names = [
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            return node, names
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"list", "sorted"}
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id in dict_keys
        ):
            return node, dict_keys[value.args[0].id]
        return node, None
    return None, None


def _top_level_bindings(tree: ast.Module) -> dict[str, ast.stmt]:
    """name → defining statement for every top-level binding."""
    bindings: dict[str, ast.stmt] = {}
    for node in _top_level_statements(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bindings.setdefault(node.name, node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _target_names(target):
                    bindings.setdefault(name, node)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bindings.setdefault(node.target.id, node)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings.setdefault(bound, node)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings.setdefault(alias.asname or alias.name, node)
    return bindings


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _in_api_surface(module: SourceModule) -> bool:
    posix = module.posix()
    return any(
        posix.endswith(fragment) or f"/{fragment}" in f"/{posix}"
        for fragment in API_SURFACE
    )


@register
class ExportConsistencyRule(Rule):
    id = "export-consistency"
    description = "__all__ missing, lists an unbound name, or omits a public symbol"
    hint = "keep __all__ in sync with the module's public definitions"
    example_bad = """\
def public_helper():
    ...

__all__ = ["missing_name"]   # unbound — and public_helper is omitted
"""
    example_good = """\
def public_helper():
    ...

__all__ = ["public_helper"]
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        all_node, all_names = _resolve_all(module.tree)
        in_surface = _in_api_surface(module)

        if all_node is None:
            if in_surface:
                findings.append(
                    self.finding(
                        module,
                        None,
                        "public-API module defines no __all__",
                        hint="declare the exported names explicitly",
                    )
                )
            return findings
        if all_names is None:
            # Dynamic __all__ we cannot resolve: nothing checkable.
            return findings

        bindings = _top_level_bindings(module.tree)
        has_getattr = "__getattr__" in bindings
        if not has_getattr:
            for name in all_names:
                if name not in bindings:
                    findings.append(
                        self.finding(
                            module,
                            all_node,
                            f"__all__ lists {name!r} but the module never "
                            "binds it",
                            hint="remove the stale entry or define the name",
                        )
                    )

        if in_surface:
            listed = set(all_names)
            for name, node in bindings.items():
                if name.startswith("_") or name in listed:
                    continue
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    continue
                is_def = isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                is_constant = (
                    isinstance(node, (ast.Assign, ast.AnnAssign))
                    and _CONSTANT_RE.match(name) is not None
                )
                if is_def or is_constant:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"public name {name!r} is not in __all__",
                            hint="add it to __all__ or rename it with a "
                            "leading underscore",
                        )
                    )
        return findings


__all__ = ["API_SURFACE", "ExportConsistencyRule"]
