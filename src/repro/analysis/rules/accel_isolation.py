"""Rule ``accel-isolation`` — ``numpy`` may only be imported in
``core/accel.py``.

The accelerated kernel backend (:mod:`repro.core.accel`) is strictly
optional: the pure-Python path is the canonical implementation, the one
the differential suite trusts and the one that must stay importable on
a NumPy-free interpreter.  That contract only holds if NumPy never
leaks into any other module — a stray ``import numpy`` elsewhere makes
the "pure" leg of every pure-vs-NumPy differential quietly depend on
the thing it is supposed to be independent of, and breaks minimal
installs.

Flagged: any ``import numpy`` / ``import numpy.x`` / ``from numpy
import ...`` outside ``core/accel.py`` (including inside functions —
lazy imports are how such a leak would most likely arrive).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding

#: The one module allowed to import numpy (posix path suffix).
ALLOWED_SUFFIX = "core/accel.py"


def _is_numpy(name: str | None) -> bool:
    return name is not None and (name == "numpy" or name.startswith("numpy."))


@register
class AccelIsolationRule(Rule):
    id = "accel-isolation"
    description = (
        "numpy is imported outside core/accel.py (the optional accelerated "
        "backend must stay isolated so the pure path remains canonical)"
    )
    hint = (
        "route numpy use through repro.core.accel; the pure path must be "
        "importable and authoritative without it"
    )
    example_bad = """\
# src/repro/core/dfa.py
import numpy as np

def step(vec, matrix):
    return np.matmul(vec, matrix)
"""
    example_good = """\
# src/repro/core/dfa.py
from repro.core import accel

def step(vec, matrix):
    return accel.matmul(vec, matrix)  # pure fallback lives inside accel
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.posix().endswith(ALLOWED_SUFFIX):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_numpy(alias.name):
                        yield self.finding(
                            module,
                            node,
                            f"import of {alias.name!r} outside {ALLOWED_SUFFIX}",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and _is_numpy(node.module):
                    yield self.finding(
                        module,
                        node,
                        f"from-import of {node.module!r} outside {ALLOWED_SUFFIX}",
                    )


__all__ = ["AccelIsolationRule", "ALLOWED_SUFFIX"]
