"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Call expressions inside the chain (``foo().bar``) break the chain —
    those are dynamic receivers the rules treat as unknown.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def string_constants(node: ast.AST) -> list[str]:
    """Every string literal anywhere under ``node``, in source order."""
    return [
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    ]


def assigned_names(target: ast.AST) -> list[ast.Name]:
    """The plain ``Name`` nodes bound by an assignment target."""
    if isinstance(target, ast.Name):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[ast.Name] = []
        for element in target.elts:
            names.extend(assigned_names(element))
        return names
    if isinstance(target, ast.Starred):
        return assigned_names(target.value)
    return []


__all__ = ["assigned_names", "dotted_name", "string_constants"]
