"""Rule ``nondeterminism`` — reproducibility-critical modules must not
consult ambient randomness or hash/identity order.

The engine (PR 4) promises byte-identical seeded samples across worker
counts, and the store keys kernels by content fingerprint.  Both break
silently if a module on that path draws from the process-global RNG,
keys anything by ``id()``, folds values through the salted builtin
``hash()``, or iterates a ``set`` in hash order into an output.

The rule only applies to the modules that carry the contract (see
``MODULE_NAMES``); elsewhere ambient randomness is someone's explicit
choice.  Flagged:

* module-level RNG — ``random.random()``, ``random.randint`` …, and an
  *unseeded* ``random.Random()``;
* other ambient entropy — ``os.urandom``, ``uuid.uuid4``, ``secrets.*``;
* ``id(...)`` — identity is allocation order, not value;
* builtin ``hash(...)`` — salted per process for str/bytes;
* iterating a ``set``/``frozenset`` display or constructor directly
  (``for x in {…}``, ``list(set(...))``) — wrap it in ``sorted()``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.rules._common import dotted_name

#: Basenames of the modules whose outputs are reproducibility-critical.
MODULE_NAMES = frozenset(
    {
        "fingerprint.py",
        "snapshot.py",
        "engine.py",
        "protocol.py",
        "store.py",
        "kernel.py",
        "rng.py",
    }
)

_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "seed",
    }
)

_ENTROPY_CALLS = frozenset(
    {"os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.token_bytes",
     "secrets.token_hex", "secrets.randbelow"}
)


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@register
class NondeterminismRule(Rule):
    id = "nondeterminism"
    description = (
        "ambient randomness / hash-order dependence in a "
        "reproducibility-critical module"
    )
    hint = "route randomness through repro.utils.rng; sort before iterating sets"
    example_bad = """\
# src/repro/core/kernel.py
import random

def sample_state(states):
    return random.choice(sorted(states))  # ambient, unseeded RNG
"""
    example_good = """\
# src/repro/core/kernel.py
def sample_state(states, rng):
    return rng.choice(sorted(states))     # caller-threaded seeded stream
"""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.name not in MODULE_NAMES:
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    findings.append(
                        self.finding(
                            module,
                            node.iter,
                            "iterating a set in hash order",
                            hint="iterate sorted(...) so the order is a pure "
                            "function of the values",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        findings.append(
                            self.finding(
                                module,
                                generator.iter,
                                "comprehension iterates a set in hash order",
                                hint="iterate sorted(...) so the order is a "
                                "pure function of the values",
                            )
                        )
        return findings

    def _check_call(
        self, module: SourceModule, call: ast.Call
    ) -> Iterable[Finding]:
        name = dotted_name(call.func)
        if name is not None:
            head, _, tail = name.partition(".")
            if head == "random" and tail in _RANDOM_FUNCS:
                return [
                    self.finding(
                        module,
                        call,
                        f"module-level RNG call {name}() (process-global state)",
                        hint="take an explicit random.Random via "
                        "repro.utils.rng.make_rng",
                    )
                ]
            if name in _ENTROPY_CALLS:
                return [
                    self.finding(
                        module,
                        call,
                        f"ambient entropy source {name}()",
                    )
                ]
            if name in {"random.Random", "Random"} and not call.args:
                return [
                    self.finding(
                        module,
                        call,
                        "unseeded random.Random() (OS-seeded, non-reproducible)",
                        hint="seed it, or document the non-reproducible path "
                        "with a suppression",
                    )
                ]
        if isinstance(call.func, ast.Name):
            if call.func.id == "id":
                return [
                    self.finding(
                        module,
                        call,
                        "id(...) used in a reproducibility-critical module "
                        "(identity is allocation order)",
                        hint="key by a stable index or by value instead",
                    )
                ]
            if call.func.id == "hash":
                return [
                    self.finding(
                        module,
                        call,
                        "builtin hash(...) is salted per process",
                        hint="use hashlib over a canonical serialization",
                    )
                ]
            if call.func.id in {"set", "frozenset"}:
                return ()
        return ()


__all__ = ["MODULE_NAMES", "NondeterminismRule"]
