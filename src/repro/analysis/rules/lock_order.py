"""Rule ``lock-order`` — cycle detection over lock acquisition order.

Two threads deadlock when one acquires lock A then B while the other
acquires B then A.  The rule builds the project-wide acquisition-order
graph — an edge A→B whenever B is acquired with A already held — and
reports every cycle.

Edges come from two places:

* **lexical nesting** — ``with a_lock:`` containing ``with b_lock:``;
* **calls under a lock** — a call made while holding A contributes an
  edge A→B for every lock B in the callee's *transitive* acquisition
  summary (a fixpoint over the call graph, so chains through helpers
  are seen).

Lock identity is class-qualified for ``self.<lock>`` acquisitions
(``Engine._pool_lock``), so same-named locks of unrelated classes do
not fabricate cycles.  A self-edge A→A (re-acquiring a lock already
held) is reported too: it deadlocks a plain ``threading.Lock``; if the
lock is a deliberate ``RLock``, suppress with a written reason.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis.engine import Rule, SourceModule, register
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectIndex, project_index

#: (path, line, col) anchoring one acquisition-order edge.
_Anchor = tuple[str, int, int]


def _acquisition_edges(
    index: ProjectIndex,
) -> dict[tuple[str, str], _Anchor]:
    edges: dict[tuple[str, str], _Anchor] = {}

    for info in index.functions.values():
        for acquisition in info.acquisitions:
            for prior in acquisition.held_before:
                edges.setdefault(
                    (prior.qual, acquisition.lock.qual),
                    (info.module.rel_path, acquisition.line, acquisition.col),
                )

    # Transitive acquisition summary per function (own + callees').
    summary: dict[str, frozenset[str]] = {
        qualname: frozenset(
            acquisition.lock.qual for acquisition in info.acquisitions
        )
        for qualname, info in index.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname, info in index.functions.items():
            merged = set(summary[qualname])
            for site in info.calls:
                for callee in site.callees:
                    merged |= summary.get(callee, frozenset())
            frozen = frozenset(merged)
            if frozen != summary[qualname]:
                summary[qualname] = frozen
                changed = True

    for info in index.functions.values():
        if info.is_constructor:
            continue
        for site in info.calls:
            if not site.held:
                continue
            for callee in site.callees:
                for acquired in summary.get(callee, frozenset()):
                    for prior in site.held:
                        edges.setdefault(
                            (prior.qual, acquired),
                            (info.module.rel_path, site.line, site.col),
                        )
    return edges


def _strongly_connected(
    graph: dict[str, set[str]]
) -> list[list[str]]:
    """Tarjan's SCC over the (tiny) lock graph, iterative for safety."""

    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in indices:
            continue
        work: list[tuple[str, Iterable[str] | None]] = [(root, None)]
        while work:
            node, pending = work.pop()
            if pending is None:
                indices[node] = lowlinks[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
                pending = iter(sorted(graph.get(node, set())))
            advanced = False
            iterator = iter(pending)
            for successor in iterator:
                if successor not in indices:
                    work.append((node, iterator))
                    work.append((successor, None))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(
                        lowlinks[node], indices[successor]
                    )
            if advanced:
                continue
            if lowlinks[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return components


@register
class LockOrderRule(Rule):
    id = "lock-order"
    description = (
        "inconsistent lock acquisition order (a cycle in the "
        "acquisition-order graph can deadlock)"
    )
    hint = (
        "acquire locks in one global order everywhere; split or merge "
        "locks if two orders are genuinely needed"
    )
    example_bad = (
        "import threading\n"
        "\n"
        "a_lock = threading.Lock()\n"
        "b_lock = threading.Lock()\n"
        "\n"
        "def ship() -> None:\n"
        "    with a_lock:\n"
        "        with b_lock:\n"
        "            pass\n"
        "\n"
        "def audit() -> None:\n"
        "    with b_lock:\n"
        "        with a_lock:\n"
        "            pass\n"
    )
    example_good = (
        "import threading\n"
        "\n"
        "a_lock = threading.Lock()\n"
        "b_lock = threading.Lock()\n"
        "\n"
        "def ship() -> None:\n"
        "    with a_lock:\n"
        "        with b_lock:\n"
        "            pass\n"
        "\n"
        "def audit() -> None:\n"
        "    with a_lock:  # same order as ship()\n"
        "        with b_lock:\n"
        "            pass\n"
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        index = project_index(modules)
        edges = _acquisition_edges(index)
        graph: dict[str, set[str]] = {}
        for source, target in edges:
            graph.setdefault(source, set()).add(target)
            graph.setdefault(target, set())

        findings: list[Finding] = []
        for component in _strongly_connected(graph):
            if len(component) == 1:
                node = component[0]
                if node not in graph.get(node, set()):
                    continue
                anchor = edges[(node, node)]
                findings.append(
                    self._cycle_finding(
                        anchor,
                        f"lock {node} re-acquired while already held "
                        "(self-deadlock for non-reentrant locks)",
                    )
                )
                continue
            member_edges = sorted(
                (pair, anchor)
                for pair, anchor in edges.items()
                if pair[0] in component and pair[1] in component
            )
            anchor = min(anchor for _pair, anchor in member_edges)
            path = " -> ".join([*component, component[0]])
            findings.append(
                self._cycle_finding(
                    anchor,
                    f"lock acquisition order cycle: {path} "
                    "(potential deadlock)",
                )
            )
        return findings

    def _cycle_finding(self, anchor: _Anchor, message: str) -> Finding:
        path, line, col = anchor
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            hint=self.hint,
        )


__all__ = ["LockOrderRule"]
