"""Runtime concurrency sanitizer: check declared guards against reality.

The static ``guarded-by`` rule proves lock discipline from source; this
module checks the same declarations (see :mod:`repro.analysis.guards`)
against what a *running* program actually does, TSan-style but in pure
Python and scoped to the attributes the serving stack declared:

* :class:`TrackedLock` wraps a real lock and maintains the per-thread
  set of held lock names.
* :meth:`ReproSanitizer.watch` swaps a live object's class for a
  generated subclass whose ``__getattribute__`` / ``__setattr__``
  cross-check every access to a declared attribute: ``guarded-by``
  attributes must see their lock in the current thread's held set,
  ``owned-by`` attributes must be touched from a thread registered to
  the declared domain.
* Violations are recorded, never raised inline (the point is to observe
  the real schedule, not to perturb it); :meth:`ReproSanitizer.assert_clean`
  raises at the end of a test with every recorded access.

This is a debug hook: attribute interception costs a dict probe per
access on watched instances, so production code never calls ``watch``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Mapping, Protocol

from repro.analysis.guards import (
    GUARDED_BY,
    GuardDecl,
    declarations_for_class,
)

#: Class attribute naming the pre-``watch`` class on generated subclasses.
_BASE_ATTR = "_repro_sanitizer_base_"


class SanitizerError(AssertionError):
    """Raised by :meth:`ReproSanitizer.assert_clean` when accesses broke
    a declared guard."""


class _LockLike(Protocol):
    """The slice of the ``threading`` lock interface a guard needs."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool:
        ...

    def release(self) -> None:
        ...


@dataclass(frozen=True)
class Violation:
    """One access that contradicted its attribute's declaration."""

    class_name: str
    attr: str
    kind: str  #: ``guarded-by`` | ``owned-by``
    expected: str  #: declared lock name or domain
    access: str  #: ``read`` | ``write``
    thread: str  #: name of the offending thread
    note: str  #: what was actually held / registered

    def render(self) -> str:
        return (
            f"{self.class_name}.{self.attr} [{self.kind}: {self.expected}] "
            f"{self.access} from thread {self.thread!r}: {self.note}"
        )


class TrackedLock:
    """A lock wrapper that records acquisition in the sanitizer.

    Supports the context-manager protocol and the blocking/timeout
    ``acquire`` signature shared by ``Lock`` and ``RLock``, so it can
    replace a guard attribute (``engine._pool_lock``) transparently.
    """

    def __init__(
        self, sanitizer: "ReproSanitizer", inner: _LockLike, name: str
    ) -> None:
        self._sanitizer = sanitizer
        self._inner = inner
        self._name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._push(self._name)
        return acquired

    def release(self) -> None:
        self._sanitizer._pop(self._name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"TrackedLock({self._name!r})"


class ReproSanitizer:
    """Record per-thread held locks and domains; check watched objects.

    Typical test usage::

        sanitizer = ReproSanitizer()
        sanitizer.register_domain("event-loop")   # current thread
        engine = sanitizer.watch(Engine(workers=1))
        ... drive the engine from several threads ...
        sanitizer.assert_clean()
    """

    def __init__(self) -> None:
        self._state_lock = threading.Lock()
        self._held: dict[int, list[str]] = {}  # guarded-by: _state_lock
        self._domains: dict[int, str] = {}  # guarded-by: _state_lock
        self._violations: list[Violation] = []  # guarded-by: _state_lock
        self._watched: dict[
            tuple[type, tuple[tuple[str, str, str], ...]], type
        ] = {}

    # ------------------------------------------------------------------
    # Per-thread state
    # ------------------------------------------------------------------

    def register_domain(
        self, domain: str, thread: threading.Thread | None = None
    ) -> None:
        """Declare that ``thread`` (default: current) runs in ``domain``."""

        ident = threading.get_ident() if thread is None else thread.ident
        if ident is None:
            raise ValueError("cannot register a thread that has not started")
        with self._state_lock:
            self._domains[ident] = domain

    def held(self) -> tuple[str, ...]:
        """Lock names the current thread holds, in acquisition order."""

        with self._state_lock:
            return tuple(self._held.get(threading.get_ident(), ()))

    def track_lock(self, inner: _LockLike, name: str) -> TrackedLock:
        """Wrap ``inner`` so acquisitions appear in the held set."""

        return TrackedLock(self, inner, name)

    def _push(self, name: str) -> None:
        with self._state_lock:
            self._held.setdefault(threading.get_ident(), []).append(name)

    def _pop(self, name: str) -> None:
        with self._state_lock:
            stack = self._held.get(threading.get_ident())
            if stack and name in stack:
                # Remove the most recent acquisition (RLock re-entry
                # pushes the name twice; each release pops one).
                del stack[len(stack) - 1 - stack[::-1].index(name)]

    # ------------------------------------------------------------------
    # Watching
    # ------------------------------------------------------------------

    def watch(
        self,
        obj: Any,
        declarations: Mapping[str, GuardDecl] | None = None,
    ) -> Any:
        """Intercept declared-attribute accesses on ``obj``; returns it.

        Declarations default to the ``# guarded-by:`` / ``# owned-by:``
        comments on ``type(obj)`` (and bases).  Guard locks named by
        ``guarded-by`` declarations are transparently replaced with
        :class:`TrackedLock` wrappers so existing ``with self._lock:``
        sites feed the held set without modification.
        """

        cls = type(obj)
        if getattr(cls, _BASE_ATTR, None) is not None:
            return obj  # already watched
        decls = (
            dict(declarations)
            if declarations is not None
            else declarations_for_class(cls)
        )
        if not decls:
            return obj
        for decl in decls.values():
            if decl.kind != GUARDED_BY:
                continue
            inner = getattr(obj, decl.target, None)
            if inner is not None and not isinstance(inner, TrackedLock):
                object.__setattr__(
                    obj, decl.target, TrackedLock(self, inner, decl.target)
                )
        obj.__class__ = self._watched_class(cls, decls)
        return obj

    def unwatch(self, obj: Any) -> Any:
        """Restore ``obj``'s original class (tracked locks stay)."""

        base = getattr(type(obj), _BASE_ATTR, None)
        if base is not None:
            obj.__class__ = base
        return obj

    def _watched_class(
        self, cls: type, decls: Mapping[str, GuardDecl]
    ) -> type:
        key = (
            cls,
            tuple(
                sorted(
                    (decl.attr, decl.kind, decl.target)
                    for decl in decls.values()
                )
            ),
        )
        cached = self._watched.get(key)
        if cached is not None:
            return cached
        sanitizer = self
        declared = dict(decls)

        def __setattr__(instance: Any, name: str, value: Any) -> None:
            decl = declared.get(name)
            if decl is not None and not isinstance(value, TrackedLock):
                sanitizer._check(decl, "write")
            super(watched, instance).__setattr__(name, value)

        def __getattribute__(instance: Any, name: str) -> Any:
            decl = declared.get(name)
            if decl is not None:
                sanitizer._check(decl, "read")
            return super(watched, instance).__getattribute__(name)

        watched = type(
            f"Sanitized{cls.__name__}",
            (cls,),
            {
                # Keep the instance layout identical so ``__class__``
                # assignment works for ``__slots__`` classes too.
                "__slots__": (),
                "__setattr__": __setattr__,
                "__getattribute__": __getattribute__,
                _BASE_ATTR: cls,
            },
        )
        self._watched[key] = watched
        return watched

    # ------------------------------------------------------------------
    # Checking and reporting
    # ------------------------------------------------------------------

    def _check(self, decl: GuardDecl, access: str) -> None:
        ident = threading.get_ident()
        with self._state_lock:
            held = tuple(self._held.get(ident, ()))
            domain = self._domains.get(ident)
        if decl.kind == GUARDED_BY:
            if decl.target in held:
                return
            note = (
                f"lock {decl.target!r} not held "
                f"(held: {', '.join(held) if held else 'none'})"
            )
        else:
            if domain == decl.target:
                return
            note = (
                f"thread registered to domain "
                f"{domain!r}" if domain is not None else "thread unregistered"
            )
        violation = Violation(
            class_name=decl.class_name,
            attr=decl.attr,
            kind=decl.kind,
            expected=decl.target,
            access=access,
            thread=threading.current_thread().name,
            note=note,
        )
        with self._state_lock:
            self._violations.append(violation)

    @property
    def violations(self) -> list[Violation]:
        """Snapshot of every recorded violation so far."""

        with self._state_lock:
            return list(self._violations)

    def assert_clean(self) -> None:
        """Raise :class:`SanitizerError` if any access broke a guard."""

        recorded = self.violations
        if recorded:
            lines = "\n  ".join(v.render() for v in recorded)
            raise SanitizerError(
                f"{len(recorded)} guarded access violation(s):\n  {lines}"
            )


__all__ = [
    "ReproSanitizer",
    "SanitizerError",
    "TrackedLock",
    "Violation",
]
