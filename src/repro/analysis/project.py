"""Project-wide symbol table, call graph and concurrency facts.

The per-file rules from PR 6 see one ``ast.Module`` at a time; the
concurrency rules need whole-program structure.  This module builds it
once per lint run (see :func:`project_index`) and exposes:

* a **symbol table** — every top-level function and every method of
  every class, keyed by a stable qualname ``<posix-path>::Class.method``;
* a best-effort **call graph** — ``self.method`` resolves within the
  defining class, bare names resolve through the defining module and its
  ``from``-imports, ``module.func`` resolves through ``import`` aliases,
  and an ``obj.method`` attribute call falls back to the *unique* class
  in the project defining that method name (ambiguity resolves to
  nothing rather than guessing);
* per-function **concurrency facts** gathered in a single flow-sensitive
  walk: ``self.<attr>`` accesses with the set of locks lexically held,
  lock acquisitions (``with``/``async with`` on a lock-like name) with
  the locks already held, call sites with the locks held around them,
  and ``await`` expressions with the *sync* locks held;
* **callback seeds** — call sites that move a callable into another
  concurrency domain (``run_in_executor``, ``asyncio.to_thread``,
  ``Thread(target=...)``, ``Process(target=...)``, ``call_soon`` and
  friends), resolved to the target function where possible;
* a **held-at-entry** fixpoint: the set of locks guaranteed held when a
  function is entered, computed as the intersection over all resolved
  call sites of (locks held at the site ∪ locks held at the caller's
  entry).  Call sites inside ``__init__`` are ignored — construction
  happens before the object is shared.

Lock identity is the attribute tail (``_pool_lock``); acquisitions via
``self.<lock>`` inside a class additionally carry a class-qualified id
(``Engine._pool_lock``) so the lock-order graph does not conflate
same-named locks of different classes.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.engine import SourceModule


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Local twin of :func:`repro.analysis.rules._common.dotted_name`:
    importing the rules package from here would be circular (the rule
    modules import this one).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None

#: Methods whose accesses and outgoing calls are construction-time and
#: therefore exempt from lock-discipline checking.
CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__", "__del__"})

#: Call tails that hand their callable argument to another domain.
#: Maps tail -> (domain, positional index of the callable argument).
_SEED_CALLS: dict[str, tuple[str, int]] = {
    "run_in_executor": ("executor", 1),
    "to_thread": ("executor", 0),
    "submit": ("executor", 0),
    "call_soon": ("event-loop", 0),
    "call_soon_threadsafe": ("event-loop", 0),
    "call_later": ("event-loop", 1),
    "call_at": ("event-loop", 1),
}

#: Constructor tails taking a ``target=`` callable run in another domain.
_SEED_TARGETS: dict[str, str] = {
    "Thread": "executor",
    "Timer": "executor",
    "Process": "worker",
}


#: Method tails too generic for the unique-method fallback: stdlib and
#: protocol objects (writers, queues, files, locks) share these names,
#: so "only one project class defines it" is weak evidence the call
#: lands there.  Direct ``self.method`` and module-function resolution
#: are unaffected.
_GENERIC_METHOD_TAILS = frozenset(
    {
        "acquire",
        "add",
        "append",
        "cancel",
        "clear",
        "close",
        "connect",
        "done",
        "flush",
        "get",
        "items",
        "join",
        "keys",
        "open",
        "pop",
        "put",
        "read",
        "record",
        "recv",
        "release",
        "result",
        "run",
        "send",
        "set",
        "start",
        "stop",
        "update",
        "values",
        "wait",
        "write",
    }
)


def _is_lockish(tail: str) -> bool:
    """Heuristic: attribute/name tails that denote a mutex.

    Condition variables count: ``with self._cond:`` acquires the
    condition's underlying lock, so a condition is a valid guard.
    """

    lowered = tail.lower()
    return lowered.endswith(("lock", "mutex", "cond", "condition"))


@dataclass(frozen=True)
class LockToken:
    """One lock identity as seen at an acquisition or access site."""

    name: str  #: bare attribute tail, e.g. ``_pool_lock``
    qual: str  #: class-qualified id when acquired via ``self.<lock>``
    is_async: bool  #: acquired with ``async with`` (asyncio lock)


@dataclass(frozen=True)
class Acquisition:
    """``with <lock>:`` — the lock plus everything already held."""

    lock: LockToken
    line: int
    col: int
    held_before: tuple[LockToken, ...]


@dataclass(frozen=True)
class AttrAccess:
    """A ``self.<attr>`` read/write/delete and the locks held there."""

    attr: str
    line: int
    col: int
    kind: str  #: ``read`` | ``write`` | ``del``
    held: tuple[LockToken, ...]


@dataclass(frozen=True)
class CallSite:
    """One call expression with its resolved targets and held locks."""

    callees: tuple[str, ...]
    line: int
    col: int
    held: tuple[LockToken, ...]


@dataclass(frozen=True)
class AwaitSite:
    """An ``await`` and the *synchronous* locks held across it."""

    line: int
    col: int
    sync_locks: tuple[LockToken, ...]


@dataclass(frozen=True)
class CallbackSeed:
    """A call site handing ``callee`` to another concurrency domain."""

    domain: str
    callee: str
    line: int


@dataclass
class FunctionInfo:
    """Symbol-table record for one function or method."""

    qualname: str
    name: str
    class_name: str | None
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    accesses: list[AttrAccess] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    awaits: list[AwaitSite] = field(default_factory=list)

    @property
    def is_constructor(self) -> bool:
        return self.name in CONSTRUCTORS


def _module_dotted(module: SourceModule) -> str:
    """Dotted import path derived from the file's posix path."""

    posix = module.posix()
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    if posix.endswith("/__init__"):
        posix = posix[: -len("/__init__")]
    return posix.replace("/", ".")


class ProjectIndex:
    """Symbol table + call graph + concurrency facts for one file set."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: tuple[SourceModule, ...] = tuple(modules)
        self.functions: dict[str, FunctionInfo] = {}
        self.seeds: list[CallbackSeed] = []
        self.main_seeds: set[str] = set()
        #: posix path -> {top-level function name -> info}
        self._module_funcs: dict[str, dict[str, FunctionInfo]] = {}
        #: (posix, class name) -> {method name -> info}
        self._class_methods: dict[tuple[str, str], dict[str, FunctionInfo]] = {}
        #: method name -> every info across the project
        self._methods_global: dict[str, list[FunctionInfo]] = {}
        #: posix path -> {alias -> (module dotted path, symbol or None)}
        self._imports: dict[str, dict[str, tuple[str, str | None]]] = {}
        self._by_dotted: dict[str, str] = {}

        for module in self.modules:
            self._index_module(module)
        for module in self.modules:
            self._collect_module_facts(module)

        #: callee qualname -> [(caller qualname, call site)], skipping
        #: call sites inside constructors.
        self.callers: dict[str, list[tuple[str, CallSite]]] = {}
        for qualname, info in self.functions.items():
            if info.is_constructor:
                continue
            for site in info.calls:
                for callee in site.callees:
                    self.callers.setdefault(callee, []).append((qualname, site))

    # ------------------------------------------------------------------
    # pass 1: symbols and imports

    def _index_module(self, module: SourceModule) -> None:
        posix = module.posix()
        self._by_dotted[_module_dotted(module)] = posix
        funcs: dict[str, FunctionInfo] = {}
        imports: dict[str, tuple[str, str | None]] = {}

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    imports[bound] = (alias.name, None)
            elif isinstance(node, ast.ImportFrom):
                if node.module is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    imports[bound] = (node.module, alias.name)

        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._make_info(module, stmt, None)
                funcs[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                methods: dict[str, FunctionInfo] = {}
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = self._make_info(module, item, stmt.name)
                        methods[item.name] = info
                        self._methods_global.setdefault(item.name, []).append(info)
                self._class_methods[(posix, stmt.name)] = methods

        self._module_funcs[posix] = funcs
        self._imports[posix] = imports

    def _make_info(
        self,
        module: SourceModule,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionInfo:
        scope = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            qualname=f"{module.posix()}::{scope}",
            name=node.name,
            class_name=class_name,
            module=module,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        self.functions[info.qualname] = info
        return info

    # ------------------------------------------------------------------
    # resolution helpers

    def _module_for(self, dotted: str) -> str | None:
        """Posix path of the indexed module matching an import target."""

        posix = self._by_dotted.get(dotted)
        if posix is not None:
            return posix
        for known, candidate in self._by_dotted.items():
            if known.endswith("." + dotted):
                return candidate
        return None

    def _unique_method(self, name: str) -> FunctionInfo | None:
        if name in _GENERIC_METHOD_TAILS:
            return None
        candidates = self._methods_global.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def resolve_callable(
        self, expr: ast.AST, module: SourceModule, class_name: str | None
    ) -> tuple[str, ...]:
        """Qualnames a call/reference expression may denote (best effort)."""

        name = dotted_name(expr)
        if name is None:
            return ()
        posix = module.posix()
        parts = name.split(".")
        if len(parts) == 1:
            local = self._module_funcs.get(posix, {}).get(parts[0])
            if local is not None:
                return (local.qualname,)
            imported = self._imports.get(posix, {}).get(parts[0])
            if imported is not None and imported[1] is not None:
                target = self._module_for(imported[0])
                if target is not None:
                    func = self._module_funcs.get(target, {}).get(imported[1])
                    if func is not None:
                        return (func.qualname,)
            return ()
        if parts[0] == "self" and class_name is not None:
            if len(parts) == 2:
                method = self._class_methods.get((posix, class_name), {}).get(
                    parts[1]
                )
                if method is not None:
                    return (method.qualname,)
            fallback = self._unique_method(parts[-1])
            return (fallback.qualname,) if fallback is not None else ()
        imported = self._imports.get(posix, {}).get(parts[0])
        if imported is not None and imported[1] is None and len(parts) == 2:
            target = self._module_for(imported[0])
            if target is not None:
                func = self._module_funcs.get(target, {}).get(parts[1])
                if func is not None:
                    return (func.qualname,)
        fallback = self._unique_method(parts[-1])
        return (fallback.qualname,) if fallback is not None else ()

    # ------------------------------------------------------------------
    # pass 2: per-function facts

    def _collect_module_facts(self, module: SourceModule) -> None:
        posix = module.posix()
        for info in self._module_funcs.get(posix, {}).values():
            _FactsWalker(self, info).run()
        for (owner_posix, _cls), methods in self._class_methods.items():
            if owner_posix != posix:
                continue
            for info in methods.values():
                _FactsWalker(self, info).run()
        self._seed_top_level(module)

    def _seed_top_level(self, module: SourceModule) -> None:
        """Functions invoked from module top level run in the main domain."""

        stack: list[ast.stmt] = [
            stmt
            for stmt in module.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        while stack:
            stmt = stack.pop()
            for child in ast.walk(stmt):
                if isinstance(child, ast.Call):
                    for callee in self.resolve_callable(child.func, module, None):
                        self.main_seeds.add(callee)

    # ------------------------------------------------------------------
    # held-at-entry fixpoint

    def held_at_entry(self) -> dict[str, frozenset[LockToken]]:
        """Locks guaranteed held when each function is entered.

        Intersection over all resolved, non-constructor call sites of
        (locks held at the site ∪ caller's held-at-entry).  Functions
        with no such call sites get the empty set — nothing is
        guaranteed.  The fixpoint starts optimistic (⊤, represented as
        ``None``) and only shrinks, so recursion converges.
        """

        entry: dict[str, frozenset[LockToken] | None] = {
            qualname: (None if self.callers.get(qualname) else frozenset())
            for qualname in self.functions
        }
        changed = True
        while changed:
            changed = False
            for qualname, sites in self.callers.items():
                met: frozenset[LockToken] | None = None
                for caller, site in sites:
                    caller_entry = entry.get(caller)
                    if caller_entry is None:
                        continue  # still ⊤ — contributes nothing
                    here = frozenset(site.held) | caller_entry
                    met = here if met is None else (met & here)
                if met is None:
                    continue
                current = entry[qualname]
                updated = met if current is None else (current & met)
                if updated != current:
                    entry[qualname] = updated
                    changed = True
        return {
            qualname: (held if held is not None else frozenset())
            for qualname, held in entry.items()
        }


class _FactsWalker:
    """One recursive walk over a function body, tracking held locks."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info
        self.held: list[LockToken] = []
        methods = index._class_methods.get(
            (info.module.posix(), info.class_name or ""), {}
        )
        self.method_names = frozenset(methods)

    def run(self) -> None:
        for stmt in self.info.node.body:
            self._visit(stmt)

    def _lock_token(self, expr: ast.expr) -> LockToken | None:
        name = dotted_name(expr)
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if not _is_lockish(tail):
            return None
        qual = tail
        if (
            name.startswith("self.")
            and "." not in name[len("self.") :]
            and self.info.class_name is not None
        ):
            qual = f"{self.info.class_name}.{tail}"
        return LockToken(name=tail, qual=qual, is_async=False)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scope: separate function, not this one's facts
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.Await):
            sync_locks = tuple(t for t in self.held if not t.is_async)
            self.info.awaits.append(
                AwaitSite(node.lineno, node.col_offset, sync_locks)
            )
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Attribute):
            self._visit_attribute(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            self._visit(item.context_expr)
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
            token = self._lock_token(item.context_expr)
            if token is not None:
                if isinstance(node, ast.AsyncWith):
                    token = LockToken(token.name, token.qual, is_async=True)
                self.info.acquisitions.append(
                    Acquisition(
                        lock=token,
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                        held_before=tuple(self.held),
                    )
                )
                self.held.append(token)
                pushed += 1
        for stmt in node.body:
            self._visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def _visit_call(self, node: ast.Call) -> None:
        callees = self.index.resolve_callable(
            node.func, self.info.module, self.info.class_name
        )
        self.info.calls.append(
            CallSite(
                callees=callees,
                line=node.lineno,
                col=node.col_offset,
                held=tuple(self.held),
            )
        )
        self._collect_seeds(node)

    def _collect_seeds(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        tail = name.rsplit(".", 1)[-1]
        seeded = _SEED_CALLS.get(tail)
        if seeded is not None:
            domain, position = seeded
            if len(node.args) > position:
                self._seed_reference(node.args[position], domain, node.lineno)
            return
        target_domain = _SEED_TARGETS.get(tail)
        if target_domain is not None:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self._seed_reference(
                        keyword.value, target_domain, node.lineno
                    )

    def _seed_reference(self, expr: ast.expr, domain: str, line: int) -> None:
        for callee in self.index.resolve_callable(
            expr, self.info.module, self.info.class_name
        ):
            self.index.seeds.append(CallbackSeed(domain, callee, line))

    def _visit_attribute(self, node: ast.Attribute) -> None:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        # ``self.method(...)`` is a method lookup, not state access; a
        # call through a *stored callable* attribute still counts.
        if isinstance(node.ctx, ast.Load) and node.attr in self.method_names:
            return
        if isinstance(node.ctx, ast.Store):
            kind = "write"
        elif isinstance(node.ctx, ast.Del):
            kind = "del"
        else:
            kind = "read"
        self.info.accesses.append(
            AttrAccess(
                attr=node.attr,
                line=node.lineno,
                col=node.col_offset,
                kind=kind,
                held=tuple(self.held),
            )
        )


_CACHE: dict[tuple[int, ...], ProjectIndex] = {}


def project_index(modules: Sequence[SourceModule]) -> ProjectIndex:
    """Build (or reuse) the index for this exact module sequence.

    All concurrency rules in one ``run_lint`` call receive the same
    module list object, so keying on identity makes the index build
    once per run; the cache keeps a single entry to avoid pinning old
    module trees.
    """

    key = tuple(id(module) for module in modules)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    _CACHE.clear()
    index = ProjectIndex(modules)
    _CACHE[key] = index
    return index


__all__ = [
    "CONSTRUCTORS",
    "Acquisition",
    "AttrAccess",
    "AwaitSite",
    "CallSite",
    "CallbackSeed",
    "FunctionInfo",
    "LockToken",
    "ProjectIndex",
    "dotted_name",
    "project_index",
]
