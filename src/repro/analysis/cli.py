"""The ``repro-lint`` command-line entry point.

Usage::

    repro-lint src/                       # human-readable report
    repro-lint src/ --format json         # machine-readable (CI)
    repro-lint src/ --format github       # ::error annotations (CI)
    repro-lint src/ --select async-blocking,bare-except
    repro-lint --list-rules
    repro-lint --explain guarded-by       # what a rule means, with examples

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro.analysis.engine import Rule, default_rules, run_lint
from repro.analysis.findings import Finding


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-invariant static analysis for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help="output format (default: text); 'github' emits workflow "
        "::error annotations that surface inline on pull requests",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="describe one rule — what it catches and why — with a "
        "violating and a clean example, then exit",
    )
    return parser


def _escape_annotation(value: str, *, property_value: bool = False) -> str:
    """GitHub workflow-command escaping (docs: 'Workflow commands')."""

    escaped = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        escaped = escaped.replace(",", "%2C").replace(":", "%3A")
    return escaped


def render_github(finding: Finding) -> str:
    """One ``::error`` annotation line for ``finding``."""

    file = _escape_annotation(finding.path, property_value=True)
    title = _escape_annotation(
        f"repro-lint [{finding.rule}]", property_value=True
    )
    message = finding.message
    if finding.hint:
        message = f"{message} (hint: {finding.hint})"
    return (
        f"::error file={file},line={finding.line},col={finding.col},"
        f"title={title}::{_escape_annotation(message)}"
    )


def _explain_rule(rule: Rule) -> str:
    """The ``--explain`` payload: description, rationale, examples.

    Falls back to the docstring of the module defining the rule when
    the rule declares no ``explain`` text of its own.
    """

    sections = [f"{rule.id}: {rule.description}"]
    explain = rule.explain.strip()
    if not explain:
        module = sys.modules.get(type(rule).__module__)
        explain = ((module.__doc__ or "") if module else "").strip()
    if explain:
        sections.append(explain)
    if rule.hint:
        sections.append(f"hint: {rule.hint}")
    if rule.example_bad.strip():
        sections.append("violates:\n" + _indent(rule.example_bad))
    if rule.example_good.strip():
        sections.append("clean:\n" + _indent(rule.example_good))
    return "\n\n".join(sections)


def _indent(snippet: str) -> str:
    return "\n".join(
        "    " + line for line in snippet.strip("\n").rstrip().splitlines()
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in default_rules():
            print(f"{rule.id:22s} {rule.description}")
        return 0

    if options.explain:
        by_id = {rule.id: rule for rule in default_rules()}
        rule = by_id.get(options.explain)
        if rule is None:
            known = ", ".join(sorted(by_id))
            parser.error(
                f"unknown rule {options.explain!r} (known: {known})"
            )  # exits 2
        print(_explain_rule(rule))
        return 0

    paths = options.paths or ["src/"]
    select = (
        [part.strip() for part in options.select.split(",") if part.strip()]
        if options.select
        else None
    )
    try:
        result = run_lint(paths, select=select)
    except ValueError as error:
        parser.error(str(error))  # exits 2

    if options.format == "json":
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    elif options.format == "github":
        for finding in result.findings:
            print(render_github(finding))
        summary = (
            f"{len(result.findings)} finding(s) in {len(result.files)} file(s)"
            f" [{len(result.rules)} rule(s), {result.suppressed} suppressed]"
        )
        print(("FAIL: " if result.findings else "OK: ") + summary)
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"{len(result.findings)} finding(s) in {len(result.files)} file(s)"
            f" [{len(result.rules)} rule(s), {result.suppressed} suppressed]"
        )
        print(("FAIL: " if result.findings else "OK: ") + summary)
    return 1 if result.findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into `head` etc. closed early: exit quietly
        # (point stdout at devnull so the interpreter's exit-time flush
        # does not raise a second time).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)


__all__ = ["build_parser", "main", "render_github"]
