"""The ``repro-lint`` command-line entry point.

Usage::

    repro-lint src/                       # human-readable report
    repro-lint src/ --format json         # machine-readable (CI)
    repro-lint src/ --select async-blocking,bare-except
    repro-lint --list-rules

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis.engine import default_rules, run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-invariant static analysis for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in default_rules():
            print(f"{rule.id:22s} {rule.description}")
        return 0

    paths = options.paths or ["src/"]
    select = (
        [part.strip() for part in options.select.split(",") if part.strip()]
        if options.select
        else None
    )
    try:
        result = run_lint(paths, select=select)
    except ValueError as error:
        parser.error(str(error))  # exits 2

    if options.format == "json":
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"{len(result.findings)} finding(s) in {len(result.files)} file(s)"
            f" [{len(result.rules)} rule(s), {result.suppressed} suppressed]"
        )
        print(("FAIL: " if result.findings else "OK: ") + summary)
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["build_parser", "main"]
