"""Concurrency-domain inference over the project call graph.

Every function in the serving stack runs in one (or more) of four
**concurrency domains**:

* ``event-loop`` — coroutines and callbacks scheduled on the asyncio
  loop (the pump, protocol handlers, ``call_soon`` callbacks);
* ``executor`` — functions handed to ``loop.run_in_executor`` /
  ``asyncio.to_thread`` / ``Executor.submit`` or run as a
  ``threading.Thread`` target;
* ``worker`` — ``multiprocessing.Process`` targets (a separate address
  space: worker-domain code shares no memory with the other three);
* ``main`` — functions reached from module top level (CLI entry points,
  ``if __name__ == "__main__"`` blocks) or literally named ``main``.

Inference seeds the known entry points, then propagates along the call
graph: a synchronous callee runs wherever its callers run, so it
accumulates the union of its callers' domains.  ``async def`` bodies
only ever execute on the event loop, so async functions are pinned to
``event-loop`` and do not inherit caller domains (calling an async
function from sync code merely *creates* the coroutine).

The result is deliberately a *may* analysis: a function with domains
``{event-loop, executor}`` has at least one call path from each, which
is exactly the situation in which its attribute writes need a
``# guarded-by:`` declaration.
"""

from __future__ import annotations

from repro.analysis.project import ProjectIndex

EVENT_LOOP = "event-loop"
EXECUTOR = "executor"
WORKER = "worker"
MAIN = "main"

#: All recognised domain names, in display order.
ALL_DOMAINS = (EVENT_LOOP, EXECUTOR, MAIN, WORKER)

#: Domains that share one address space.  ``worker`` code lives in a
#: forked process: a worker-domain write can never race an event-loop
#: or executor access to the parent's copy of the object.
SHARED_MEMORY_DOMAINS = frozenset({EVENT_LOOP, EXECUTOR, MAIN})


def infer_domains(index: ProjectIndex) -> dict[str, frozenset[str]]:
    """Map every indexed qualname to the domains it may run in."""

    domains: dict[str, set[str]] = {
        qualname: set() for qualname in index.functions
    }
    for qualname, info in index.functions.items():
        if info.is_async:
            domains[qualname].add(EVENT_LOOP)
        if info.name == "main":
            domains[qualname].add(MAIN)
    for qualname in index.main_seeds:
        if qualname in domains:
            domains[qualname].add(MAIN)
    for seed in index.seeds:
        info = index.functions.get(seed.callee)
        if info is None or info.is_async:
            continue  # async callees stay pinned to the event loop
        domains[seed.callee].add(seed.domain)

    changed = True
    while changed:
        changed = False
        for qualname, info in index.functions.items():
            source = domains[qualname]
            if not source:
                continue
            for site in info.calls:
                for callee in site.callees:
                    target = index.functions.get(callee)
                    if target is None or target.is_async:
                        continue
                    sink = domains[callee]
                    before = len(sink)
                    sink |= source
                    if len(sink) != before:
                        changed = True
    return {
        qualname: frozenset(found) for qualname, found in domains.items()
    }


__all__ = [
    "ALL_DOMAINS",
    "EVENT_LOOP",
    "EXECUTOR",
    "MAIN",
    "SHARED_MEMORY_DOMAINS",
    "WORKER",
    "infer_domains",
]
