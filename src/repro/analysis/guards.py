"""Declared-ownership model: ``# guarded-by:`` / ``# owned-by:`` comments.

Shared attributes in the serving stack declare their synchronisation
discipline with a trailing comment on the line that introduces them —
either a class-level annotation or the ``self.<attr> = ...`` assignment
in ``__init__``::

    class Engine:
        _processes: list[Process]  # guarded-by: _pool_lock

    class AsyncWitnessServer:
        def __init__(self) -> None:
            self.served = 0  # owned-by: event-loop

``guarded-by: <lock>`` means every access outside construction must
hold ``self.<lock>``; ``owned-by: <domain>`` means every access must
happen in that concurrency domain (see :mod:`repro.analysis.domains`).

This module is the single parser for both consumers: the static
``guarded-by`` rule reads declarations straight from lint sources, and
the runtime :class:`~repro.analysis.sanitizer.ReproSanitizer` loads
them for a live class via :func:`declarations_for_class`.
"""

from __future__ import annotations

import ast
import functools
import inspect
import re
import tokenize
from dataclasses import dataclass

GUARDED_BY = "guarded-by"
OWNED_BY = "owned-by"

_DECL_RE = re.compile(
    r"#\s*(guarded-by|owned-by):\s*([A-Za-z_][A-Za-z0-9_.\-]*)"
)


@dataclass(frozen=True)
class GuardDecl:
    """One declared attribute: who owns it and how it is protected."""

    class_name: str
    attr: str
    kind: str  #: ``guarded-by`` | ``owned-by``
    target: str  #: bare lock attribute name, or a domain name
    line: int


def _comment_declarations(text: str) -> dict[int, tuple[str, str]]:
    """Line number -> (kind, target) for every declaration comment."""

    declarations: dict[int, tuple[str, str]] = {}
    lines = iter(text.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type != tokenize.COMMENT:
                continue
            match = _DECL_RE.search(token.string)
            if match is None:
                continue
            target = match.group(2)
            if target.startswith("self."):
                target = target[len("self.") :]
            declarations[token.start[0]] = (match.group(1), target)
    except tokenize.TokenError:
        pass  # unparsable file surfaces as parse-error elsewhere
    return declarations


def _declared_attr_lines(cls: ast.ClassDef) -> list[tuple[str, int]]:
    """(attr, line) for every statement that can carry a declaration:
    class-level (annotated) assignments and ``self.<attr> = ...`` inside
    methods."""

    sites: list[tuple[str, int]] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            sites.append((stmt.target.id, stmt.lineno))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    sites.append((target.id, stmt.lineno))
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    sites.append((target.attr, node.lineno))
    return sites


def collect_declarations(text: str, tree: ast.Module) -> list[GuardDecl]:
    """Every guard declaration in one parsed source file."""

    comments = _comment_declarations(text)
    if not comments:
        return []
    declarations: list[GuardDecl] = []
    seen: set[tuple[str, str]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for attr, line in _declared_attr_lines(node):
            comment = comments.get(line)
            if comment is None:
                continue
            key = (node.name, attr)
            if key in seen:
                continue
            seen.add(key)
            declarations.append(
                GuardDecl(
                    class_name=node.name,
                    attr=attr,
                    kind=comment[0],
                    target=comment[1],
                    line=line,
                )
            )
    return declarations


@functools.lru_cache(maxsize=None)
def _declarations_for_source(source_path: str) -> tuple[GuardDecl, ...]:
    with open(source_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return tuple(collect_declarations(text, ast.parse(text)))


def declarations_for_class(cls: type) -> dict[str, GuardDecl]:
    """Runtime loader: declarations for ``cls`` (and its base classes),
    read back from the defining source files.  Returns an empty mapping
    for classes whose source is unavailable (REPLs, C extensions)."""

    declarations: dict[str, GuardDecl] = {}
    for base in reversed(cls.__mro__):
        if base is object:
            continue
        try:
            source_path = inspect.getsourcefile(base)
        except TypeError:
            continue
        if source_path is None:
            continue
        try:
            found = _declarations_for_source(source_path)
        except (OSError, SyntaxError):
            continue
        for decl in found:
            if decl.class_name == base.__name__:
                declarations[decl.attr] = decl
    return declarations


__all__ = [
    "GUARDED_BY",
    "GuardDecl",
    "OWNED_BY",
    "collect_declarations",
    "declarations_for_class",
]
