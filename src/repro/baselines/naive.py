"""Exhaustive baselines: the ground truth everything is validated against.

Enumerating ``Σⁿ`` and filtering through the automaton is exponential in
``n`` by construction; these functions exist so the experiments can
report *true* relative errors at small sizes and so the tests have an
algorithm-independent oracle (they do not share code with the counting
pipeline beyond ``NFA.accepts``).
"""

from __future__ import annotations

import itertools

from repro.automata.nfa import NFA, Word


def brute_force_words(nfa: NFA, n: int) -> list[Word]:
    """All length-``n`` accepted words by full Σⁿ sweep (no pruning).

    Deliberately the dumbest possible implementation — it must not share
    failure modes with :func:`repro.automata.operations.words_of_length`
    (which prunes via the transition structure under test).
    """
    stripped = nfa.without_epsilon()
    symbols = sorted(stripped.alphabet, key=repr)
    return [
        w
        for w in itertools.product(symbols, repeat=n)
        if stripped.accepts(w)
    ]


def brute_force_count(nfa: NFA, n: int) -> int:
    """``|L_n(nfa)|`` by the same full sweep."""
    return len(brute_force_words(nfa, n))
