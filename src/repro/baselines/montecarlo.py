"""The naive Monte Carlo estimator of Section 6.1 — and why it fails.

The estimator the paper dismisses before presenting its FPRAS:

1. count the total number ``P`` of accepting *paths* of length ``n``
   (easy: the run-count DP);
2. sample an accepting path uniformly (backward-count walk), read off
   its word ``x``;
3. compute ``P_x``, the number of accepting paths labelled ``x``;
4. output the average of ``P / P_x`` over ``N`` samples.

It is unbiased: each word ``x`` is drawn with probability ``P_x / P``
and contributes ``P / P_x``, so the expectation is the number of accepted
words.  But its variance is driven by ``max_x P/P_x · |L|``-style ratios:
on families where run counts differ exponentially across words (e.g.
:func:`repro.automata.random_gen.ambiguity_blowup`), achieving relative
error δ needs exponentially many samples — experiment E5 measures exactly
this collapse against the FPRAS at equal sample budgets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.automata.nfa import NFA, Word
from repro.core.exact import backward_run_table, forward_run_table
from repro.core.unroll import unroll_trimmed
from repro.errors import EmptyWitnessSetError
from repro.utils.rng import make_rng


class uniform_run_sampler:
    """Sample uniform accepting *runs* (paths) of length ``n``.

    The run distribution is exactly what the Section 5.3.3 sampler uses —
    but over runs, not words: on ambiguous automata the induced word
    distribution is biased toward high-multiplicity words, which is the
    whole problem.  (Class with __call__ rather than a closure so the DP
    tables are inspectable in experiments.)
    """

    def __init__(self, nfa: NFA, n: int):
        self.nfa = nfa.without_epsilon()
        self.n = n
        self.dag = unroll_trimmed(self.nfa, n)
        self.back = backward_run_table(self.dag)
        self.total_runs = self.back[0].get(self.nfa.initial, 0)

    def __call__(self, rng: random.Random | int | None = None) -> Word:
        if self.total_runs == 0:
            raise EmptyWitnessSetError(f"no accepting runs of length {self.n}")
        generator = make_rng(rng)
        state = self.nfa.initial
        symbols: list = []
        for t in range(self.n):
            pick = generator.randrange(self.back[t][state])
            accumulated = 0
            for symbol, target in self.dag.ordered_successors(t, state):
                weight = self.back[t + 1].get(target, 0)
                accumulated += weight
                if pick < accumulated:
                    symbols.append(symbol)
                    state = target
                    break
        return tuple(symbols)


@dataclass
class MonteCarloEstimate:
    """The E5 observable bundle: estimate plus variance diagnostics."""

    estimate: float
    total_paths: int
    samples: int
    ratios: list  # the per-sample P/P_x values

    @property
    def empirical_relative_std(self) -> float:
        if not self.ratios or self.estimate == 0:
            return 0.0
        mean = sum(self.ratios) / len(self.ratios)
        variance = sum((r - mean) ** 2 for r in self.ratios) / max(1, len(self.ratios) - 1)
        return (variance**0.5) / mean if mean else 0.0


def naive_montecarlo_count(
    nfa: NFA,
    n: int,
    samples: int,
    rng: random.Random | int | None = None,
) -> MonteCarloEstimate:
    """Run the Section 6.1 estimator with ``samples`` path draws."""
    generator = make_rng(rng)
    stripped = nfa.without_epsilon()
    sampler = uniform_run_sampler(stripped, n)
    if sampler.total_runs == 0:
        return MonteCarloEstimate(estimate=0.0, total_paths=0, samples=0, ratios=[])
    total_paths = sampler.total_runs
    ratios: list[float] = []
    for _ in range(samples):
        w = sampler(generator)
        multiplicity = stripped.count_accepting_runs(w)
        ratios.append(total_paths / multiplicity)
    estimate = sum(ratios) / len(ratios)
    return MonteCarloEstimate(
        estimate=estimate, total_paths=total_paths, samples=samples, ratios=ratios
    )
