"""The naive Monte Carlo estimator of Section 6.1 — and why it fails.

The estimator the paper dismisses before presenting its FPRAS:

1. count the total number ``P`` of accepting *paths* of length ``n``
   (easy: the run-count DP);
2. sample an accepting path uniformly (backward-count walk), read off
   its word ``x``;
3. compute ``P_x``, the number of accepting paths labelled ``x``;
4. output the average of ``P / P_x`` over ``N`` samples.

It is unbiased: each word ``x`` is drawn with probability ``P_x / P``
and contributes ``P / P_x``, so the expectation is the number of accepted
words.  But its variance is driven by ``max_x P/P_x · |L|``-style ratios:
on families where run counts differ exponentially across words (e.g.
:func:`repro.automata.random_gen.ambiguity_blowup`), achieving relative
error δ needs exponentially many samples — experiment E5 measures exactly
this collapse against the FPRAS at equal sample budgets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.automata.nfa import NFA, Word
from repro.core.kernel import CompiledDAG, compile_nfa, kernel_matches_nfa
from repro.errors import EmptyWitnessSetError, InvalidAutomatonError
from repro.utils.rng import make_rng


class uniform_run_sampler:
    """Sample uniform accepting *runs* (paths) of length ``n``.

    The run distribution is exactly what the Section 5.3.3 sampler uses —
    but over runs, not words: on ambiguous automata the induced word
    distribution is biased toward high-multiplicity words, which is the
    whole problem.  Walks are table-guided over the compiled kernel
    (pass a cached trimmed ``kernel`` to share preprocessing); the count
    tables stay inspectable through :attr:`kernel` and :attr:`back`.
    """

    def __init__(self, nfa: NFA, n: int, kernel: CompiledDAG | None = None):
        self.nfa = nfa.without_epsilon()
        self.n = n
        if kernel is None:
            kernel = compile_nfa(self.nfa, n, trimmed=True)
        elif kernel.n != n or not kernel_matches_nfa(kernel, self.nfa):
            raise InvalidAutomatonError(
                f"kernel mismatch: compiled for n={kernel.n}, sampler needs "
                f"length {n} of the same automaton"
            )
        self.kernel = kernel
        self.dag = self.kernel
        self.total_runs = self.kernel.total_runs

    @property
    def back(self) -> list:
        """The backward run table in the seed dict shape (diagnostics)."""
        return self.kernel.backward_dicts()

    def __call__(self, rng: random.Random | int | None = None) -> Word:
        if self.total_runs == 0:
            raise EmptyWitnessSetError(f"no accepting runs of length {self.n}")
        return self.kernel.sample_word(make_rng(rng))


@dataclass
class MonteCarloEstimate:
    """The E5 observable bundle: estimate plus variance diagnostics."""

    estimate: float
    total_paths: int
    samples: int
    ratios: list  # the per-sample P/P_x values

    @property
    def empirical_relative_std(self) -> float:
        if not self.ratios or self.estimate == 0:
            return 0.0
        mean = sum(self.ratios) / len(self.ratios)
        variance = sum((r - mean) ** 2 for r in self.ratios) / max(1, len(self.ratios) - 1)
        return (variance**0.5) / mean if mean else 0.0


def naive_montecarlo_count(
    nfa: NFA,
    n: int,
    samples: int,
    rng: random.Random | int | None = None,
    kernel: CompiledDAG | None = None,
) -> MonteCarloEstimate:
    """Run the Section 6.1 estimator with ``samples`` path draws.

    ``kernel`` optionally supplies an already-compiled trimmed kernel of
    ``(nfa, n)`` (e.g. from a :class:`repro.api.WitnessSet` cache) so the
    estimator skips its own compilation.
    """
    generator = make_rng(rng)
    stripped = nfa.without_epsilon()
    sampler = uniform_run_sampler(stripped, n, kernel=kernel)
    if sampler.total_runs == 0:
        return MonteCarloEstimate(estimate=0.0, total_paths=0, samples=0, ratios=[])
    total_paths = sampler.total_runs
    ratios: list[float] = []
    for _ in range(samples):
        w = sampler(generator)
        multiplicity = stripped.count_accepting_runs(w)
        ratios.append(total_paths / multiplicity)
    estimate = sum(ratios) / len(ratios)
    return MonteCarloEstimate(
        estimate=estimate, total_paths=total_paths, samples=samples, ratios=ratios
    )
