"""A KSM95-flavoured comparator: the previous best, at its sampling schedule.

Kannan, Sweedyk and Mahaney's quasi-polynomial randomized approximation
scheme ([KSM95]) was the state of the art for #NFA before this paper; the
follow-up [GJK+97] extended it to context-free languages at the same
``n^{O(log n)}`` cost.  Reproducing their algorithm verbatim is out of
scope (and beside the point: what the experiments need is the *scaling
shape* of the previous best).  This module provides an honest comparator
built from the same primitive those analyses bound — multiplicity-
corrected path sampling — run at the quasi-polynomial sample schedule
``N(n) = base · n^{ceil(log₂ n) · intensity}`` that a KSM95-style variance
analysis requires to guarantee relative error δ across ambiguity regimes.

Concretely, :func:`kannan_style_count` is the Section 6.1 unbiased
estimator (see :mod:`repro.baselines.montecarlo`) with the sample count
set by :func:`ksm_sample_schedule` instead of a user-chosen constant:
per-run cost therefore grows as ``n^{Θ(log n)}`` — the E6 experiment
measures this runtime-to-fixed-error blow-up against the FPRAS's
polynomial growth.  This is a *simplification*, documented as such in
DESIGN.md §5: same estimator family and guarantee shape as the historical
algorithm, not its exact control flow.
"""

from __future__ import annotations

import math
import random

from repro.automata.nfa import NFA
from repro.baselines.montecarlo import MonteCarloEstimate, naive_montecarlo_count


def ksm_sample_schedule(
    n: int, delta: float, base: int = 4, intensity: float = 0.5, cap: int = 200_000
) -> int:
    """The quasi-polynomial sample count ``~ n^{O(log n)} / δ²``.

    ``intensity`` scales the exponent so experiments can run the schedule
    at laptop-feasible absolute sizes while preserving the super-
    polynomial *shape*; ``cap`` keeps pathological requests bounded (the
    cap being hit is itself a reported datapoint in E6).
    """
    if n < 2:
        return base
    exponent = math.ceil(math.log2(n)) * intensity
    schedule = base * (n**exponent) / (delta**2)
    return int(min(cap, max(base, math.ceil(schedule))))


def kannan_style_count(
    nfa: NFA,
    n: int,
    delta: float = 0.2,
    rng: random.Random | int | None = None,
    intensity: float = 0.5,
    cap: int = 200_000,
) -> MonteCarloEstimate:
    """The comparator run: multiplicity-corrected sampling at KSM scale."""
    samples = ksm_sample_schedule(n, delta, intensity=intensity, cap=cap)
    return naive_montecarlo_count(nfa, n, samples=samples, rng=rng)
