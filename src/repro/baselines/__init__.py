"""Baselines the paper discusses or is measured against.

* :mod:`repro.baselines.naive` — exhaustive ground truth.
* :mod:`repro.baselines.montecarlo` — the unbiased path-sampling
  estimator of Section 6.1 whose variance explodes with ambiguity.
* :mod:`repro.baselines.kannan` — a KSM95-flavoured comparator: the same
  estimator run at the quasi-polynomial sampling schedule the previous
  best analysis required.
* :mod:`repro.baselines.karp_luby` — the classical DNF FPRAS [KL83].
"""

from repro.baselines.naive import brute_force_count, brute_force_words
from repro.baselines.montecarlo import (
    MonteCarloEstimate,
    naive_montecarlo_count,
    uniform_run_sampler,
)
from repro.baselines.kannan import kannan_style_count, ksm_sample_schedule
from repro.baselines.karp_luby import karp_luby_count

__all__ = [
    "brute_force_count",
    "brute_force_words",
    "naive_montecarlo_count",
    "uniform_run_sampler",
    "MonteCarloEstimate",
    "kannan_style_count",
    "ksm_sample_schedule",
    "karp_luby_count",
]
