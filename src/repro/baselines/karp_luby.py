"""The Karp–Luby FPRAS for DNF counting ([KL83]).

The paper cites DNF counting as the canonical #P-complete problem that
already had an FPRAS; experiment E13 compares it against the generic
RelationNL pipeline on the same formulas.

The classical coverage algorithm: let ``U = ⊎_i M(D_i)`` be the disjoint
union of per-term model sets (``|U| = Σ_i 2^{n - |D_i|}``, computable
exactly).  Sample ``(i, σ)`` uniformly from ``U`` (term ∝ its model
count, then σ uniform among the term's models) and test whether ``i`` is
the *first* term σ satisfies; the success probability is ``|M(φ)| / |U|``
and ``|U| ≤ m · |M(φ)|``, so ``O(m · log(1/ε) / δ²)`` samples give an
(δ, ε)-approximation.  Exact bignum arithmetic for the weights; the
number of samples follows the standard ``⌈4m·ln(2/ε)/δ²⌉`` bound.
"""

from __future__ import annotations

import math
import random

from repro.dnf.formulas import DNFFormula
from repro.utils.rng import make_rng


def karp_luby_count(
    formula: DNFFormula,
    delta: float = 0.1,
    epsilon: float = 0.05,
    rng: random.Random | int | None = None,
    samples: int | None = None,
) -> float:
    """Estimate ``|M(φ)|`` within relative error δ with prob ≥ 1 - ε."""
    generator = make_rng(rng)
    n = formula.num_variables
    live = [term for term in formula.terms if term.satisfiable]
    if not live:
        return 0.0
    weights = [term.count_models(n) for term in live]
    universe = sum(weights)
    if universe == 0:
        return 0.0
    if samples is None:
        samples = math.ceil(4 * len(live) * math.log(2 / epsilon) / (delta**2))

    cumulative = []
    running = 0
    for weight in weights:
        running += weight
        cumulative.append(running)

    hits = 0
    for _ in range(samples):
        # Uniform element of the disjoint union: pick a term ∝ weight...
        pick = generator.randrange(universe)
        term_index = next(
            index for index, bound in enumerate(cumulative) if pick < bound
        )
        term = live[term_index]
        forced = term.as_dict()
        # ...then a uniform model of that term.
        assignment = [
            forced[index] if index in forced else generator.randrange(2)
            for index in range(n)
        ]
        # Success iff this is the canonical (first-satisfying) copy of σ.
        first = next(
            index
            for index, candidate in enumerate(live)
            if candidate.satisfied_by(assignment)
        )
        if first == term_index:
            hits += 1
    return universe * hits / samples
