"""Extended variable-set automata (eVA) — the spanner formalism of §4.1.

An eVA ``A = (Q, q0, F, δ)`` has two transition kinds:

* letter transitions ``(q, a, q')`` consuming one document symbol;
* variable-set transitions ``(q, S, q')`` with ``S`` a nonempty set of
  markers ``x⊢`` (open x) / ``⊣x`` (close x), consuming no input.

A run over ``d = a₁…aₙ`` alternates marker sets and letters,

    q0 —X₁→ p0 —a₁→ q1 —X₂→ p1 —a₂→ … —aₙ→ qn —Xₙ₊₁→ pn,

where empty ``Xᵢ`` means "stay put".  A run is *valid* when every
variable is opened exactly once and closed exactly once (at or after its
opening position); a valid accepting run defines the mapping sending
``x`` to the span ``[i, j⟩`` with ``x⊢ ∈ Xᵢ`` and ``⊣x ∈ Xⱼ``.

* *functional* (checked by :meth:`EVA.is_functional`): every accepting
  run is valid — the property that makes evaluation tractable
  (non-functional evaluation is NP-hard, §4.1).
* *unambiguous* (checked at the compiled-automaton level): distinct valid
  accepting runs define distinct mappings — the RelationUL case.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.errors import InvalidAutomatonError, NotFunctionalError


def open_marker(variable: str) -> tuple:
    """The marker ``x⊢`` (variable opens here)."""
    return ("open", variable)


def close_marker(variable: str) -> tuple:
    """The marker ``⊣x`` (variable closes here)."""
    return ("close", variable)


@dataclass(frozen=True)
class LetterTransition:
    source: object
    symbol: str
    target: object


@dataclass(frozen=True)
class VariableTransition:
    source: object
    markers: frozenset
    target: object

    def __post_init__(self):
        if not self.markers:
            raise InvalidAutomatonError("variable-set transitions need a nonempty set")


class EVA:
    """An extended variable-set automaton.

    Parameters
    ----------
    states / initial / finals:
        The finite control.
    letter_transitions:
        Iterable of ``(q, a, q')`` with ``a`` a single character.
    variable_transitions:
        Iterable of ``(q, S, q')`` with ``S`` an iterable of markers
        built by :func:`open_marker` / :func:`close_marker`.
    variables:
        The variable set X; inferred from the markers when omitted.
    """

    def __init__(
        self,
        states: Iterable,
        initial,
        finals: Iterable,
        letter_transitions: Iterable[tuple],
        variable_transitions: Iterable[tuple],
        variables: Iterable[str] | None = None,
    ):
        self.states = frozenset(states)
        self.initial = initial
        self.finals = frozenset(finals)
        self.letter = tuple(
            LetterTransition(q, a, p) for q, a, p in letter_transitions
        )
        self.variable = tuple(
            VariableTransition(q, frozenset(markers), p)
            for q, markers, p in variable_transitions
        )
        inferred = {
            marker[1]
            for transition in self.variable
            for marker in transition.markers
        }
        self.variables = frozenset(variables) if variables is not None else frozenset(inferred)
        self._validate(inferred)
        self._letters_from: dict = {}
        self._marks_from: dict = {}
        for transition in self.letter:
            self._letters_from.setdefault(transition.source, []).append(transition)
        for transition in self.variable:
            self._marks_from.setdefault(transition.source, []).append(transition)

    def _validate(self, inferred_variables: set) -> None:
        if self.initial not in self.states:
            raise InvalidAutomatonError("initial state not in states")
        if not self.finals <= self.states:
            raise InvalidAutomatonError("finals must be states")
        for transition in self.letter:
            if transition.source not in self.states or transition.target not in self.states:
                raise InvalidAutomatonError(f"letter transition {transition} leaves states")
        for transition in self.variable:
            if transition.source not in self.states or transition.target not in self.states:
                raise InvalidAutomatonError(f"variable transition {transition} leaves states")
            for marker in transition.markers:
                if (
                    not isinstance(marker, tuple)
                    or len(marker) != 2
                    or marker[0] not in ("open", "close")
                ):
                    raise InvalidAutomatonError(f"malformed marker {marker!r}")
        if not inferred_variables <= set(self.variables):
            raise InvalidAutomatonError("markers mention undeclared variables")

    # ------------------------------------------------------------------

    def letter_successors(self, state, symbol: str) -> list:
        return [
            transition.target
            for transition in self._letters_from.get(state, ())
            if transition.symbol == symbol
        ]

    def variable_successors(self, state) -> list[VariableTransition]:
        return list(self._marks_from.get(state, ()))

    def alphabet(self) -> frozenset:
        return frozenset(transition.symbol for transition in self.letter)

    def marker_choices(self) -> frozenset:
        """Every marker set a run can emit at one position, plus ∅.

        This is the alphabet of the document product ``N_{A,d}``
        (:mod:`repro.spanners.evaluation` and the lazy
        :class:`repro.core.plan.DocProduct` share it).
        """
        choices = {frozenset()}
        for transition in self.variable:
            choices.add(transition.markers)
        return frozenset(choices)

    # ------------------------------------------------------------------
    # Functionality check
    # ------------------------------------------------------------------

    def is_functional(self) -> bool:
        """Every accepting run is valid (opens before closes, each exactly once).

        Standard product check: track, per variable, the marker status
        {unseen, open, closed} through an abstract run-graph reachability.
        Exponential in |X| in the worst case (the status space is 3^|X|),
        fine for query-sized variable sets; the paper's transformation to
        functional eVAs is orthogonal machinery we do not need since we
        *verify* rather than repair.
        """
        statuses = {variable: 0 for variable in sorted(self.variables)}  # 0 unseen
        start = (self.initial, tuple(sorted(statuses.items())), 0)  # phase 0: marks allowed
        seen = {start[:2]}
        frontier = deque([start[:2]])
        while frontier:
            state, status = frontier.popleft()
            status_map = dict(status)
            if state in self.finals:
                # An accepting configuration must have every variable closed
                # OR be extendable only through more markers; acceptance can
                # happen at any point where the run has consumed the whole
                # document, so any reachable (final, status) with a variable
                # not fully closed witnesses a potentially invalid accepting
                # run.  This is conservative in the right direction: it can
                # only reject automata that have an invalid accepting run on
                # SOME document, which is exactly functionality.
                if any(value != 2 for value in status_map.values()):
                    return False
            for transition in self.variable_successors(state):
                next_status = dict(status_map)
                legal = True
                for kind, variable in sorted(transition.markers):
                    if kind == "open":
                        if next_status[variable] != 0:
                            legal = False
                            break
                        next_status[variable] = 1
                    else:
                        if next_status[variable] != 1:
                            legal = False
                            break
                        next_status[variable] = 2
                if not legal:
                    # A run taking this transition is invalid; if such a run
                    # can reach a final state the eVA is not functional.  We
                    # check reachability of finals from the target state
                    # ignoring statuses (over-approximation is sound here:
                    # invalid prefix + accepting completion = invalid
                    # accepting run).
                    if self._reaches_final(transition.target):
                        return False
                    continue
                key = (transition.target, tuple(sorted(next_status.items())))
                if key not in seen:
                    seen.add(key)
                    frontier.append(key)
            for transition in self._letters_from.get(state, ()):
                key = (transition.target, tuple(sorted(status_map.items())))
                if key not in seen:
                    seen.add(key)
                    frontier.append(key)
        return True

    def _reaches_final(self, state) -> bool:
        seen = {state}
        frontier = deque([state])
        while frontier:
            current = frontier.popleft()
            if current in self.finals:
                return True
            for transition in self._letters_from.get(current, ()):
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
            for transition in self._marks_from.get(current, ()):
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
        return False

    def require_functional(self) -> "EVA":
        if not self.is_functional():
            raise NotFunctionalError(
                "the eVA has an accepting run that is not valid; evaluation of "
                "non-functional eVAs is NP-hard (Section 4.1)"
            )
        return self


def extraction_eva(pattern_before: str, variable: str, content_symbols: Iterable[str], alphabet: Iterable[str]) -> EVA:
    """A small entity-extraction eVA: capture a maximal block of
    ``content_symbols`` occurring right after ``pattern_before``.

    A convenience builder used by the examples and benchmarks: it produces
    a functional eVA that scans the document, nondeterministically picks
    an occurrence of ``pattern_before``, opens ``variable``, consumes one
    or more content symbols, closes, and skips the rest.
    """
    alphabet = list(alphabet)
    content = set(content_symbols)
    prefix_states = [f"p{i}" for i in range(len(pattern_before) + 1)]
    states = ["scan"] + prefix_states + ["in", "done"]
    letter: list[tuple] = []
    variable_transitions: list[tuple] = []
    # Scan anywhere before the match.
    for a in alphabet:
        letter.append(("scan", a, "scan"))
    # Nondeterministically start matching the pattern.
    # scan -> p0 by reading the first pattern char? We model the guess by
    # sharing: from scan, reading pattern[0] may also enter p1.
    if pattern_before:
        letter.append(("scan", pattern_before[0], prefix_states[1]))
        for index in range(1, len(pattern_before)):
            letter.append((prefix_states[index], pattern_before[index], prefix_states[index + 1]))
        anchor = prefix_states[len(pattern_before)]
    else:
        anchor = "scan"
    # Open the variable, consume ≥1 content symbol, close.
    variable_transitions.append((anchor, [open_marker(variable)], "in_pre"))
    states.append("in_pre")
    for a in content:
        letter.append(("in_pre", a, "in"))
        letter.append(("in", a, "in"))
    variable_transitions.append(("in", [close_marker(variable)], "done"))
    for a in alphabet:
        letter.append(("done", a, "done"))
    return EVA(
        states,
        "scan",
        ["done"],
        letter,
        variable_transitions,
        variables=[variable],
    )
