"""Document spanners (Section 4.1): rule-based information extraction.

The paper's first application: evaluating extended variable-set automata
(eVA) over documents.  ``EVAL-eVA`` (functional eVAs) is in RelationNL —
so counting mappings admits an FPRAS and sampling a uniform mapping a
PLVUG (Corollary 6); ``EVAL-UeVA`` (unambiguous functional eVAs) is in
RelationUL — constant-delay enumeration, exact counting, exact uniform
generation (Corollary 7).
"""

from repro.spanners.spans import Mapping, Span
from repro.spanners.eva import EVA, close_marker, open_marker
from repro.spanners.evaluation import (
    EvalEvaRelation,
    EvalUevaRelation,
    SpannerEvaluator,
)
from repro.spanners.combinators import (
    alt,
    anything,
    build,
    capture,
    lit,
    rep,
    seq,
    sym_class,
)

__all__ = [
    "lit",
    "sym_class",
    "seq",
    "alt",
    "rep",
    "capture",
    "anything",
    "build",
    "Span",
    "Mapping",
    "EVA",
    "open_marker",
    "close_marker",
    "SpannerEvaluator",
    "EvalEvaRelation",
    "EvalUevaRelation",
]
