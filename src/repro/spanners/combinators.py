"""Combinator construction of spanners: build eVAs compositionally.

Section 4.1's formalism takes the eVA as given; writing transition tables
by hand does not scale.  This module provides the standard spanner
combinators (a small subset of the RGX "regex formulas" of [FKRV15],
which the paper notes convert to eVAs in polynomial time):

* :func:`lit` — match a fixed string;
* :func:`sym_class` — match one symbol of a set;
* :func:`seq` — concatenation;
* :func:`alt` — disjunction;
* :func:`rep` — Kleene repetition (``min_count`` 0 or 1);
* :func:`capture` — bind a variable to the span an inner spanner matches;
* :func:`anything` — ``Σ*``.

``build(expr, alphabet)`` compiles an expression tree to a functional
eVA by a Thompson-style construction over (state, marker) graphs; the
result plugs straight into :class:`~repro.spanners.evaluation.
SpannerEvaluator`.  Each variable must be captured exactly once along
every match path (checked: this is what makes the result functional).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import InvalidAutomatonError
from repro.spanners.eva import EVA, close_marker, open_marker


@dataclass(frozen=True)
class SpannerExpr:
    """Base class for spanner expressions."""


@dataclass(frozen=True)
class Lit(SpannerExpr):
    text: str


@dataclass(frozen=True)
class SymClass(SpannerExpr):
    symbols: frozenset


@dataclass(frozen=True)
class Seq(SpannerExpr):
    parts: tuple


@dataclass(frozen=True)
class Alt(SpannerExpr):
    options: tuple


@dataclass(frozen=True)
class Rep(SpannerExpr):
    inner: SpannerExpr
    min_count: int  # 0 (star) or 1 (plus)


@dataclass(frozen=True)
class Capture(SpannerExpr):
    variable: str
    inner: SpannerExpr


def lit(text: str) -> SpannerExpr:
    return Lit(text)


def sym_class(symbols: Iterable[str]) -> SpannerExpr:
    return SymClass(frozenset(symbols))


def seq(*parts: SpannerExpr) -> SpannerExpr:
    return Seq(tuple(parts))


def alt(*options: SpannerExpr) -> SpannerExpr:
    return Alt(tuple(options))


def rep(inner: SpannerExpr, min_count: int = 0) -> SpannerExpr:
    if min_count not in (0, 1):
        raise ValueError("rep supports min_count 0 (star) or 1 (plus)")
    return Rep(inner, min_count)


def capture(variable: str, inner: SpannerExpr) -> SpannerExpr:
    return Capture(variable, inner)


def anything(alphabet: Iterable[str]) -> SpannerExpr:
    return Rep(SymClass(frozenset(alphabet)), 0)


def _variables(expr: SpannerExpr) -> frozenset:
    if isinstance(expr, Capture):
        return _variables(expr.inner) | {expr.variable}
    if isinstance(expr, Seq):
        out: frozenset = frozenset()
        for part in expr.parts:
            inner = _variables(part)
            if out & inner:
                raise InvalidAutomatonError(
                    f"variables captured twice in a sequence: {sorted(out & inner)}"
                )
            out |= inner
        return out
    if isinstance(expr, Alt):
        option_vars = [_variables(option) for option in expr.options]
        first = option_vars[0]
        for other in option_vars[1:]:
            if other != first:
                raise InvalidAutomatonError(
                    "all alternatives must capture the same variables "
                    f"(got {sorted(first)} vs {sorted(other)})"
                )
        return first
    if isinstance(expr, Rep):
        inner = _variables(expr.inner)
        if inner:
            raise InvalidAutomatonError(
                f"captures inside repetition would bind {sorted(inner)} more than once"
            )
        return frozenset()
    return frozenset()


class _Builder:
    """Allocates states and accumulates transitions for one build."""

    def __init__(self):
        self.counter = 0
        self.letters: list[tuple] = []
        self.markers: list[tuple] = []

    def fresh(self) -> str:
        self.counter += 1
        return f"s{self.counter}"

    def compile(self, expr: SpannerExpr, entry: str, alphabet: frozenset) -> str:
        """Wire ``expr`` from ``entry``; return the exit state."""
        if isinstance(expr, Lit):
            current = entry
            for symbol in expr.text:
                if symbol not in alphabet:
                    raise InvalidAutomatonError(f"literal symbol {symbol!r} not in alphabet")
                nxt = self.fresh()
                self.letters.append((current, symbol, nxt))
                current = nxt
            return current
        if isinstance(expr, SymClass):
            concrete = expr.symbols & alphabet
            if not concrete:
                raise InvalidAutomatonError("empty symbol class after alphabet restriction")
            exit_state = self.fresh()
            for symbol in concrete:
                self.letters.append((entry, symbol, exit_state))
            return exit_state
        if isinstance(expr, Seq):
            current = entry
            for part in expr.parts:
                current = self.compile(part, current, alphabet)
            return current
        if isinstance(expr, Alt):
            exits = [self.compile(option, entry, alphabet) for option in expr.options]
            # Merge the exits through letter-free identification: reroute
            # every edge into each exit toward a shared exit state.  With
            # no ε-transitions in eVAs, we instead add a dummy marker-free
            # join via duplicated outgoing edges later; simplest sound
            # approach: return a fresh state joined by rewriting exits.
            join = self.fresh()
            for exit_state in exits:
                self._alias(exit_state, join)
            return join
        if isinstance(expr, Rep):
            if expr.min_count == 0:
                # star: a loop state identified with the entry; the body
                # runs from it back into it.
                loop = self.fresh()
                self._alias(entry, loop)
                body_exit = self.compile(expr.inner, loop, alphabet)
                self._alias(body_exit, loop)
                return loop
            # plus: one obligatory traversal, then a star anchored at its
            # exit (body compiled a second time, looping on that exit).
            first_exit = self.compile(expr.inner, entry, alphabet)
            loop_exit = self.compile(expr.inner, first_exit, alphabet)
            self._alias(loop_exit, first_exit)
            return first_exit
        if isinstance(expr, Capture):
            opened = self.fresh()
            self.markers.append((entry, frozenset({open_marker(expr.variable)}), opened))
            inner_exit = self.compile(expr.inner, opened, alphabet)
            closed = self.fresh()
            self.markers.append((inner_exit, frozenset({close_marker(expr.variable)}), closed))
            return closed
        raise TypeError(f"unknown spanner expression {expr!r}")

    def _alias(self, source: str, target: str) -> None:
        """Make ``source`` and ``target`` the same control point.

        eVAs have no ε-transitions, so aliasing is done by copying: every
        future edge out of ``target`` must also exist out of ``source``
        and vice versa.  We implement it by rewriting already-recorded
        edges and recording a union-find style redirect for later ones.
        """
        self.redirects = getattr(self, "redirects", {})
        root_source = self._find(source)
        root_target = self._find(target)
        if root_source != root_target:
            self.redirects[root_source] = root_target

    def _find(self, state: str) -> str:
        redirects = getattr(self, "redirects", {})
        while state in redirects:
            state = redirects[state]
        return state

    def resolve(self) -> tuple[list, list]:
        letters = [
            (self._find(source), symbol, self._find(target))
            for source, symbol, target in self.letters
        ]
        markers = [
            (self._find(source), markers, self._find(target))
            for source, markers, target in self.markers
        ]
        return letters, markers


def build(expr: SpannerExpr, alphabet: Iterable[str]) -> EVA:
    """Compile a spanner expression into a functional eVA."""
    alphabet = frozenset(alphabet)
    _variables(expr)  # raises on double/conditional capture
    builder = _Builder()
    entry = builder.fresh()
    exit_state = builder.compile(expr, entry, alphabet)
    letters, markers = builder.resolve()
    entry = builder._find(entry)
    exit_state = builder._find(exit_state)
    states = {entry, exit_state}
    for source, _, target in letters:
        states.update((source, target))
    for source, _, target in markers:
        states.update((source, target))
    eva = EVA(
        states=states,
        initial=entry,
        finals=[exit_state],
        letter_transitions=letters,
        variable_transitions=markers,
    )
    return eva.require_functional()
