"""Spans and mappings: the data objects of document spanners (§4.1).

A document is a string ``d = a₁…aₙ``; a *span* ``[i, j⟩`` with
``1 ≤ i ≤ j ≤ n+1`` denotes the (possibly empty) region whose content is
``d[i-1 : j-1]`` in Python indexing.  A *mapping* assigns a span to each
variable of a finite set X.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping as TMapping


@dataclass(frozen=True, order=True)
class Span:
    """A span ``[start, end⟩`` over a document, 1-indexed as in the paper."""

    start: int
    end: int

    def __post_init__(self):
        if not 1 <= self.start <= self.end:
            raise ValueError(f"invalid span [{self.start}, {self.end}⟩")

    def content(self, document: str) -> str:
        """The substring of ``document`` the span covers."""
        if self.end > len(document) + 1:
            raise ValueError(
                f"span [{self.start}, {self.end}⟩ exceeds document length {len(document)}"
            )
        return document[self.start - 1 : self.end - 1]

    def __len__(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return f"[{self.start}, {self.end}⟩"


class Mapping:
    """An assignment of spans to variables (immutable, hashable)."""

    __slots__ = ("_assignment", "_hash")

    def __init__(self, assignment: TMapping[str, Span]):
        self._assignment = dict(assignment)
        self._hash = None

    def __getitem__(self, variable: str) -> Span:
        return self._assignment[variable]

    def variables(self) -> frozenset:
        return frozenset(self._assignment)

    def items(self) -> Iterable[tuple[str, Span]]:
        return self._assignment.items()

    def contents(self, document: str) -> dict[str, str]:
        """The extracted text per variable."""
        return {
            variable: span.content(document)
            for variable, span in self._assignment.items()
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._assignment.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{variable}↦{span!r}" for variable, span in sorted(self._assignment.items())
        )
        return f"Mapping({inner})"
