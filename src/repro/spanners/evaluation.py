"""Evaluating eVAs over documents via the RelationNL / RelationUL pipeline.

The compilation behind Corollaries 6 and 7: for a functional eVA ``A``
and a document ``d = a₁…aₙ``, build an NFA ``N_{A,d}`` over the alphabet
of *marker sets* whose length-``(n+1)`` words are exactly the
witness encodings of ``⟦A⟧(d)``:

    word  =  (X₁, X₂, …, Xₙ₊₁)       (Xᵢ ⊆ markers, possibly ∅)

— the letters are determined by the document, so a valid accepting run is
determined by its marker-set sequence, and a marker-set sequence is
exactly a mapping.  States of ``N_{A,d}`` are ``(eVA state, position)``
pairs: the product of the automaton with the document, i.e. the Lemma 13
configuration graph of the obvious NL-transducer that guesses the run
(experiment E9 measures this construction).

Functional eVAs give ambiguous NFAs in general (several runs per
mapping): RelationNL ⇒ FPRAS + PLVUG (Corollary 6).  When additionally
the eVA is *unambiguous* (one valid accepting run per mapping), the NFA
is unambiguous and the RelationUL suite applies (Corollary 7).  The
unambiguity check is performed on the compiled product — polynomial,
per instance, and run on the lazy interface so the configuration graph
is never materialized for it.

Compilation is symbolic by default: :func:`compile_eva_plan` returns a
lazy :class:`~repro.core.plan.DocProduct` whose ``(state, position)``
configurations exist only while the kernel lowering's frontier touches
them — on a long document the eager route allocates all ``|Q|·(n+1)``
configurations before ``trim()`` discards the unreachable bulk.
:func:`compile_eva` keeps the materialized-NFA API (the plan's eager
rendering, trimmed).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.automata.nfa import NFA, Word
from repro.core.plan import DocProduct
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.errors import InvalidRelationInputError
from repro.spanners.eva import EVA
from repro.spanners.spans import Mapping, Span

#: The NFA symbol for "no markers at this position".
EMPTY_SET: frozenset = frozenset()


def compile_eva_plan(eva: EVA, document: str) -> DocProduct:
    """The document product ``N_{A,d}`` as a lazy plan node.

    States ``(q, i)``: eVA state ``q`` about to process position ``i``
    (``i = 0`` before the first marker set).  A symbol ``S`` (a frozenset
    of markers) moves ``(q, i) → (q'', i+1)`` when ``q —S→ q' —aᵢ₊₁→ q''``
    (with ``q' = q`` for ``S = ∅``); at the last position the letter step
    is replaced by the acceptance test.  Functionality is verified at
    construction (evaluation of non-functional eVAs is NP-hard, §4.1).
    """
    return DocProduct(eva, document)


def compile_eva(eva: EVA, document: str) -> NFA:
    """The product NFA ``N_{A,d}`` materialized (see module docstring).

    The eager rendering of :func:`compile_eva_plan` — reachable
    configurations only, trimmed so its useful states and transitions
    match the classical allocate-everything construction exactly.  The
    alphabet is the eVA's marker choices (the symbols a run can emit).
    """
    return compile_eva_plan(eva, document).to_nfa().trim()


def decode_mapping(eva: EVA, w: Word) -> Mapping:
    """Marker-set word → mapping (the µ^ρ of the paper)."""
    opens: dict[str, int] = {}
    closes: dict[str, int] = {}
    for position, marker_set in enumerate(w, start=1):
        for kind, variable in marker_set:
            if kind == "open":
                if variable in opens:
                    raise InvalidRelationInputError(f"variable {variable} opened twice")
                opens[variable] = position
            else:
                if variable in closes:
                    raise InvalidRelationInputError(f"variable {variable} closed twice")
                closes[variable] = position
    if set(opens) != set(eva.variables) or set(closes) != set(eva.variables):
        raise InvalidRelationInputError("word does not assign every variable")
    return Mapping(
        {variable: Span(opens[variable], closes[variable]) for variable in eva.variables}
    )


def encode_mapping(eva: EVA, document: str, mapping: Mapping) -> Word:
    """Mapping → marker-set word of length ``len(document) + 1``."""
    n = len(document)
    sets: list[set] = [set() for _ in range(n + 1)]
    for variable, span in mapping.items():
        if span.end > n + 1:
            raise InvalidRelationInputError(f"span {span!r} exceeds the document")
        sets[span.start - 1].add(("open", variable))
        sets[span.end - 1].add(("close", variable))
    return tuple(frozenset(s) for s in sets)


class EvalEvaRelation(AutomatonBackedRelation):
    """``EVAL-eVA``: inputs are ``(functional eVA, document)`` pairs.

    In RelationNL (Corollary 6): polynomial-delay enumeration, FPRAS
    counting, PLVUG sampling — all inherited through :meth:`compile`.
    """

    name = "EVAL-eVA"

    def compile(self, instance: tuple) -> CompiledInstance:
        eva, document = instance
        return CompiledInstance(nfa=compile_eva(eva, document), length=len(document) + 1)

    def decode_witness(self, instance: tuple, w: Word) -> Mapping:
        eva, _ = instance
        return decode_mapping(eva, w)

    def encode_witness(self, instance: tuple, witness: Mapping) -> Word:
        eva, document = instance
        return encode_mapping(eva, document, witness)


class EvalUevaRelation(EvalEvaRelation):
    """``EVAL-UeVA``: the unambiguous restriction (Corollary 7).

    Compilation additionally verifies the compiled automaton is
    unambiguous — the certificate that the RelationUL algorithms are
    sound for this input.
    """

    name = "EVAL-UeVA"

    def compile(self, instance: tuple) -> CompiledInstance:
        from repro.automata.unambiguous import is_unambiguous

        compiled = super().compile(instance)
        if not is_unambiguous(compiled.nfa):
            raise InvalidRelationInputError(
                "the eVA is ambiguous on this document: some mapping has more "
                "than one valid accepting run; use EvalEvaRelation instead"
            )
        return compiled


class SpannerEvaluator:
    """The user-facing evaluator: count / enumerate / sample ``⟦A⟧(d)``.

    A thin domain wrapper over the :class:`~repro.api.WitnessSet`
    facade: the document product is compiled as a lazy plan and lowered
    straight into the array kernel, so the unambiguous hot path never
    materializes the configuration graph.  Dispatches between the two
    corollaries the way the paper does: if the compiled product is
    unambiguous the exact RelationUL algorithms run, otherwise the
    FPRAS / PLVUG of RelationNL.
    """

    def __init__(
        self,
        eva: EVA,
        document: str,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
    ):
        from repro.api import WitnessSet

        self.eva = eva
        self.document = document
        self.length = len(document) + 1
        self.delta = delta
        self.ws = WitnessSet.from_spanner(eva, document, delta=delta, rng=rng)

    @property
    def plan(self) -> DocProduct:
        """The symbolic document-product plan the queries lower from."""
        return self.ws.plan

    @property
    def nfa(self) -> NFA:
        """The materialized ``N_{A,d}`` (built on demand — eager cost)."""
        return self.ws.stripped

    @property
    def unambiguous(self) -> bool:
        return self.ws.is_unambiguous

    def mappings(self) -> Iterator[Mapping]:
        """Enumerate ⟦A⟧(d) — constant delay when unambiguous, else polynomial."""
        return self.ws.enumerate()

    def count(self) -> float:
        """|⟦A⟧(d)| — exact when unambiguous, FPRAS estimate otherwise."""
        if self.ws.is_unambiguous:
            return self.ws.count_exact()
        return self.ws.count(backend="fpras")

    def count_exact(self) -> int:
        """Exact |⟦A⟧(d)| regardless of ambiguity (may be exponential)."""
        return self.ws.count_exact()

    def sample(self, rng: random.Random | int | None = None) -> Mapping | None:
        """A uniform mapping (None when ⟦A⟧(d) is empty)."""
        return self.ws.sample(rng=rng)
