"""The unified query facade: one :class:`WitnessSet` per compiled instance.

The paper's central point is architectural: *every* application —
SAT-DNF, OBDDs, RPQs, document spanners — goes through one pipeline:
compile the instance to an automaton ``(N, n)`` whose fixed-length
language is the witness set, then dispatch to the exact RelationUL
algorithms or the FPRAS/PLVUG of RelationNL.  :class:`WitnessSet` is that
pipeline as a single query object:

* uniform constructors ``from_nfa / from_regex / from_dnf / from_obdd /
  from_rpq / from_spanner / from_cfg / from_plan / from_intersection``
  replace the per-domain ad-hoc entrypoints;
* composite sources (RPQ graph products, spanner document products,
  pattern intersections) are *plan-backed*: compiled to the symbolic
  plan IR of :mod:`repro.core.plan` and lowered on the fly into the
  kernel, so only the forward-reachable (and backward-useful) product
  fragment is ever allocated — ``ws.describe()["lowering"]`` shows the
  cross-product blow-up avoided;
* all shared preprocessing (ε-strip + trim, the ambiguity check, the
  pruned unrolling, the compiled array kernel, the FPRAS sketch) is
  computed lazily **exactly once** and reused by every subsequent
  ``count`` / ``sample`` / ``enumerate`` / ``spectrum`` call — a count
  followed by a sample on the same language no longer pays twice;
* every exact query executes on the integer-indexed
  :class:`~repro.core.kernel.CompiledDAG` (cached as :attr:`WitnessSet.
  kernel`, with a reachable-mode sibling for the FPRAS/spectra), and
  bulk generation goes through the batched kernel pass
  (:meth:`WitnessSet.sample_batch`);
* counting strategies are pluggable via the solver-backend registry
  (:mod:`repro.backends`): ``ws.count(backend="fpras" | "montecarlo" |
  "kannan" | "karp_luby" | ...)``.

Quick tour::

    from repro import WitnessSet

    ws = WitnessSet.from_regex("(ab|ba)*(a|b)?", 9, alphabet="ab")
    ws.count()                      # exact |W|
    ws.count(backend="fpras", epsilon=0.1)   # the paper's FPRAS
    ws.sample(5, rng=0)             # 5 exactly-uniform witnesses
    list(ws.enumerate(limit=10))    # constant/poly-delay enumeration
    ws.spectrum()                   # {length: |L_length|}
    ws.is_unambiguous               # which complexity class applies

    shared = WitnessSet.from_intersection(     # witnesses two patterns share
        "(ab|ba)*", "(a|b)*aa(a|b)*", 10)      # (lazy product plan)
    shared.count(), shared.describe()["lowering"]

:data:`shared` is the bounded process-wide cache behind the deprecated
free functions (``repro.count_words`` etc.), so legacy call sites are
O(1) after the first query on a given automaton.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from collections import OrderedDict
from typing import Iterator

from repro import backends as _backends
from repro.automata.nfa import NFA, Word
from repro.automata.regex import compile_regex
from repro.automata.unambiguous import is_unambiguous
from repro.core.enumeration import (
    algorithm1_page,
    enumerate_words_dag,
    enumerate_words_nfa,
)
from repro.core.exact import count_words_exact, length_spectrum
from repro.core.exact_sampler import ExactUniformSampler
from repro.core.fpras import FprasParameters, FprasState
from repro.core.kernel import CompiledDAG, compile_nfa
from repro.core.plan import Plan, Product, as_plan, lower_plan
from repro.core.plvug import DEFAULT_ATTEMPTS_PER_CALL
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.core.unroll import UnrolledDAG, accepted_word_exists, unroll_trimmed
from repro.errors import (
    EmptyWitnessSetError,
    GenerationFailedError,
    InvalidRelationInputError,
)
from repro.obs import add_stage
from repro.obs import metrics as obs_metrics
from repro.obs import names as metric_names
from repro.utils.rng import make_rng, substreams


class CacheStats:
    """Per-artifact hit/miss counters for a :class:`WitnessSet`'s cache.

    Tests (and curious users) read these to verify the no-recompilation
    guarantee: after the first query, further queries only ever *hit*.
    """

    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits: dict = {}
        self.misses: dict = {}

    def record(self, key, hit: bool) -> None:
        table = self.hits if hit else self.misses
        table[key] = table.get(key, 0) + 1

    @property
    def hit_count(self) -> int:
        return sum(self.hits.values())

    @property
    def miss_count(self) -> int:
        return sum(self.misses.values())

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<CacheStats hits={self.hit_count} misses={self.miss_count}>"


def _resolve_seed_alias(
    rng: random.Random | int | None, seed: int | None
) -> random.Random | int | None:
    """Merge the ``seed=`` integer alias into ``rng`` (one spelling only)."""
    if seed is None:
        return rng
    if rng is not None:
        raise ValueError("pass either rng= or its alias seed=, not both")
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise TypeError(f"seed must be an int, got {type(seed).__name__}")
    return seed


class WitnessSet:
    """The witness set ``W = L_n(N)`` of one compiled instance, queryable.

    Parameters
    ----------
    nfa, n:
        The Lemma 13 artifact: witnesses are the length-``n`` words of
        ``nfa`` (possibly decoded into domain objects, see ``relation``).
        ``nfa`` may instead be a symbolic :class:`~repro.core.plan.Plan`
        (or be ``None`` with ``plan=`` given): the witness set is then
        *plan-backed* — exact counting, sampling, enumeration and
        spectra lower the plan's reachable fragment straight into the
        array kernel, and the product automaton is only materialized if
        an ambiguous-instance fallback (FPRAS, subset counting) needs
        it.
    plan:
        The symbolic plan behind a plan-backed witness set (see
        :meth:`from_plan`).
    relation, instance:
        Optional :class:`AutomatonBackedRelation` and the input it was
        compiled from; when present, witnesses are decoded into domain
        objects (assignments, paths, mappings, ...) and ``instance`` is
        available to source-specific backends (e.g. Karp–Luby).
    source:
        A kind tag (``"regex"``, ``"dnf"``, ``"rpq"``, ...) used by
        backends to state applicability and by reports.
    delta, params, rng:
        Default FPRAS accuracy, parameters and randomness for the
        approximate/randomized routes.
    store:
        A :class:`~repro.service.store.KernelStore` for cross-process
        kernel persistence.  ``None`` (the default) consults the
        process-default store (the ``$REPRO_KERNEL_STORE`` environment
        switch); pass ``False`` to disable persistence explicitly.  With
        a store attached, compiled kernels are snapshotted on build and
        restored on later constructions of the same instance — a warm
        process answers its first query with zero lowering work.
    kernel_backend:
        Kernel execution backend: ``"pure"`` (the canonical Python
        path), ``"numpy"`` / ``"auto"`` (vectorized CSR sweeps when
        NumPy is importable, silently falling back to pure otherwise).
        ``None`` consults ``$REPRO_KERNEL_BACKEND``.  Results are
        bit-identical across backends — the choice is purely speed.
    """

    def __init__(
        self,
        nfa: NFA | Plan | None,
        n: int,
        *,
        plan: Plan | None = None,
        relation: AutomatonBackedRelation | None = None,
        instance=None,
        source: str = "nfa",
        delta: float = 0.1,
        params: FprasParameters | None = None,
        rng: random.Random | int | None = None,
        store=None,
        kernel_backend: str | None = None,
    ):
        if n < 0:
            raise ValueError("witness length must be ≥ 0")
        if isinstance(nfa, Plan) and plan is None:
            nfa, plan = None, nfa
        if nfa is None and plan is None:
            raise InvalidRelationInputError("a WitnessSet needs an NFA or a plan")
        self.nfa = nfa
        self.plan = plan
        self.n = n
        self.relation = relation
        self.instance = instance
        self.source = source
        self.delta = delta
        self.params = params
        self.rng = make_rng(rng)
        if store is None:
            # Probe the env switch before importing anything: plain
            # library use without $REPRO_KERNEL_STORE never loads the
            # service stack.
            if os.environ.get("REPRO_KERNEL_STORE"):
                from repro.service.store import default_store

                store = default_store()
        elif store is False:
            store = None
        self.store = store
        # Resolve the execution backend eagerly: an unknown name raises
        # here, not on the first hot-path query.  None consults
        # $REPRO_KERNEL_BACKEND (default: the canonical pure path).
        from repro.core import accel as _accel_mod

        self._accel = _accel_mod.resolve(kernel_backend)
        self.stats = CacheStats()
        self._cache: dict = {}
        #: Cumulative wall time spent lowering (building) kernels for
        #: this witness set; 0.0 when every kernel came from the store.
        self._lowering_seconds = 0.0

    # ------------------------------------------------------------------
    # The cache: every expensive artifact goes through here exactly once.
    # ------------------------------------------------------------------

    def _cached(self, key, build):
        if key in self._cache:
            self.stats.record(key, hit=True)
            return self._cache[key]
        self.stats.record(key, hit=False)
        value = build()
        self._cache[key] = value
        return value

    @property
    def stripped(self) -> NFA:
        """The ε-free trimmed automaton the *eager* algorithms consume.

        On a plan-backed witness set this **materializes** the plan's
        reachable fragment (the eager product cost the lazy pipeline
        otherwise avoids); only the ambiguous-instance fallbacks (FPRAS,
        subset counting, polynomial-delay enumeration) and
        :meth:`contains` on relation-free sets ever need it.
        """
        if self.plan is not None:
            return self._cached("stripped", lambda: self.plan.to_nfa().trim())
        return self._cached("stripped", lambda: self.nfa.without_epsilon().trim())

    def fingerprint(self) -> str:
        """Stable content fingerprint of the language source.

        The canonical SHA-256 of the automaton / plan
        (:func:`repro.service.fingerprint.fingerprint_source`): identical
        across processes, platforms and hash seeds, so it addresses
        kernels in the on-disk :class:`~repro.service.store.KernelStore`
        and routes requests in the service engine.  Covers the source
        only — compose with ``n`` for per-length artifacts.  Raises
        :class:`~repro.service.fingerprint.FingerprintError` when states
        or symbols have no canonical serialization.
        """
        from repro.service.fingerprint import fingerprint_source

        return self._cached(
            "fingerprint",
            lambda: fingerprint_source(
                self.plan if self.plan is not None else self.nfa
            ),
        )

    def _store_key(self):
        """``(store, fingerprint)`` when persistence is usable, else
        ``(None, None)`` — unfingerprintable sources opt out silently."""
        if self.store is None:
            return None, None
        from repro.service.fingerprint import FingerprintError

        try:
            return self.store, self.fingerprint()
        except FingerprintError:
            return None, None

    @property
    def is_unambiguous(self) -> bool:
        """The class-membership certificate (RelationUL vs RelationNL).

        Plan-backed sets run the self-product check on the lazy
        interface — only the forward-reachable pairs of the product's
        self-product are ever expanded, never the operand automaton.
        With a kernel store attached, the certificate is persisted per
        fingerprint (it is a property of the source, not of ``n``), so
        warm processes skip the self-product walk too.
        """

        def build() -> bool:
            store, fp = self._store_key()
            if store is not None:
                meta = store.get_meta(fp)
                if meta is not None and "unambiguous" in meta:
                    return meta["unambiguous"]
            value = is_unambiguous(
                self.plan if self.plan is not None else self.stripped
            )
            if store is not None:
                store.put_meta(fp, {"unambiguous": value})
            return value

        return self._cached("unambiguous", build)

    @property
    def nonempty(self) -> bool:
        """Exact emptiness test (a reachability check, Lemma 15)."""

        def build() -> bool:
            if self.plan is not None or "kernel" in self._cache:
                return not self.kernel.is_empty
            store, fp = self._store_key()
            if store is not None:
                # A warm store answers from the snapshot (and primes the
                # kernel cache); a cold miss falls through to the cheap
                # reachability walk rather than forcing a full compile.
                restored = store.get(
                    fp, self.n, True, source_resolver=self._source_resolver()
                )
                if restored is not None:
                    self._cache.setdefault("kernel", restored)
                    return not restored.is_empty
            return accepted_word_exists(self.stripped, self.n)

        return self._cached("nonempty", build)

    @property
    def dag(self) -> UnrolledDAG:
        """The Lemma 15 pruned unrolling, shared by enumerator and sampler.

        Plan-backed sets answer this with the lazily lowered kernel
        itself (it implements the full set-based adapter API)."""
        if self.plan is not None:
            return self.kernel
        return self._cached("dag", lambda: unroll_trimmed(self.stripped, self.n))

    @property
    def kernel(self) -> CompiledDAG:
        """The trimmed array-backed kernel every exact query executes on.

        One integer-indexed lowering (CSR edge arrays plus packed
        run-count tables), shared by ``count`` / ``sample`` /
        ``enumerate``; built exactly once per witness set.  Plan-backed
        sets lower the plan's forward-reachable, backward-useful
        fragment directly (:func:`repro.core.plan.lower_plan`) — no
        intermediate NFA; the lowering's
        :class:`~repro.core.plan.LoweringStats` are surfaced by
        :meth:`describe`.  With a kernel store attached, a snapshot of
        the same instance (any process) is restored instead of lowering.
        """
        return self._cached("kernel", lambda: self._load_or_build_kernel(trimmed=True))

    @property
    def _plan_adjacency(self) -> dict:
        """One successor memo shared by every lowering of this set's plan
        (trimmed + reachable kernels explore the same forward states)."""
        return self._cached("plan_adjacency", dict)

    @property
    def reachable_kernel(self) -> CompiledDAG:
        """The reachable-mode kernel (FPRAS sketches and length spectra).

        Kept separate from :attr:`kernel` because Lemma 15 pruning is
        relative to length ``n`` while the FPRAS's prefix sets and the
        spectrum's per-length finals need every reachable vertex.
        Supports in-place :meth:`~repro.core.kernel.CompiledDAG.
        extend_to` for spectra beyond ``n`` (plan-backed kernels extend
        by exploring further plan layers on demand; snapshot-restored
        kernels resolve their source lazily for the same purpose).
        """
        return self._cached(
            "reachable_kernel", lambda: self._load_or_build_kernel(trimmed=False)
        )

    def _source_resolver(self):
        """Zero-argument resolver a snapshot-restored kernel uses to reach
        the original transitions (only if it is later extended)."""
        if self.plan is not None:
            from repro.core.plan import _MemoSource

            return lambda: _MemoSource(self.plan, self._plan_adjacency)
        return lambda: self.stripped

    def _build_kernel(self, trimmed: bool) -> CompiledDAG:
        """The cold path: lower the plan / compile the automaton."""
        if self.plan is not None:
            return lower_plan(
                self.plan, self.n, trimmed=trimmed, adjacency=self._plan_adjacency
            )
        if trimmed:
            return CompiledDAG.from_unrolled(self.dag)
        return compile_nfa(self.stripped, self.n, trimmed=False)

    def _load_or_build_kernel(self, trimmed: bool) -> CompiledDAG:
        """Restore the kernel from the store, or build it and persist it.

        Snapshots are stored *with* the run-count table the mode's
        queries need (backward for the trimmed count/sample kernel,
        forward for the reachable spectrum/FPRAS kernel), so a warm
        process answers its first query from the snapshot alone.
        """
        store, fp = self._store_key()
        if store is not None:
            restored = store.get(
                fp, self.n, trimmed, source_resolver=self._source_resolver()
            )
            if restored is not None:
                restored.accel = self._accel
                return restored
        # Lowering (plan/NFA → compiled kernel) is the expensive build
        # step a kernel store exists to amortize; its wall time feeds the
        # per-stage histogram, the per-request trace, and describe().
        started = time.perf_counter()
        kernel = self._build_kernel(trimmed)
        elapsed = time.perf_counter() - started
        self._lowering_seconds += elapsed
        add_stage(metric_names.STAGE_LOWERING, elapsed)
        obs_metrics().histogram(metric_names.LOWERING_SECONDS).record(elapsed)
        kernel.accel = self._accel
        if store is not None:
            if trimmed:
                kernel.backward_counts()
            else:
                kernel.forward_counts()
            store.put(fp, self.n, trimmed, kernel)
        return kernel

    @property
    def backward_table(self) -> list:
        """Per-layer accepting-completion counts over :attr:`dag` (dict view)."""
        return self._cached("backward_table", lambda: self.kernel.backward_dicts())

    @property
    def exact_sampler(self) -> ExactUniformSampler:
        """The §5.3.3 sampler, executing on the cached compiled kernel.

        The sampler runs entirely on the kernel, so plan-backed sets
        never materialize an automaton for sampling."""
        return self._cached(
            "exact_sampler",
            lambda: ExactUniformSampler(
                self.nfa, self.n, check=False, kernel=self.kernel
            ),
        )

    def fpras_state(
        self,
        delta: float | None = None,
        rng: random.Random | int | None = None,
    ) -> FprasState:
        """The FPRAS sketch (Algorithm 5's preprocessing), cached per δ.

        Integer ``rng`` seeds get their own cache entry (reproducible
        pipelines); ``None`` / shared ``Random`` streams reuse the first
        sketch built at that δ.  Every sketch shares the cached
        :attr:`reachable_kernel`, so rebuilding at a different δ never
        re-unrolls the automaton.
        """
        resolved = delta if delta is not None else self.delta
        seed = rng if isinstance(rng, int) else None
        key = ("fpras", resolved, seed)
        generator = self.rng if rng is None else make_rng(rng)
        return self._cached(
            key,
            lambda: FprasState(
                self.stripped,
                self.n,
                delta=resolved,
                rng=generator,
                params=self.params,
                kernel=self.reachable_kernel,
            ),
        )

    # ------------------------------------------------------------------
    # COUNT
    # ------------------------------------------------------------------

    def count_exact(self) -> int:
        """Exact ``|W|``: run-count DP when unambiguous, subset counter
        otherwise (exponential worst case — use an approximate backend at
        scale)."""
        if self.is_unambiguous:
            # On the pruned kernel, runs = words; the backward table's
            # layer-0 total is the count, shared with the exact sampler.
            return self._cached("count_exact", lambda: self.kernel.total_runs)
        return self._cached(
            "count_exact", lambda: count_words_exact(self.stripped, self.n)
        )

    def count(
        self,
        backend: str | None = None,
        *,
        method: str | None = None,
        delta: float | None = None,
        epsilon: float | None = None,
        rng: random.Random | int | None = None,
        **options,
    ):
        """``|W|`` via a registered solver backend (default ``"exact"``).

        ``method=`` is an alias for ``backend=``; ``epsilon=`` for
        ``delta=`` (the FPRAS's relative-error bound).  Remaining keyword
        options are forwarded to the backend (e.g. ``samples=`` for
        ``montecarlo``).
        """
        if backend is not None and method is not None and backend != method:
            raise ValueError("pass either backend= or its alias method=, not both")
        name = backend or method or "exact"
        solver = _backends.get(name)
        solver.check_applicable(self)
        resolved_delta = delta if delta is not None else epsilon
        if not solver.exact:
            options["delta"] = resolved_delta
            options["rng"] = rng
        return solver.count(self, **options)

    def spectrum(self, max_length: int | None = None) -> dict[int, int]:
        """Exact ``{ℓ: |L_ℓ(N)|}`` for ``ℓ = 0..max_length`` (default n).

        The unambiguous route reads every length off the shared
        reachable kernel's forward table (extending it in place when
        ``max_length > n``) — one compilation for the whole sweep.
        """
        bound = self.n if max_length is None else max_length
        if self.is_unambiguous:
            def build():
                kernel = self.reachable_kernel
                kernel.extend_to(bound)
                spectrum = kernel.spectrum_counts()
                return {length: spectrum[length] for length in range(bound + 1)}

            return self._cached(("spectrum", bound), build)
        return self._cached(
            ("spectrum", bound),
            lambda: length_spectrum(
                self.stripped, range(bound + 1), exact_nfa=True
            ),
        )

    # ------------------------------------------------------------------
    # ENUM
    # ------------------------------------------------------------------

    def words(self, limit: int | None = None) -> Iterator[Word]:
        """Enumerate raw witness words (constant delay when unambiguous,
        polynomial delay otherwise), reusing the cached compiled kernel."""
        if self.is_unambiguous:
            iterator = enumerate_words_dag(self.kernel)
        else:
            iterator = enumerate_words_nfa(self.stripped, self.n)
        return iterator if limit is None else itertools.islice(iterator, limit)

    def enumerate(self, limit: int | None = None) -> Iterator:
        """Enumerate decoded witnesses (same delay guarantees)."""
        for w in self.words(limit=limit):
            yield self.decode(w)

    def enumerate_page(self, count: int, cursor=None) -> tuple[list, object]:
        """One resumable page: up to ``count`` decoded witnesses plus the
        cursor for the next page (``None`` when exhausted).

        This is the service layer's streamed-enumeration primitive: a
        client pages through a huge witness set chunk by chunk without
        the server ever materializing it.  Unambiguous sources resume in
        O(n) from an Algorithm 1 decision-point cursor
        (:func:`repro.core.enumeration.algorithm1_page`); ambiguous
        sources fall back to an integer offset cursor over the
        polynomial-delay flashlight enumeration (resuming re-walks the
        skipped prefix).  Cursors are opaque JSON-able values — pass
        them back verbatim; a corrupt or stale cursor raises
        ``ValueError`` rather than returning a wrong page.  Page
        boundaries never change the output: concatenating pages of any
        sizes equals :meth:`enumerate`.
        """
        if count < 0:
            raise ValueError("page size must be ≥ 0")
        if self.is_unambiguous:
            words, next_cursor = algorithm1_page(self.kernel, cursor, count)
            return [self.decode(w) for w in words], next_cursor
        if cursor is None:
            offset = 0
        elif isinstance(cursor, int) and not isinstance(cursor, bool) and cursor >= 0:
            offset = cursor
        else:
            raise ValueError("invalid enumeration cursor")
        iterator = self.words()
        skipped = sum(1 for _ in itertools.islice(iterator, offset))
        if skipped < offset:
            raise ValueError("invalid enumeration cursor")
        page = [self.decode(w) for w in itertools.islice(iterator, count)]
        if len(page) < count or next(iterator, None) is None:
            return page, None
        return page, offset + count

    # ------------------------------------------------------------------
    # GEN
    # ------------------------------------------------------------------

    def _sample_word_or_none(self, generator: random.Random) -> Word | None:
        if not self.nonempty:
            return None
        if self.is_unambiguous:
            return self.exact_sampler.sample(generator)
        state = self.fpras_state()
        for _ in range(DEFAULT_ATTEMPTS_PER_CALL):
            w = state.sample_witness(generator)
            if w is not None:
                return w
        raise GenerationFailedError(DEFAULT_ATTEMPTS_PER_CALL)

    def sample(
        self,
        k: int | None = None,
        rng: random.Random | int | None = None,
        *,
        seed: int | None = None,
    ):
        """Uniform witnesses: one (or ``None`` when ``W = ∅``) by default,
        a list of ``k`` independent draws when ``k`` is given (raising
        :class:`EmptyWitnessSetError` on an empty set, mirroring the
        batched samplers).

        ``seed=`` is an integer alias for ``rng=`` (the spelling the
        service protocol and the deprecated top-level shims use):
        ``sample(5, seed=7)`` and ``sample(5, rng=7)`` draw the identical
        stream.  ``rng`` additionally accepts a live ``random.Random`` to
        share a stream across calls; passing both is an error.
        """
        rng = _resolve_seed_alias(rng, seed)
        generator = self.rng if rng is None else make_rng(rng)
        if k is None:
            w = self._sample_word_or_none(generator)
            return None if w is None else self.decode(w)
        if k < 0:
            raise ValueError("sample count must be ≥ 0")
        if not self.nonempty:
            raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
        # Nonempty, so each draw yields a word (the NL path retries its
        # own rejection budget internally and raises on exhaustion).
        return [self.decode(self._sample_word_or_none(generator)) for _ in range(k)]

    def sample_batch(
        self,
        k: int,
        rng: random.Random | int | None = None,
        *,
        seed: int | None = None,
        use_substreams: bool = False,
    ) -> list:
        """``k`` uniform witnesses drawn in one table-guided kernel pass.

        Same distribution as :meth:`sample` with ``k`` (each draw walks
        the identical chain), but the unambiguous route groups the
        in-flight samples by vertex per layer so the per-vertex weight
        lookups are paid once per layer instead of once per draw —
        the bulk-generation API.  Ambiguous sources fall back to ``k``
        independent Las Vegas draws.

        With ``use_substreams=True``, draw ``i`` consumes the ``i``-th
        deterministic substream of the seed
        (:func:`repro.utils.rng.spawn_seq`) instead of one shared
        stream: each draw's result then depends only on ``(seed, i)``,
        never on how draws are grouped, coalesced with other requests,
        or scheduled across worker processes — the service protocol's
        reproducibility mode.  (When ``rng`` is a live shared generator
        — or omitted — the parent is ticked once after deriving the
        streams, so *repeated* calls still produce fresh batches; an
        integer seed gives the same batch every time, as a seed should.)

        ``seed=`` is an integer alias for ``rng=`` (see :meth:`sample`).
        """
        if k < 0:
            raise ValueError("sample count must be ≥ 0")
        rng = _resolve_seed_alias(rng, seed)
        generator = self.rng if rng is None else make_rng(rng)
        if not self.nonempty:
            raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
        if use_substreams:
            streams = substreams(generator, k)
            if rng is None or isinstance(rng, random.Random):
                generator.getrandbits(32)  # advance the shared stream
            return self.sample_with_streams(streams)
        if self.is_unambiguous:
            words = self.exact_sampler.sample_batch(k, generator)
            return [self.decode(w) for w in words]
        return [self.decode(self._sample_word_or_none(generator)) for _ in range(k)]

    def sample_with_streams(self, streams: list) -> list:
        """One kernel pass drawing ``len(streams)`` witnesses, draw ``i``
        consuming only ``streams[i]``.

        The coalescing primitive behind the service layer: requests for
        the same witness set are merged into a single table-guided pass,
        and because each draw owns its stream, every request's results
        are identical to serving it alone (see
        :meth:`~repro.core.kernel.CompiledDAG.sample_batch`).
        """
        if not streams:
            return []
        if not self.nonempty:
            raise EmptyWitnessSetError(f"no witnesses of length {self.n}")
        if self.is_unambiguous:
            words = self.exact_sampler.sample_batch(len(streams), list(streams))
            return [self.decode(w) for w in words]
        return [self.decode(self._sample_word_or_none(g)) for g in streams]

    # ------------------------------------------------------------------
    # Witness codec and reports
    # ------------------------------------------------------------------

    def decode(self, w: Word):
        """Automaton word → domain witness (identity without a relation)."""
        if self.relation is None:
            return w
        return self.relation.decode_witness(self.instance, w)

    def encode(self, witness) -> Word:
        """Domain witness → automaton word (identity without a relation)."""
        if self.relation is None:
            return witness
        return self.relation.encode_witness(self.instance, witness)

    def contains(self, witness) -> bool:
        """Membership ``witness ∈ W`` (the p-relation check).

        Plan-backed sets answer by on-the-fly subset simulation over the
        plan — no materialization."""
        w = self.encode(witness)
        if len(w) != self.n:
            return False
        if self.plan is not None:
            return self.plan.accepts(w)
        return self.stripped.accepts(w)

    def describe(self) -> dict:
        """Automaton facts for reports and ``repro inspect``.

        Plan-backed sets report the symbolic plan's shape and the
        lowering statistics instead of materialized-automaton facts:
        ``states`` / ``transitions`` are the compiled kernel's vertex and
        edge counts, and ``lowering`` shows how many product states the
        lazy exploration touched (``explored_states`` /
        ``reached_states``) against the ``nominal_states`` cross-product
        size the eager pipeline would have allocated — the blow-up
        avoided.

        ``kernel_backend`` names the accelerated backend in use (or
        ``"pure"``), and ``lowering_seconds`` is the cumulative wall
        time this set spent building kernels — the in-process view of
        the ``repro_lowering_seconds`` metric; ``0.0`` means every
        kernel so far came off the store.
        """
        info = {
            "source": self.source,
            "length": self.n,
            "unambiguous": self.is_unambiguous,
            "class": "RelationUL" if self.is_unambiguous else "RelationNL",
            "kernel_backend": (
                self._accel.name if self._accel is not None else "pure"
            ),
            # Cumulative wall time this set spent building kernels;
            # 0.0 means every kernel so far was restored from the store
            # (or none has been needed yet).
            "lowering_seconds": self._lowering_seconds,
        }
        if self.plan is not None:
            kernel = self.kernel

            def shape() -> tuple[int, int]:
                # Distinct product states/transitions in the compiled
                # kernel: the analog of the eager route's trimmed
                # automaton size, so the numbers stay comparable across
                # sources (per-layer unrolled sizes are in
                # lowering.kernel_vertices/_edges).
                states: set = set(kernel.layer_states(kernel.n))
                transitions: set = set()
                for t in range(kernel.n):
                    for state in kernel.layer_states(t):
                        states.add(state)
                        for symbol, target in kernel.successors(t, state):
                            transitions.add((state, symbol, target))
                return len(states), len(transitions)

            num_states, num_transitions = self._cached("plan_shape", shape)
            info.update(
                {
                    "plan": self.plan.describe(),
                    "states": num_states,
                    "transitions": num_transitions,
                    "alphabet": self.plan.alphabet,
                    "lowering": (
                        kernel.lowering.as_dict()
                        if kernel.lowering is not None
                        else None
                    ),
                }
            )
            return info
        stripped = self.stripped
        info.update(
            {
                "states": stripped.num_states,
                "transitions": stripped.num_transitions,
                "alphabet": stripped.alphabet,
            }
        )
        return info

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        if self.plan is not None:
            return (
                f"<WitnessSet source={self.source!r} n={self.n} "
                f"plan={self.plan.describe()}>"
            )
        return (
            f"<WitnessSet source={self.source!r} n={self.n} "
            f"states={self.nfa.num_states}>"
        )

    # ------------------------------------------------------------------
    # Uniform constructors: one per application domain
    # ------------------------------------------------------------------

    @classmethod
    def from_nfa(cls, nfa: NFA, n: int, **kwargs) -> "WitnessSet":
        """Wrap a raw automaton: witnesses are ``L_n(nfa)`` verbatim."""
        kwargs.setdefault("source", "nfa")
        return cls(nfa, n, **kwargs)

    @classmethod
    def from_plan(cls, plan, n: int, **kwargs) -> "WitnessSet":
        """Wrap a symbolic :class:`~repro.core.plan.Plan`: witnesses are
        the length-``n`` words of the plan's language.

        The plan is lowered lazily: counting, sampling, enumeration and
        spectra compile only the forward-reachable (and backward-useful)
        product fragment straight into the array kernel — the composed
        automaton is never materialized unless an ambiguous-instance
        fallback requires it.  Lowered kernels are cached per plan on
        this witness set (``ws.stats`` records the hits and misses under
        the ``"kernel"`` / ``"reachable_kernel"`` keys, as for NFA-backed
        sets).
        """
        kwargs.setdefault("source", "plan")
        return cls(None, n, plan=as_plan(plan), **kwargs)

    @classmethod
    def from_intersection(cls, left, right, n: int, **kwargs) -> "WitnessSet":
        """The witnesses two patterns *share*: ``L_n(left) ∩ L_n(right)``.

        ``left`` / ``right`` may be NFAs, regex strings or plans; the
        intersection is a lazy :class:`~repro.core.plan.Product` — no
        product automaton is built, only the reachable fragment of the
        pair graph is explored at query time.  This is the
        ``--intersect`` CLI workload: count / sample / enumerate the
        strings on which two patterns agree.
        """
        kwargs.setdefault("source", "intersection")
        return cls.from_plan(Product(as_plan(left), as_plan(right)), n, **kwargs)

    @classmethod
    def from_regex(
        cls, pattern: str, n: int, alphabet=None, **kwargs
    ) -> "WitnessSet":
        """The headline use case: length-``n`` strings of a regex."""
        alphabet_list = list(alphabet) if alphabet is not None else None
        kwargs.setdefault("source", "regex")
        return cls(compile_regex(pattern, alphabet=alphabet_list), n, **kwargs)

    @classmethod
    def from_dnf(cls, formula, via_transducer: bool = False, **kwargs) -> "WitnessSet":
        """Satisfying assignments of a DNF formula (§3; Karp–Luby-capable).

        ``formula`` is a :class:`~repro.dnf.DNFFormula` or the textual
        ``"x0 & !x2 | x1"`` syntax of :func:`repro.dnf.parse_dnf`.
        """
        from repro.dnf.formulas import DNFFormula, parse_dnf
        from repro.dnf.relation import SatDnfRelation

        if isinstance(formula, str):
            formula = parse_dnf(formula)
        if not isinstance(formula, DNFFormula):
            raise InvalidRelationInputError(
                f"expected a DNFFormula or DNF text, got {type(formula).__name__}"
            )
        relation = SatDnfRelation(via_transducer=via_transducer)
        compiled = relation.compile(formula)
        kwargs.setdefault("source", "dnf")
        return cls(
            compiled.nfa,
            compiled.length,
            relation=relation,
            instance=formula,
            **kwargs,
        )

    @classmethod
    def from_obdd(cls, diagram, **kwargs) -> "WitnessSet":
        """Models of an OBDD (Corollary 9) or nOBDD (Corollary 10)."""
        from repro.bdd.nobdd import NOBDD, EvalNobddRelation
        from repro.bdd.obdd import OBDD, EvalObddRelation

        if isinstance(diagram, OBDD):
            relation, source = EvalObddRelation(), "obdd"
        elif isinstance(diagram, NOBDD):
            relation, source = EvalNobddRelation(), "nobdd"
        else:
            raise InvalidRelationInputError(
                f"expected an OBDD or NOBDD, got {type(diagram).__name__}"
            )
        compiled = relation.compile(diagram)
        kwargs.setdefault("source", source)
        return cls(
            compiled.nfa,
            compiled.length,
            relation=relation,
            instance=diagram,
            **kwargs,
        )

    @classmethod
    def from_rpq(
        cls,
        graph,
        query,
        source,
        target,
        n: int,
        deterministic_query: bool = False,
        **kwargs,
    ) -> "WitnessSet":
        """Length-``n`` paths ``source → target`` conforming to ``query``
        (§4.2, Corollary 8); witnesses decode to :class:`~repro.graphdb.Path`.

        Compiles to a lazy :class:`~repro.core.plan.GraphProduct` plan:
        the ``G × A_R`` product is lowered on the fly, so only the
        product states reachable from ``(source, q₀)`` within ``n``
        steps are ever allocated — the big-graph RPQ fast path.

        ``deterministic_query=True`` determinizes the query automaton so
        the product is unambiguous and the exact suite applies.
        """
        from repro.graphdb.rpq import RPQ, EvalRpqRelation, compile_rpq_plan

        if isinstance(query, str):
            query = RPQ(query)
        plan = compile_rpq_plan(graph, query, source, target, deterministic_query)
        kwargs.setdefault("source", "rpq")
        return cls.from_plan(
            plan,
            n,
            relation=EvalRpqRelation(),
            instance=(query, n, graph, source, target),
            **kwargs,
        )

    @classmethod
    def from_spanner(cls, eva, document: str, **kwargs) -> "WitnessSet":
        """Mappings ``⟦A⟧(d)`` of a functional eVA over a document
        (§4.1, Corollaries 6–7); witnesses decode to ``Mapping`` objects.

        Compiles to a lazy :class:`~repro.core.plan.DocProduct` plan —
        the Lemma 13 document product lowered on the fly, so only the
        ``(state, position)`` configurations a run can visit are ever
        allocated: the long-document spanner fast path."""
        from repro.spanners.evaluation import EvalEvaRelation, compile_eva_plan

        plan = compile_eva_plan(eva, document)
        kwargs.setdefault("source", "spanner")
        return cls.from_plan(
            plan,
            len(document) + 1,
            relation=EvalEvaRelation(),
            instance=(eva, document),
            **kwargs,
        )

    @classmethod
    def from_cfg(cls, grammar, n: int, limit: int = 100_000, **kwargs) -> "WitnessSet":
        """Length-``n`` words of a CNF grammar, via explicit
        materialization into a trie UFA.

        CFGs lie outside the paper's automaton classes (this is the
        [GJK+97] setting); the constructor exists for API uniformity on
        instance sizes where the length-``n`` slice is materializable —
        the trie is deterministic, so the exact RelationUL suite applies.
        """
        try:
            words = grammar.words_of_length(n, limit=limit)
        except InvalidRelationInputError as error:
            raise InvalidRelationInputError(
                f"the grammar's length-{n} slice exceeds {limit} words; "
                "from_cfg materializes the slice and is meant for small instances"
            ) from error
        alphabet = set(grammar.terminals) or {"∅"}
        states: set = {()}
        transitions: set = set()
        for w in words:
            for i in range(n):
                states.add(w[: i + 1])
                transitions.add((w[:i], w[i], w[: i + 1]))
        trie = NFA(states, alphabet, transitions, (), set(words))
        kwargs.setdefault("source", "cfg")
        return cls(trie, n, instance=grammar, **kwargs)

    @classmethod
    def from_compiled(
        cls,
        relation: AutomatonBackedRelation,
        instance,
        compiled: CompiledInstance | None = None,
        **kwargs,
    ) -> "WitnessSet":
        """Escape hatch: wrap any :class:`AutomatonBackedRelation`."""
        compiled = compiled or relation.compile(instance)
        kwargs.setdefault("source", getattr(relation, "name", "relation"))
        return cls(
            compiled.nfa,
            compiled.length,
            relation=relation,
            instance=instance,
            **kwargs,
        )


# ----------------------------------------------------------------------
# The process-wide shared cache behind the deprecated free functions
# ----------------------------------------------------------------------

_SHARED_MAXSIZE = 64
_shared_cache: "OrderedDict[tuple, WitnessSet]" = OrderedDict()


def shared(nfa: NFA, n: int, delta: float = 0.1) -> WitnessSet:
    """The memoized ``(nfa, n, δ) → WitnessSet`` map (bounded LRU).

    NFAs compare by value, so two structurally identical automata share
    one entry.  This is what makes the legacy free functions O(1) after
    their first call on a given automaton.
    """
    key = (nfa, n, delta)
    ws = _shared_cache.get(key)
    if ws is not None:
        _shared_cache.move_to_end(key)
        return ws
    ws = WitnessSet(nfa, n, delta=delta)
    _shared_cache[key] = ws
    while len(_shared_cache) > _SHARED_MAXSIZE:
        _shared_cache.popitem(last=False)
    return ws


def shared_cache_clear() -> None:
    """Drop every shared entry (tests and long-running processes)."""
    _shared_cache.clear()


__all__ = ["WitnessSet", "CacheStats", "shared", "shared_cache_clear"]
