"""Pluggable solver-backend registry for :class:`repro.api.WitnessSet`.

The paper's pipeline is one architecture with several interchangeable
counting strategies: the exact algorithms of RelationUL, the FPRAS of
Theorem 22, and the baselines it is measured against (naive Monte Carlo,
the KSM95-style quasi-polynomial schedule, Karp–Luby for DNF).  This
module makes those strategies first-class *backends*: named objects a
:class:`~repro.api.WitnessSet` dispatches to via ``ws.count(backend=...)``,
so benchmarks and callers select a strategy by name and new strategies
(parallel, sharded, approximate-with-different-guarantees) plug in
without touching the facade.

Built-in backends
-----------------

==============  =======  ==============================================
name            exact    strategy
==============  =======  ==============================================
``exact``       yes      run-count DP (unambiguous) / subset counter
``naive``       yes      brute-force word enumeration (ground truth)
``fpras``       no       the paper's #NFA FPRAS (Theorem 22)
``montecarlo``  no       §6.1 path-sampling estimator (fixed budget)
``kannan``      no       the same estimator at the KSM95 schedule
``karp_luby``   no       the classical DNF FPRAS [KL83] (DNF sources)
==============  =======  ==============================================

Registering a custom backend::

    from repro import backends

    class MyBackend(backends.SolverBackend):
        name = "mine"
        def count(self, witness_set, **options):
            return ...

    backends.register(MyBackend())
    ws.count(backend="mine")
"""

from __future__ import annotations

import random

from repro.errors import BackendError, UnknownBackendError
from repro.utils.rng import make_rng


class SolverBackend:
    """One counting strategy, dispatchable by name.

    Subclasses set :attr:`name`, optionally :attr:`exact` (whether
    :meth:`count` returns exact integers rather than estimates) and
    :attr:`requires_source` (a :attr:`WitnessSet.source` kind the backend
    is restricted to, e.g. ``"dnf"`` for Karp–Luby), and implement
    :meth:`count`.

    Backends execute on the witness set's compiled kernel
    (:class:`~repro.core.kernel.CompiledDAG`): the facade caches a
    trimmed kernel (``witness_set.kernel``) and a reachable-mode one
    (``witness_set.reachable_kernel``), and automaton-walking strategies
    should consume those instead of re-unrolling.  A caller holding its
    own compilation can override per call via the ``kernel=`` option
    (accepted by the built-in ``exact``, ``fpras`` and ``montecarlo``
    backends).

    Orthogonally to the *counting strategy* chosen here, every kernel
    carries its own *execution backend* (pure Python or the NumPy
    vectorized path, see :mod:`repro.core.accel`): the facade's
    ``kernel_backend=`` selection flows through its cached kernels into
    whichever solver backend runs on them, with bit-identical results.
    """

    #: Registry key; also what callers pass as ``backend=``.
    name: str = "backend"
    #: True when :meth:`count` returns the exact count.
    exact: bool = False
    #: Restrict to witness sets of this :attr:`~repro.api.WitnessSet.source`
    #: kind (``None`` = applicable to every witness set).
    requires_source: str | None = None

    def count(self, witness_set, **options):
        """Count (or estimate) ``|W|`` for the given witness set."""
        raise NotImplementedError

    def check_applicable(self, witness_set) -> None:
        """Raise :class:`BackendError` when this backend cannot run."""
        if self.requires_source is not None and witness_set.source != self.requires_source:
            raise BackendError(
                f"backend {self.name!r} requires a {self.requires_source!r}-sourced "
                f"witness set, got source {witness_set.source!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        kind = "exact" if self.exact else "approximate"
        return f"<SolverBackend {self.name!r} ({kind})>"


def _check_kernel(witness_set, kernel, trimmed: bool) -> None:
    """Reject a ``kernel=`` override that does not match the witness set.

    Kernels carry their own length and automaton (and reachable-mode
    kernels can be extended in place), so counting at ``kernel.n``
    instead of ``witness_set.n`` would be silently wrong.  Plan-lowered
    kernels carry a symbolic source instead of an NFA; those are checked
    by plan *identity* against the witness set's plan (comparing
    languages would force the materialization the plan route exists to
    avoid), so a kernel lowered from one plan cannot be replayed against
    a witness set built over another.
    """
    if kernel.n != witness_set.n:
        raise BackendError(
            f"kernel mismatch: compiled for n={kernel.n} but the witness set "
            f"has n={witness_set.n}"
        )
    _check_kernel_source(witness_set, kernel)
    if kernel.trimmed != trimmed:
        mode = "trimmed" if trimmed else "reachable-mode"
        raise BackendError(f"this backend needs a {mode} kernel")


def _check_kernel_source(witness_set, kernel) -> None:
    """Reject a kernel built from a different automaton or plan.

    The facade's own cached kernels pass by identity.  NFA-compiled
    kernels compare automata by value, plan-lowered ones by plan
    identity.  Snapshot-restored kernels (whose source is a store
    stand-in) are verified by content fingerprint — the address they
    were stored under must equal the witness set's own fingerprint.
    """
    cache = getattr(witness_set, "_cache", {})
    if kernel is cache.get("kernel") or kernel is cache.get("reachable_kernel"):
        return
    from repro.automata.nfa import NFA

    source = kernel.nfa
    if isinstance(source, NFA):
        if source != witness_set.stripped:
            raise BackendError("kernel mismatch: compiled from a different automaton")
        return
    plan = getattr(source, "plan", None)
    if plan is not None:
        if plan is not witness_set.plan:
            raise BackendError("kernel mismatch: lowered from a different plan")
        return
    fingerprint = getattr(kernel, "fingerprint", None)
    if fingerprint is not None:
        from repro.service.fingerprint import FingerprintError

        try:
            if fingerprint == witness_set.fingerprint():
                return
        except FingerprintError:
            pass
        raise BackendError(
            "kernel mismatch: snapshot restored from a different source"
        )
    raise BackendError(
        "kernel source cannot be verified against this witness set "
        "(snapshot restored without its store fingerprint)"
    )


_REGISTRY: dict[str, SolverBackend] = {}


def register(backend: SolverBackend, replace: bool = False) -> SolverBackend:
    """Add ``backend`` to the registry under ``backend.name``.

    Returns the backend (usable as a class decorator on instances).
    Raises :class:`BackendError` on name collisions unless ``replace``.
    """
    if not isinstance(backend, SolverBackend):
        raise BackendError(
            f"backends must be SolverBackend instances, got {type(backend).__name__}"
        )
    if backend.name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {backend.name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[backend.name] = backend
    return backend


def unregister(name: str) -> None:
    """Remove a backend (no-op when absent) — test/plugin hygiene."""
    _REGISTRY.pop(name, None)


def get(name: str) -> SolverBackend:
    """Look up a backend by name; unknown names raise with the listing."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, available=tuple(_REGISTRY)) from None


def available() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------


class ExactBackend(SolverBackend):
    """The paper's exact route: run-count DP over the compiled kernel
    when unambiguous, else the subset-construction counter (exponential
    worst case)."""

    name = "exact"
    exact = True

    def count(self, witness_set, kernel=None, **options):
        if kernel is not None and witness_set.is_unambiguous:
            # Runs = words on an unambiguous trimmed kernel; the caller's
            # compilation replaces the facade's cached one.
            _check_kernel(witness_set, kernel, trimmed=True)
            return kernel.total_runs
        return witness_set.count_exact()


class NaiveBackend(SolverBackend):
    """Brute-force enumeration — the ground-truth oracle for small sets."""

    name = "naive"
    exact = True

    def count(self, witness_set, **options):
        from repro.baselines.naive import brute_force_count

        return brute_force_count(witness_set.stripped, witness_set.n)


class FprasBackend(SolverBackend):
    """Theorem 22's #NFA FPRAS, reusing the witness set's cached sketch
    (which itself executes on the cached reachable-mode kernel)."""

    name = "fpras"

    def count(
        self,
        witness_set,
        delta: float | None = None,
        rng: random.Random | int | None = None,
        kernel=None,
        **options,
    ):
        if kernel is not None:
            from repro.core.fpras import FprasState

            # FprasState validates length (≥ n) and reachable mode
            # itself; the backend adds the same-source guard.
            _check_kernel_source(witness_set, kernel)
            return FprasState(
                witness_set.stripped,
                witness_set.n,
                delta=delta if delta is not None else witness_set.delta,
                rng=make_rng(rng) if rng is not None else witness_set.rng,
                params=witness_set.params,
                kernel=kernel,
            ).count_estimate
        return witness_set.fpras_state(delta=delta, rng=rng).count_estimate


class MonteCarloBackend(SolverBackend):
    """The §6.1 unbiased path-sampling estimator at a fixed budget."""

    name = "montecarlo"

    def count(
        self,
        witness_set,
        samples: int = 2000,
        rng: random.Random | int | None = None,
        kernel=None,
        **options,
    ):
        from repro.baselines.montecarlo import naive_montecarlo_count

        if kernel is not None:
            _check_kernel(witness_set, kernel, trimmed=True)
        estimate = naive_montecarlo_count(
            witness_set.stripped,
            witness_set.n,
            samples=samples,
            rng=make_rng(rng),
            kernel=kernel if kernel is not None else witness_set.kernel,
        )
        return estimate.estimate


class KannanBackend(SolverBackend):
    """The KSM95-style comparator: the same estimator at the
    quasi-polynomial sampling schedule."""

    name = "kannan"

    def count(
        self,
        witness_set,
        delta: float | None = None,
        rng: random.Random | int | None = None,
        **options,
    ):
        from repro.baselines.kannan import kannan_style_count

        estimate = kannan_style_count(
            witness_set.stripped,
            witness_set.n,
            delta=delta if delta is not None else witness_set.delta,
            rng=make_rng(rng),
            **options,
        )
        return estimate.estimate


class KarpLubyBackend(SolverBackend):
    """The classical DNF FPRAS [KL83]; needs the source formula, so it is
    restricted to witness sets built by :meth:`WitnessSet.from_dnf`."""

    name = "karp_luby"
    requires_source = "dnf"

    def count(
        self,
        witness_set,
        delta: float | None = None,
        rng: random.Random | int | None = None,
        **options,
    ):
        from repro.baselines.karp_luby import karp_luby_count

        return karp_luby_count(
            witness_set.instance,
            delta=delta if delta is not None else witness_set.delta,
            rng=make_rng(rng),
            **options,
        )


for _backend in (
    ExactBackend(),
    NaiveBackend(),
    FprasBackend(),
    MonteCarloBackend(),
    KannanBackend(),
    KarpLubyBackend(),
):
    register(_backend)


__all__ = [
    "SolverBackend",
    "register",
    "unregister",
    "get",
    "available",
    "ExactBackend",
    "NaiveBackend",
    "FprasBackend",
    "MonteCarloBackend",
    "KannanBackend",
    "KarpLubyBackend",
]
