"""Ordered binary decision diagrams and their RelationUL compilation.

An OBDD ``D`` is a rooted DAG: internal nodes test a variable and branch
to ``lo`` (value 0) / ``hi`` (value 1); the two sinks are labelled 0 and
1.  Variables respect a global order along every path, but a path need
not test every variable — skipped variables are unconstrained.

Compilation to MEM-UFA (Corollary 9): an assignment over the ordered
variables ``x₁ < … < xₙ`` is a length-``n`` binary word.  The automaton's
states are ``(node, level)`` pairs:

* at level ``i``, if the node tests ``x_{i+1}``, bits 0/1 move to
  ``(lo, i+1)`` / ``(hi, i+1)``;
* if the node tests a later variable (or is the 1-sink), the skipped
  variable is free: both bits loop to ``(node, i+1)``;
* accepting state: ``(1-sink, n)``.

The automaton is *deterministic*, hence unambiguous, so the full
RelationUL suite applies: constant-delay model enumeration, exact model
counting, exact uniform model sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.automata.nfa import NFA, Word
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.errors import InvalidAutomatonError

TERMINAL_TRUE = "⊤"
TERMINAL_FALSE = "⊥"


@dataclass(frozen=True)
class OBDDNode:
    """An internal OBDD node: test ``var``, branch to ``lo`` / ``hi``.

    ``lo``/``hi`` are node ids (other internal nodes or the terminals).
    """

    var: str
    lo: object
    hi: object


class OBDD:
    """An ordered BDD over the variable order ``order``.

    Parameters
    ----------
    nodes:
        ``{node_id: OBDDNode}``; ids are arbitrary hashables distinct from
        the two terminal sentinels.
    root:
        The initial node id (may itself be a terminal for constant
        functions).
    order:
        The global variable order ``x₁ < x₂ < …``; every path must test a
        strictly increasing subsequence of it (validated).
    """

    def __init__(self, nodes: Mapping[object, OBDDNode], root, order: Sequence[str]):
        self.nodes = dict(nodes)
        self.root = root
        self.order = tuple(order)
        self._rank = {variable: index for index, variable in enumerate(self.order)}
        if len(self._rank) != len(self.order):
            raise InvalidAutomatonError("variable order contains duplicates")
        self._validate()

    def _validate(self) -> None:
        for node_id, node in self.nodes.items():
            if node_id in (TERMINAL_TRUE, TERMINAL_FALSE):
                raise InvalidAutomatonError("terminal sentinel used as a node id")
            if node.var not in self._rank:
                raise InvalidAutomatonError(f"node {node_id!r} tests unknown variable {node.var!r}")
            for child in (node.lo, node.hi):
                if child in (TERMINAL_TRUE, TERMINAL_FALSE):
                    continue
                if child not in self.nodes:
                    raise InvalidAutomatonError(f"dangling child {child!r} of node {node_id!r}")
                if self._rank[self.nodes[child].var] <= self._rank[node.var]:
                    raise InvalidAutomatonError(
                        f"order violation: {node.var!r} → {self.nodes[child].var!r}"
                    )
        if self.root not in self.nodes and self.root not in (TERMINAL_TRUE, TERMINAL_FALSE):
            raise InvalidAutomatonError("root is neither a node nor a terminal")

    @property
    def num_variables(self) -> int:
        return len(self.order)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """D(σ) ∈ {0, 1} by following the assignment from the root."""
        current = self.root
        while current not in (TERMINAL_TRUE, TERMINAL_FALSE):
            node = self.nodes[current]
            value = assignment[node.var]
            current = node.hi if value else node.lo
        return 1 if current == TERMINAL_TRUE else 0

    def evaluate_word(self, w: Word) -> int:
        """Evaluate on a word over {'0','1'} in variable order."""
        if len(w) != self.num_variables:
            raise ValueError("word length must equal the number of variables")
        assignment = {variable: int(bit) for variable, bit in zip(self.order, w)}
        return self.evaluate(assignment)

    # ------------------------------------------------------------------

    def to_nfa(self) -> NFA:
        """The deterministic level-tracking automaton (see module docstring)."""
        n = self.num_variables
        states: set = set()
        transitions: list[tuple] = []

        def level_of(node_id) -> int | None:
            """Variable rank the node tests; None for terminals."""
            if node_id in (TERMINAL_TRUE, TERMINAL_FALSE):
                return None
            return self._rank[self.nodes[node_id].var]

        initial = (self.root, 0)
        frontier = [initial]
        states.add(initial)
        while frontier:
            node_id, level = frontier.pop()
            if level == n:
                continue
            if node_id == TERMINAL_FALSE:
                continue  # dead branch: never accepts
            rank = level_of(node_id)
            if rank is not None and rank == level:
                node = self.nodes[node_id]
                branch_pairs = (("0", node.lo), ("1", node.hi))
            else:
                # Terminal-1 below, or a node testing a later variable:
                # the current variable is free.
                branch_pairs = (("0", node_id), ("1", node_id))
            for bit, child in branch_pairs:
                if child == TERMINAL_FALSE:
                    continue
                target = (child, level + 1)
                transitions.append(((node_id, level), bit, target))
                if target not in states:
                    states.add(target)
                    frontier.append(target)
        finals = {(TERMINAL_TRUE, n)} & states
        return NFA(states, ("0", "1"), transitions, initial, finals).trim()

    def satisfying_assignments_brute(self) -> list[dict]:
        """All models by truth-table sweep (exponential; tests only)."""
        out = []
        n = self.num_variables
        for mask in range(2**n):
            assignment = {
                variable: (mask >> index) & 1 for index, variable in enumerate(self.order)
            }
            if self.evaluate(assignment):
                out.append(assignment)
        return out


class EvalObddRelation(AutomatonBackedRelation):
    """``EVAL-OBDD``: inputs are OBDDs, witnesses their models (Cor. 9)."""

    name = "EVAL-OBDD"

    def compile(self, instance: OBDD) -> CompiledInstance:
        return CompiledInstance(nfa=instance.to_nfa(), length=instance.num_variables)

    def decode_witness(self, instance: OBDD, w: Word) -> dict:
        return {variable: int(bit) for variable, bit in zip(instance.order, w)}

    def encode_witness(self, instance: OBDD, witness: Mapping[str, int]) -> Word:
        return tuple(str(witness[variable]) for variable in instance.order)
