"""Binary decision diagrams (Section 4.3): OBDDs and nOBDDs.

``EVAL-OBDD`` (assignments evaluating an ordered BDD to 1) is in
RelationUL — each satisfying assignment has exactly one witnessing path —
so enumeration is constant delay and counting/sampling are exact
(Corollary 9).  Nondeterministic OBDDs lose the single-witness property:
``EVAL-nOBDD`` is in RelationNL, and the FPRAS/PLVUG of Corollary 10 —
new results of the paper — apply.
"""

from repro.bdd.obdd import OBDD, OBDDNode, TERMINAL_FALSE, TERMINAL_TRUE
from repro.bdd.nobdd import NOBDD
from repro.bdd.builders import obdd_from_formula, random_nobdd, FormulaNode, var, conj, disj, neg
from repro.bdd.apply import apply, bdd_and, bdd_or, bdd_xor, negate, restrict

__all__ = [
    "apply",
    "bdd_and",
    "bdd_or",
    "bdd_xor",
    "negate",
    "restrict",
    "OBDD",
    "OBDDNode",
    "NOBDD",
    "TERMINAL_TRUE",
    "TERMINAL_FALSE",
    "obdd_from_formula",
    "random_nobdd",
    "FormulaNode",
    "var",
    "conj",
    "disj",
    "neg",
]
