"""Bryant's *apply* algebra on OBDDs: ∧, ∨, ⊕, ¬, restrict.

The paper treats OBDDs as given inputs; a user adopting the library wants
to *build* them compositionally.  This module provides the classical
memoized product construction ([Bry92], the survey the paper cites):

* :func:`apply` — combine two OBDDs over the same variable order with any
  binary boolean operator, in O(|D₁|·|D₂|) memoized steps;
* :func:`negate` — swap the terminals;
* :func:`restrict` — fix a variable to a constant;
* convenience wrappers :func:`bdd_and` / :func:`bdd_or` / :func:`bdd_xor`.

Results are reduced (shared cofactors interned, redundant tests skipped),
so chaining applies keeps diagrams small — and everything feeds directly
into the Corollary 9 pipeline (count/enumerate/sample models).
"""

from __future__ import annotations

from typing import Callable

from repro.bdd.obdd import OBDD, OBDDNode, TERMINAL_FALSE, TERMINAL_TRUE
from repro.errors import InvalidAutomatonError


def _terminal(value: bool) -> str:
    return TERMINAL_TRUE if value else TERMINAL_FALSE


def _is_terminal(node_id) -> bool:
    return node_id in (TERMINAL_TRUE, TERMINAL_FALSE)


def _terminal_value(node_id) -> bool:
    return node_id == TERMINAL_TRUE


class _Builder:
    """Shared reduced-node interning for one apply computation."""

    def __init__(self):
        self.nodes: dict[object, OBDDNode] = {}
        self.interned: dict[OBDDNode, object] = {}

    def make(self, variable: str, lo, hi):
        if lo == hi:
            return lo  # redundant test elimination
        node = OBDDNode(variable, lo, hi)
        existing = self.interned.get(node)
        if existing is not None:
            return existing
        node_id = f"n{len(self.nodes)}"
        self.nodes[node_id] = node
        self.interned[node] = node_id
        return node_id


def apply(left: OBDD, right: OBDD, op: Callable[[bool, bool], bool]) -> OBDD:
    """Bryant's apply: the OBDD of ``op(left(σ), right(σ))``.

    Both operands must share a variable order (checked); the result uses
    that order.
    """
    if left.order != right.order:
        raise InvalidAutomatonError(
            f"apply needs a shared variable order, got {left.order} vs {right.order}"
        )
    order = left.order
    rank = {variable: index for index, variable in enumerate(order)}
    builder = _Builder()
    cache: dict[tuple, object] = {}

    def top_rank(diagram: OBDD, node_id) -> int:
        if _is_terminal(node_id):
            return len(order)
        return rank[diagram.nodes[node_id].var]

    def walk(a, b):
        key = (a, b)
        if key in cache:
            return cache[key]
        if _is_terminal(a) and _is_terminal(b):
            result = _terminal(op(_terminal_value(a), _terminal_value(b)))
            cache[key] = result
            return result
        rank_a = top_rank(left, a)
        rank_b = top_rank(right, b)
        split = min(rank_a, rank_b)
        variable = order[split]
        if rank_a == split:
            node_a = left.nodes[a]
            a_lo, a_hi = node_a.lo, node_a.hi
        else:
            a_lo = a_hi = a
        if rank_b == split:
            node_b = right.nodes[b]
            b_lo, b_hi = node_b.lo, node_b.hi
        else:
            b_lo = b_hi = b
        result = builder.make(variable, walk(a_lo, b_lo), walk(a_hi, b_hi))
        cache[key] = result
        return result

    root = walk(left.root, right.root)
    return OBDD(builder.nodes, root, order)


def negate(diagram: OBDD) -> OBDD:
    """The complement function ¬D (terminals swapped)."""

    def flip(node_id):
        if node_id == TERMINAL_TRUE:
            return TERMINAL_FALSE
        if node_id == TERMINAL_FALSE:
            return TERMINAL_TRUE
        return node_id

    nodes = {
        node_id: OBDDNode(node.var, flip(node.lo), flip(node.hi))
        for node_id, node in diagram.nodes.items()
    }
    return OBDD(nodes, flip(diagram.root), diagram.order)


def restrict(diagram: OBDD, variable: str, value: int) -> OBDD:
    """The cofactor D|_{variable = value} (still over the full order)."""
    if variable not in diagram.order:
        raise InvalidAutomatonError(f"unknown variable {variable!r}")
    builder = _Builder()
    cache: dict[object, object] = {}

    def walk(node_id):
        if _is_terminal(node_id):
            return node_id
        if node_id in cache:
            return cache[node_id]
        node = diagram.nodes[node_id]
        if node.var == variable:
            result = walk(node.hi if value else node.lo)
        else:
            result = builder.make(node.var, walk(node.lo), walk(node.hi))
        cache[node_id] = result
        return result

    return OBDD(builder.nodes, walk(diagram.root), diagram.order)


def bdd_and(left: OBDD, right: OBDD) -> OBDD:
    return apply(left, right, lambda a, b: a and b)


def bdd_or(left: OBDD, right: OBDD) -> OBDD:
    return apply(left, right, lambda a, b: a or b)


def bdd_xor(left: OBDD, right: OBDD) -> OBDD:
    return apply(left, right, lambda a, b: a != b)
