"""Nondeterministic OBDDs (nOBDDs) and their RelationNL compilation.

An nOBDD (Section 4.3, after [ACMS18]) extends an OBDD with *guess
nodes*: unlabeled nodes (``var = None``) with a set of children; reading
an assignment may follow several paths.  The structure promises
*consistency*: for each assignment, all maximal paths end in the same
terminal — the represented function is still well-defined, but an
accepted assignment may have many witnessing paths, which is exactly the
loss of unambiguity that drops ``EVAL-nOBDD`` from RelationUL to
RelationNL.  Corollary 10 (new in the paper): counting models admits an
FPRAS and uniform model sampling a PLVUG.

The compilation mirrors :meth:`repro.bdd.obdd.OBDD.to_nfa`, with guess
nodes contributing ε-like silent fan-out (realized as same-level
nondeterministic transitions folded into the next bit read, keeping the
automaton ε-free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.automata.nfa import NFA, Word
from repro.bdd.obdd import TERMINAL_FALSE, TERMINAL_TRUE
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.errors import InconsistentBDDError, InvalidAutomatonError


@dataclass(frozen=True)
class DecisionNode:
    """A variable-testing node.

    The paper's nodes have *at most* two children; ``None`` for ``lo`` or
    ``hi`` means the edge is absent and the path dies there.  Dying is
    how a consistent nOBDD rejects along one branch while another branch
    accepts the same assignment — routing rejection to the ⊥ terminal
    instead would collide with an accepting path and violate consistency.
    """

    var: str
    lo: object | None
    hi: object | None


@dataclass(frozen=True)
class GuessNode:
    """A nondeterministic node: follow any child (``var = ⊥`` in the paper)."""

    children: tuple


class NOBDD:
    """A nondeterministic OBDD over a variable order."""

    def __init__(self, nodes: Mapping[object, object], root, order: Sequence[str]):
        self.nodes = dict(nodes)
        self.root = root
        self.order = tuple(order)
        self._rank = {variable: index for index, variable in enumerate(self.order)}
        self._validate()

    def _validate(self) -> None:
        for node_id, node in self.nodes.items():
            if node_id in (TERMINAL_TRUE, TERMINAL_FALSE):
                raise InvalidAutomatonError("terminal sentinel used as node id")
            if isinstance(node, DecisionNode):
                if node.var not in self._rank:
                    raise InvalidAutomatonError(f"unknown variable {node.var!r}")
                children = tuple(c for c in (node.lo, node.hi) if c is not None)
            elif isinstance(node, GuessNode):
                if not node.children:
                    raise InvalidAutomatonError("guess node with no children")
                children = node.children
            else:
                raise InvalidAutomatonError(f"unknown node kind {node!r}")
            for child in children:
                if child in (TERMINAL_TRUE, TERMINAL_FALSE):
                    continue
                if child not in self.nodes:
                    raise InvalidAutomatonError(f"dangling child {child!r}")

    @property
    def num_variables(self) -> int:
        return len(self.order)

    # ------------------------------------------------------------------

    def _guess_closure(self, node_ids: set) -> set:
        """Follow guess nodes until decision nodes / terminals."""
        closure: set = set()
        stack = list(node_ids)
        while stack:
            node_id = stack.pop()
            node = self.nodes.get(node_id)
            if isinstance(node, GuessNode):
                stack.extend(node.children)
            else:
                closure.add(node_id)
        return closure

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """D(σ), with the consistency promise verified on this assignment.

        Raises :class:`InconsistentBDDError` if some path reaches 1 and
        another reaches 0 for the same assignment.
        """
        current = self._guess_closure({self.root})
        for variable in self.order:
            value = assignment[variable]
            nxt: set = set()
            for node_id in current:
                if node_id in (TERMINAL_TRUE, TERMINAL_FALSE):
                    nxt.add(node_id)
                    continue
                node = self.nodes[node_id]
                if node.var == variable:
                    child = node.hi if value else node.lo
                    if child is not None:
                        nxt.add(child)
                    # absent edge: this path dies
                else:
                    nxt.add(node_id)  # tests a later variable: unaffected
            current = self._guess_closure(nxt)
        outcomes = {
            1 if node_id == TERMINAL_TRUE else 0
            for node_id in current
            if node_id in (TERMINAL_TRUE, TERMINAL_FALSE)
        }
        if len(outcomes) > 1:
            raise InconsistentBDDError(
                f"assignment {dict(assignment)!r} reaches both terminals"
            )
        if not outcomes:
            # All paths died before a terminal: treat as 0 (no accepting path).
            return 0
        return outcomes.pop()

    def check_consistency(self) -> bool:
        """Exhaustively verify the consistency promise (exponential; tests)."""
        for mask in range(2**self.num_variables):
            assignment = {
                variable: (mask >> index) & 1
                for index, variable in enumerate(self.order)
            }
            try:
                self.evaluate(assignment)
            except InconsistentBDDError:
                return False
        return True

    # ------------------------------------------------------------------

    def to_nfa(self) -> NFA:
        """The (generally ambiguous) level automaton for EVAL-nOBDD.

        States are ``(node, level)`` with guess closure applied eagerly,
        so the automaton stays ε-free; each accepting path of the nOBDD
        for an assignment becomes a distinct accepting run.
        """
        n = self.num_variables
        transitions: list[tuple] = []
        states: set = set()

        initial_closure = frozenset(self._guess_closure({self.root}))
        start = ("start",)
        states.add(start)
        frontier: list = []

        def targets_for(node_id, variable: str, bit: str) -> set:
            """One-bit step of a single (closed) node at a given variable."""
            if node_id == TERMINAL_FALSE:
                return set()
            if node_id == TERMINAL_TRUE:
                return {TERMINAL_TRUE}
            node = self.nodes[node_id]
            if node.var == variable:
                child = node.hi if bit == "1" else node.lo
                if child is None:
                    return set()
                return self._guess_closure({child})
            return {node_id}

        # Build per-node, per-level transitions; a state is (node, level).
        seen: set = set()

        def push(node_id, level):
            key = (node_id, level)
            if key not in seen:
                seen.add(key)
                frontier.append(key)
            return key

        for node_id in initial_closure:
            # Represent the initial guess closure by ε-free fan-out: the
            # start state carries the same out-edges each closure member
            # would have at level 0.
            push(node_id, 0)
        while frontier:
            node_id, level = frontier.pop()
            if level == n:
                continue
            variable = self.order[level]
            for bit in ("0", "1"):
                for child in targets_for(node_id, variable, bit):
                    target = push(child, level + 1)
                    transitions.append(((node_id, level), bit, target))

        # Wire the start state to mirror the level-0 out-edges of each
        # initial-closure member.
        for node_id in initial_closure:
            variable = self.order[0] if n > 0 else None
            if n == 0:
                continue
            for bit in ("0", "1"):
                for child in targets_for(node_id, variable, bit):
                    transitions.append((start, bit, (child, 1)))

        all_states = {start} | seen
        finals = {(TERMINAL_TRUE, n)} & all_states
        if n == 0:
            # Constant function: accepts ε iff TRUE is in the closure.
            if TERMINAL_TRUE in initial_closure:
                finals = {start}
                return NFA([start], ("0", "1"), [], start, finals)
            return NFA([start], ("0", "1"), [], start, [])
        return NFA(all_states, ("0", "1"), transitions, start, finals).trim()


class EvalNobddRelation(AutomatonBackedRelation):
    """``EVAL-nOBDD``: inputs are nOBDDs, witnesses their models (Cor. 10)."""

    name = "EVAL-nOBDD"

    def compile(self, instance: NOBDD) -> CompiledInstance:
        return CompiledInstance(nfa=instance.to_nfa(), length=instance.num_variables)

    def decode_witness(self, instance: NOBDD, w: Word) -> dict:
        return {variable: int(bit) for variable, bit in zip(instance.order, w)}

    def encode_witness(self, instance: NOBDD, witness: Mapping[str, int]) -> Word:
        return tuple(str(witness[variable]) for variable in instance.order)
