"""Constructing BDDs: from boolean formulas, and random nOBDD workloads.

:func:`obdd_from_formula` builds a (reduced) OBDD by Shannon expansion
with memoization over (level, cofactor) — the classical construction,
adequate for the experiment sizes.  The tiny formula AST here exists so
the BDD subsystem has a self-contained front end; the DNF subsystem in
:mod:`repro.dnf` has its own richer clause form.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bdd.nobdd import DecisionNode, GuessNode, NOBDD
from repro.bdd.obdd import OBDD, OBDDNode, TERMINAL_FALSE, TERMINAL_TRUE
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class FormulaNode:
    """A boolean formula: 'var' | 'and' | 'or' | 'not' | 'const'."""

    kind: str
    payload: object = None
    children: tuple = ()

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        if self.kind == "var":
            return assignment[self.payload]
        if self.kind == "const":
            return int(bool(self.payload))
        if self.kind == "not":
            return 1 - self.children[0].evaluate(assignment)
        if self.kind == "and":
            return int(all(child.evaluate(assignment) for child in self.children))
        if self.kind == "or":
            return int(any(child.evaluate(assignment) for child in self.children))
        raise ValueError(f"unknown formula kind {self.kind!r}")

    def variables(self) -> frozenset:
        if self.kind == "var":
            return frozenset({self.payload})
        out: frozenset = frozenset()
        for child in self.children:
            out |= child.variables()
        return out


def var(name: str) -> FormulaNode:
    return FormulaNode("var", name)


def conj(*parts: FormulaNode) -> FormulaNode:
    return FormulaNode("and", children=tuple(parts))


def disj(*parts: FormulaNode) -> FormulaNode:
    return FormulaNode("or", children=tuple(parts))


def neg(part: FormulaNode) -> FormulaNode:
    return FormulaNode("not", children=(part,))


def obdd_from_formula(formula: FormulaNode, order: Sequence[str]) -> OBDD:
    """Shannon-expand ``formula`` along ``order`` into a reduced OBDD.

    Memoizes on the restriction (level, frozen partial assignment of the
    formula's support seen so far) — exponential worst case like any BDD
    construction, linear-ish for the structured formulas the benchmarks
    use.  Reduction: children equal ⇒ skip the test (no node); shared
    cofactors ⇒ shared node ids.
    """
    order = tuple(order)
    support = formula.variables()
    missing = support - set(order)
    if missing:
        raise ValueError(f"order misses formula variables: {sorted(missing)}")

    nodes: dict[object, OBDDNode] = {}
    cache: dict[tuple, object] = {}
    interned: dict[OBDDNode, object] = {}

    def build(level: int, assignment: tuple) -> object:
        if level == len(order):
            value = formula.evaluate(dict(assignment))
            return TERMINAL_TRUE if value else TERMINAL_FALSE
        key = (level, assignment)
        if key in cache:
            return cache[key]
        variable = order[level]
        if variable not in support:
            result = build(level + 1, assignment)
        else:
            lo = build(level + 1, assignment + ((variable, 0),))
            hi = build(level + 1, assignment + ((variable, 1),))
            if lo == hi:
                result = lo
            else:
                node = OBDDNode(variable, lo, hi)
                if node in interned:
                    result = interned[node]
                else:
                    result = f"n{len(nodes)}"
                    nodes[result] = node
                    interned[node] = result
        cache[key] = result
        return result

    root = build(0, ())
    return OBDD(nodes, root, order)


def random_nobdd(
    num_variables: int,
    num_guess_nodes: int = 3,
    branches: int = 2,
    rng: random.Random | int | None = None,
) -> NOBDD:
    """A random *consistent* nOBDD: a union of random OBDD branches.

    Construction guarantees consistency by design: the root is a guess
    node over ``branches`` independently built random decision chains
    that each end in either terminal; since the represented function is
    the OR of branch functions, no assignment can reach both terminals
    ... which is false in general!  Consistency in the paper's sense
    demands all paths of one assignment agree.  We therefore post-process:
    branches are random *subfunction selectors* — each chain tests all
    variables, and rejected assignments *die* (the corresponding child
    edge is absent, which the paper's "at most two children" allows):
    every path for an assignment either dies or reaches ⊤, so all
    terminal-reaching paths agree and consistency holds by construction.
    The represented function is the union of branch functions; ambiguity
    = overlap between branches (tunable via ``branches``).
    """
    generator = make_rng(rng)
    order = [f"x{i}" for i in range(num_variables)]
    nodes: dict[object, object] = {}

    def random_chain(tag: str) -> object:
        """A decision chain over all variables ending at ⊤, with random
        per-level dead ends — i.e. a random conjunction-with-wildcards."""
        current: object = TERMINAL_TRUE
        for level in range(num_variables - 1, -1, -1):
            node_id = f"{tag}_d{level}"
            choice = generator.random()
            if choice < 0.4:
                nodes[node_id] = DecisionNode(order[level], current, None)
            elif choice < 0.8:
                nodes[node_id] = DecisionNode(order[level], None, current)
            else:
                nodes[node_id] = DecisionNode(order[level], current, current)
            current = node_id
        return current

    children = tuple(random_chain(f"b{i}") for i in range(branches))
    root = "root"
    nodes[root] = GuessNode(children)
    return NOBDD(nodes, root, order)
