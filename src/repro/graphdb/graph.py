"""Edge-labeled graph databases: ``G = (V, E)`` with ``E ⊆ V × Σ × V``.

A minimal but complete property-graph-flavoured substrate: vertices are
arbitrary hashables, edges carry one label each, adjacency is indexed
both ways.  Generators for the benchmark workloads (random, grid and a
small social-network-style schema) live here too.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable, Iterable

from repro.errors import InvalidAutomatonError
from repro.utils.rng import make_rng

Vertex = Hashable
Label = str
Edge = tuple  # (Vertex, Label, Vertex)


class GraphDatabase:
    """An immutable edge-labeled directed graph."""

    __slots__ = ("_vertices", "_labels", "_edges", "_out", "_in")

    def __init__(self, vertices: Iterable[Vertex], edges: Iterable[Edge]):
        self._vertices = frozenset(vertices)
        edge_set = frozenset((u, a, v) for u, a, v in edges)
        for u, a, v in edge_set:
            if u not in self._vertices or v not in self._vertices:
                raise InvalidAutomatonError(f"edge ({u!r}, {a!r}, {v!r}) leaves the vertex set")
        self._edges = edge_set
        self._labels = frozenset(a for _, a, _ in edge_set)
        out: dict = {}
        incoming: dict = {}
        for u, a, v in edge_set:
            out.setdefault(u, []).append((a, v))
            incoming.setdefault(v, []).append((a, u))
        self._out = {u: tuple(adj) for u, adj in out.items()}
        self._in = {v: tuple(adj) for v, adj in incoming.items()}

    @property
    def vertices(self) -> frozenset:
        return self._vertices

    @property
    def edges(self) -> frozenset:
        return self._edges

    @property
    def labels(self) -> frozenset:
        return self._labels

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, vertex: Vertex) -> tuple:
        """Outgoing ``(label, target)`` pairs."""
        return self._out.get(vertex, ())

    def in_edges(self, vertex: Vertex) -> tuple:
        """Incoming ``(label, source)`` pairs."""
        return self._in.get(vertex, ())

    def successors(self, vertex: Vertex, label: Label) -> list[Vertex]:
        return [v for a, v in self.out_edges(vertex) if a == label]

    def has_edge(self, u: Vertex, label: Label, v: Vertex) -> bool:
        return (u, label, v) in self._edges

    def reachable_from(self, vertex: Vertex) -> frozenset:
        seen = {vertex}
        frontier = deque([vertex])
        while frontier:
            current = frontier.popleft()
            for _, target in self.out_edges(current):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"GraphDatabase(vertices={self.num_vertices}, edges={self.num_edges}, "
            f"labels={sorted(self._labels)})"
        )


def random_graph(
    num_vertices: int,
    labels: Iterable[Label] = ("a", "b"),
    density: float = 2.0,
    rng: random.Random | int | None = None,
) -> GraphDatabase:
    """Erdős–Rényi-style labeled digraph: ~``density`` out-edges per vertex/label."""
    generator = make_rng(rng)
    labels = list(labels)
    vertices = list(range(num_vertices))
    probability = min(1.0, density / max(1, num_vertices))
    edges = [
        (u, a, v)
        for u in vertices
        for a in labels
        for v in vertices
        if generator.random() < probability
    ]
    return GraphDatabase(vertices, edges)


def grid_graph(width: int, height: int) -> GraphDatabase:
    """A w×h grid with 'r' (right) and 'd' (down) edges — known path counts.

    The number of r/d paths between corners is a binomial coefficient,
    giving closed-form ground truth for the RPQ counting experiments.
    """
    vertices = [(x, y) for x in range(width) for y in range(height)]
    edges: list[Edge] = []
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                edges.append(((x, y), "r", (x + 1, y)))
            if y + 1 < height:
                edges.append(((x, y), "d", (x, y + 1)))
    return GraphDatabase(vertices, edges)


def social_graph(
    num_people: int, rng: random.Random | int | None = None
) -> GraphDatabase:
    """A small social-network-flavoured graph.

    Labels: ``k`` = knows, ``f`` = follows, ``w`` = works-with (single
    characters so RPQ regexes like ``"kk"`` or ``"k(f|w)*"`` parse
    directly).  The motivating workload class of the graph-database
    literature the paper cites ([AAB+17]): friend-of-friend-style RPQs
    over such graphs are the E11 benchmark's domain-specific scenario.
    """
    generator = make_rng(rng)
    people = [f"p{i}" for i in range(num_people)]
    edges: list[Edge] = []
    for person in people:
        for label, fanout in (("k", 3), ("f", 2), ("w", 1)):
            for target in generator.sample(people, min(fanout, num_people)):
                if target != person:
                    edges.append((person, label, target))
    return GraphDatabase(people, edges)


# ----------------------------------------------------------------------
# JSON round-trips (CLI inputs and process boundaries)
# ----------------------------------------------------------------------

GRAPH_FORMAT_VERSION = 1


def graph_to_json(graph: GraphDatabase, indent: int | None = None) -> str:
    """Serialize a graph to a versioned JSON document.

    Vertices and labels use the same tagged-atom encoding as the NFA
    serializer (tuples survive round-trips exactly), so grid-graph
    vertices like ``(0, 1)`` are representable.
    """
    import json

    from repro.automata.serialization import _encode_atom

    document = {
        "format": "repro.graph",
        "version": GRAPH_FORMAT_VERSION,
        "vertices": [_encode_atom(v) for v in sorted(graph.vertices, key=repr)],
        "edges": [
            [_encode_atom(u), _encode_atom(a), _encode_atom(v)]
            for u, a, v in sorted(graph.edges, key=repr)
        ],
    }
    return json.dumps(document, indent=indent)


def graph_from_json(text: str) -> GraphDatabase:
    """Inverse of :func:`graph_to_json` (validates format and version)."""
    import json

    from repro.automata.serialization import _decode_atom

    document = json.loads(text)
    if document.get("format") != "repro.graph":
        raise InvalidAutomatonError("not a repro.graph document")
    if document.get("version") != GRAPH_FORMAT_VERSION:
        raise InvalidAutomatonError(
            f"unsupported graph format version {document.get('version')!r}"
        )
    return GraphDatabase(
        [_decode_atom(v) for v in document["vertices"]],
        [
            (_decode_atom(u), _decode_atom(a), _decode_atom(v))
            for u, a, v in document["edges"]
        ],
    )
