"""Regular path queries with path semantics (Section 4.2, Corollary 8).

An RPQ is ``(x, R, y)`` with ``R`` a regular expression over the edge
labels; given a graph ``G``, endpoints ``u, v`` and a length ``n``, the
witnesses are the *paths* ``u = v₀ —p₁→ v₁ … —pₙ→ vₙ = v`` whose label
word ``p₁…pₙ ∈ L(R)`` (the paths-not-pairs semantics of footnote 1).

Compilation to MEM-NFA: the synchronous product ``G × A_R`` —

* states: ``(graph vertex, query-automaton state)``;
* symbols: ``(label, target-vertex)`` pairs, so a word both *is* a path
  encoding (the sequence of edges taken) and carries the label word;
* transitions ``(w, q) —(a, w')→ (w', q')`` when ``(w, a, w') ∈ E`` and
  ``q —a→ q'`` in ``A_R``.

Compilation is *symbolic* by default: :func:`compile_rpq_plan` returns a
lazy :class:`~repro.core.plan.GraphProduct` node whose product states
exist only while the kernel lowering's frontier touches them — on a
large graph only the fragment reachable from ``(source, q₀)`` within
``n`` steps is ever allocated, instead of the eager ``|V|·|Q|`` cross
product.  :func:`compile_rpq` keeps the materialized-NFA API (it is the
plan's eager rendering, trimmed) for callers and tests that need a
concrete automaton.

A path can have several runs only through the query automaton's own
nondeterminism, so compiling ``R`` through a DFA (affordable for typical
query-sized expressions) lands in RelationUL with exact algorithms, while
keeping the NFA form exercises the Corollary 8 FPRAS/PLVUG route; the
evaluator exposes both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.automata.dfa import determinize
from repro.automata.nfa import NFA, Word
from repro.automata.regex import compile_regex
from repro.core.plan import GraphProduct
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.graphdb.graph import GraphDatabase, Vertex


@dataclass(frozen=True)
class RPQ:
    """A regular path query: a regex over edge labels."""

    pattern: str

    def automaton(self, labels: frozenset, deterministic: bool) -> NFA:
        # The alphabet must cover both the graph's labels and the symbols
        # the pattern mentions: a query can name labels absent from this
        # particular graph (it then matches nothing through them), and a
        # sparse graph must not invalidate an otherwise fine query.
        from repro.automata.regex import parse, pattern_symbols

        alphabet = sorted(labels | pattern_symbols(parse(self.pattern)))
        nfa = compile_regex(self.pattern, alphabet=alphabet)
        if deterministic:
            return determinize(nfa).to_nfa().trim()
        return nfa


@dataclass(frozen=True)
class Path:
    """A path as the paper defines it: v₀, p₁, v₁, …, pₙ, vₙ."""

    source: Vertex
    steps: tuple  # of (label, vertex)

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def target(self) -> Vertex:
        return self.steps[-1][1] if self.steps else self.source

    @property
    def label_word(self) -> tuple:
        return tuple(label for label, _ in self.steps)

    def vertices(self) -> tuple:
        return (self.source,) + tuple(vertex for _, vertex in self.steps)

    def is_path_of(self, graph: GraphDatabase) -> bool:
        current = self.source
        for label, vertex in self.steps:
            if not graph.has_edge(current, label, vertex):
                return False
            current = vertex
        return True


def compile_rpq_plan(
    graph: GraphDatabase,
    query: RPQ,
    source: Vertex,
    target: Vertex,
    deterministic_query: bool = False,
) -> GraphProduct:
    """The product ``G × A_R`` as a lazy plan node — nothing materialized.

    This is what the facade's :meth:`~repro.api.WitnessSet.from_rpq`
    lowers straight into the array kernel; only forward-reachable (and
    backward-useful) product states ever exist.
    """
    if isinstance(query, str):
        query = RPQ(query)
    query_nfa = query.automaton(graph.labels, deterministic_query)
    return GraphProduct(graph, query_nfa, source, target)


def compile_rpq(
    graph: GraphDatabase,
    query: RPQ,
    source: Vertex,
    target: Vertex,
    deterministic_query: bool = False,
) -> NFA:
    """The product NFA whose length-n words encode the witness paths.

    The eager rendering of :func:`compile_rpq_plan` (reachable fragment,
    trimmed) — kept for callers that need a materialized automaton; the
    query pipeline itself goes through the plan.
    """
    plan = compile_rpq_plan(graph, query, source, target, deterministic_query)
    return plan.to_nfa().trim()


def decode_path(source: Vertex, w: Word) -> Path:
    """Product-automaton word → path object."""
    return Path(source=source, steps=tuple(w))


class EvalRpqRelation(AutomatonBackedRelation):
    """``EVAL-RPQ``: inputs are ``(query, n, graph, u, v)`` tuples.

    In RelationNL (Corollary 8): the FPRAS and PLVUG were the new results;
    polynomial-delay enumeration was already straightforward.
    """

    name = "EVAL-RPQ"

    def compile(self, instance: tuple) -> CompiledInstance:
        query, n, graph, source, target = instance
        return CompiledInstance(
            nfa=compile_rpq(graph, query, source, target), length=n
        )

    def decode_witness(self, instance: tuple, w: Word) -> Path:
        _, _, _, source, _ = instance
        return decode_path(source, w)

    def encode_witness(self, instance: tuple, witness: Path) -> Word:
        return tuple(witness.steps)


class RpqEvaluator:
    """Count / enumerate / sample the paths ``⟦Q⟧ₙ(G, u, v)``.

    A thin domain wrapper over the :class:`~repro.api.WitnessSet`
    facade: compilation goes through the lazy plan route
    (:func:`compile_rpq_plan` lowered straight into the array kernel),
    so the unambiguous hot path never materializes the product NFA.

    ``deterministic_query=True`` routes through a determinized query
    automaton: the product is then unambiguous (each path has one run)
    and the exact RelationUL algorithms apply — the practical fast path
    for small queries.  Otherwise ambiguity is detected per instance (on
    the lazy self-product) and the FPRAS/PLVUG used when needed.
    """

    def __init__(
        self,
        graph: GraphDatabase,
        query: RPQ,
        source: Vertex,
        target: Vertex,
        n: int,
        deterministic_query: bool = False,
        delta: float = 0.1,
        rng: random.Random | int | None = None,
    ):
        from repro.api import WitnessSet

        self.graph = graph
        self.query = query
        self.source = source
        self.target = target
        self.n = n
        self.ws = WitnessSet.from_rpq(
            graph,
            query,
            source,
            target,
            n,
            deterministic_query=deterministic_query,
            delta=delta,
            rng=rng,
        )

    @property
    def plan(self) -> GraphProduct:
        """The symbolic product plan the queries lower from."""
        return self.ws.plan

    @property
    def nfa(self) -> NFA:
        """The materialized product NFA (built on demand — eager cost)."""
        return self.ws.stripped

    @property
    def unambiguous(self) -> bool:
        return self.ws.is_unambiguous

    def paths(self) -> Iterator[Path]:
        return self.ws.enumerate()

    def count(self) -> float:
        """Number of witness paths — exact if unambiguous, else FPRAS."""
        if self.ws.is_unambiguous:
            return self.ws.count_exact()
        return self.ws.count(backend="fpras")

    def count_exact(self) -> int:
        return self.ws.count_exact()

    def sample(self, rng: random.Random | int | None = None) -> Path | None:
        """A uniform witness path (None when there are none)."""
        return self.ws.sample(rng=rng)
