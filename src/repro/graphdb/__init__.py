"""Graph databases and regular path queries (Section 4.2).

``EVAL-RPQ`` — paths of length exactly n between two nodes that conform
to a regular expression — is in RelationNL: counting such paths admits an
FPRAS and sampling a uniform path a PLVUG (Corollary 8), in *combined*
complexity (query part of the input), which was open before this paper.
"""

from repro.graphdb.graph import GraphDatabase, graph_from_json, graph_to_json
from repro.graphdb.rpq import RPQ, EvalRpqRelation, RpqEvaluator, Path

__all__ = [
    "GraphDatabase",
    "RPQ",
    "Path",
    "RpqEvaluator",
    "EvalRpqRelation",
    "graph_from_json",
    "graph_to_json",
]
