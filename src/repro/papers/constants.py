"""The proof constants of Algorithm 5, in one inspectable place.

The paper fixes every constant to make the union bounds in Section 6.5
clean rather than tight.  Collecting them here serves two purposes:
``FprasParameters.paper_faithful()`` derives its values from this table,
and the ablation experiments (A1/A2) cite it when mapping the practical
frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PaperConstants:
    """Constants of Algorithm 5 / Theorem 22 (n = word length, m = states)."""

    #: Sketch size exponent: k = ⌈(nm/δ)^64⌉ (Algorithm 5, step 2).
    sample_size_exponent: int = 64
    #: Per-sample retry budget: ⌈(nm/δ)^4⌉ (Algorithm 5, step 5(c)(ii)).
    retry_exponent: int = 4
    #: Rejection acceptance numerator: e⁻⁴ (the φ₀ = e⁻⁴/R(s) of §6.4).
    rejection_constant: float = math.exp(-4)
    #: Worst-case per-attempt acceptance bound: e⁻⁵ (Proposition 18).
    acceptance_lower_bound: float = math.exp(-5)
    #: Exhaustive-count threshold: n ≤ 12 (Algorithm 5, step 1).
    exhaustive_length: int = 12
    #: Per-layer sketch-accuracy tolerance: k^(-1/3) (Property 2).
    sketch_tolerance_exponent: float = -1 / 3
    #: Per-layer estimate drift: (1 ± k^(-1/4))^α (Property 1).
    estimate_drift_exponent: float = -1 / 4

    def sample_size(self, n: int, m: int, delta: float) -> int:
        """The literal k = ⌈(nm/δ)^64⌉ — astronomically large for any real
        instance; printed by the ablation report for perspective."""
        return math.ceil((n * m / delta) ** self.sample_size_exponent)

    def retry_budget(self, n: int, m: int, delta: float) -> int:
        return math.ceil((n * m / delta) ** self.retry_exponent)
