"""Reconstruction of the paper's two figures (experiment F1/F2).

The paper's only figures are worked examples in Section 5.3.1:

* **Figure 1** — a 7-state unambiguous NFA over {a, b} with initial state
  q0 and unique final state qF.  The figure's edge labels are garbled in
  the text extraction, so we reconstruct the automaton from the
  constraints the surrounding prose pins down: (i) it is unambiguous,
  (ii) its k = 3 pruned unrolling is Figure 2 with live layers
  {q0} / {q1, q2} / {q3, q4} / {qF} and q5 pruned away, (iii) vertex
  (q3, 2) has exactly the two outgoing edges a and b (the worked
  enumeration exhausts them after outputting aaa then aab), and (iv) the
  enumeration's first decision point is (q0, 0) with the a-edge first.
  The wiring below satisfies all four:

  ====== ======== ========
  from   symbol   to
  ====== ======== ========
  q0     a        q1
  q0     b        q2
  q1     a        q3
  q2     a        q3
  q2     b        q4
  q3     a, b     qF
  q4     a, b     qF
  q5     b        q4       (q5 is drawn but off every accepting path)
  ====== ======== ========

  Unambiguity holds because the state at layer 2 (q3 vs q4) is determined
  by the second symbol.  The q5 arc's exact placement is immaterial: the
  text's point is that pruning removes vertices off accepting paths, so
  any wiring that keeps it useless reproduces the figure's role.  We
  attach it as a state unreachable from q0.

* **Figure 2** — the unrolled, pruned DAG of Figure 1 for k = 3, with
  vertices (q0,0), (q1,1), (q2,1), (q3,2), (q4,2), (qF,3): exactly the
  layered graph our Lemma 15 construction yields, and the worked
  enumeration of Section 5.3.1 outputs the words aaa, aab, ... starting
  with the all-'a' path.

:func:`figure2_expected_words` returns the language the DAG encodes so
the tests can check both the structure and the enumeration order claims
("the first output is aaa, the second is aab").
"""

from __future__ import annotations

from repro.automata.nfa import NFA


def figure1_nfa() -> NFA:
    """The unambiguous NFA of Figure 1."""
    transitions = [
        ("q0", "a", "q1"),
        ("q0", "b", "q2"),
        ("q1", "a", "q3"),
        ("q2", "a", "q3"),
        ("q2", "b", "q4"),
        ("q3", "a", "qF"),
        ("q3", "b", "qF"),
        ("q4", "a", "qF"),
        ("q4", "b", "qF"),
        # q5 is drawn in the figure but lies on no accepting path; the text
        # uses it to motivate pruning.  Wire it off the useful region.
        ("q5", "b", "q4"),
    ]
    return NFA(
        ["q0", "q1", "q2", "q3", "q4", "q5", "qF"],
        ["a", "b"],
        transitions,
        "q0",
        ["qF"],
    )


def figure2_dag_description() -> dict:
    """The pruned-unrolling structure Figure 2 depicts (k = 3).

    Returns the expected live vertices per layer for comparison with
    :func:`repro.core.unroll.unroll_trimmed` on :func:`figure1_nfa`.
    """
    return {
        0: {"q0"},
        1: {"q1", "q2"},
        2: {"q3", "q4"},
        3: {"qF"},
    }


def figure2_expected_words() -> list[tuple]:
    """All words of L_3 of the Figure 1 automaton, lexicographically.

    Derived by hand from the DAG: paths q0→{q1,q2}→{q3,q4}→qF.
    """
    words = set()
    nfa = figure1_nfa()
    # Brute force over {a,b}^3 against the defining automaton keeps this
    # list honest if the figure transcription ever changes.
    for x in "ab":
        for y in "ab":
            for z in "ab":
                if nfa.accepts((x, y, z)):
                    words.add((x, y, z))
    return sorted(words)
