"""Paper artifacts: the worked figures and the proof constants."""

from repro.papers.figures import figure1_nfa, figure2_dag_description, figure2_expected_words
from repro.papers.constants import PaperConstants

__all__ = [
    "figure1_nfa",
    "figure2_dag_description",
    "figure2_expected_words",
    "PaperConstants",
]
