"""Slow-query log: JSON-lines capture of requests over a threshold.

Each event is one JSON object per line — the request id and op, the
total wall seconds, and the per-stage timing breakdown — so the log can
be tailed with ``jq`` or replayed into analysis without parsing state.

Writes are synchronous file appends guarded by a lock: the async server
must therefore call :meth:`SlowQueryLog.record` via
``loop.run_in_executor`` (the ``metrics-discipline`` lint rule flags a
direct call inside ``async def``).  The executor hop only happens for
over-threshold requests, so the hot path never touches the filesystem.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Mapping, Optional

#: Path of the slow-query log file; unset/empty disables the log.
SLOW_LOG_ENV = "REPRO_SLOW_QUERY_LOG"

#: Threshold in milliseconds (default 1000 ms when only the path is set).
SLOW_MS_ENV = "REPRO_SLOW_QUERY_MS"

DEFAULT_THRESHOLD_SECONDS = 1.0


class SlowQueryLog:
    """Append-only JSONL sink for over-threshold request events."""

    __slots__ = ("path", "threshold_seconds", "_lock")

    def __init__(
        self,
        path: str,
        threshold_seconds: float = DEFAULT_THRESHOLD_SECONDS,
    ) -> None:
        self.path = path
        self.threshold_seconds = max(0.0, threshold_seconds)
        self._lock = threading.Lock()

    def should_record(self, total_seconds: float) -> bool:
        return total_seconds >= self.threshold_seconds

    def record(self, event: Mapping[str, Any]) -> None:
        """Append one event as a JSON line (thread-safe, blocking)."""

        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def maybe_record(self, total_seconds: float, event: Mapping[str, Any]) -> bool:
        """Record ``event`` iff it crossed the threshold; report whether."""

        if not self.should_record(total_seconds):
            return False
        self.record(event)
        return True


def from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[SlowQueryLog]:
    """Build a log from ``REPRO_SLOW_QUERY_LOG`` / ``REPRO_SLOW_QUERY_MS``."""

    env = os.environ if environ is None else environ
    path = env.get(SLOW_LOG_ENV, "").strip()
    if not path:
        return None
    raw_ms = env.get(SLOW_MS_ENV, "").strip()
    threshold = DEFAULT_THRESHOLD_SECONDS
    if raw_ms:
        try:
            threshold = float(raw_ms) / 1000.0
        except ValueError:
            threshold = DEFAULT_THRESHOLD_SECONDS
    return SlowQueryLog(path, threshold)


__all__ = [
    "DEFAULT_THRESHOLD_SECONDS",
    "SLOW_LOG_ENV",
    "SLOW_MS_ENV",
    "SlowQueryLog",
    "from_env",
]
