"""``repro.obs`` — unified metrics, tracing, and profiling layer.

One dependency-free package backs every piece of telemetry in the
serving stack:

* :mod:`repro.obs.registry` — counters, gauges, log-bucketed histograms
  with mergeable p50/p95/p99/max summaries; ``REPRO_OBS=off`` kill
  switch.
* :mod:`repro.obs.names` — the full metric-name vocabulary as
  constants (enforced by the ``metrics-discipline`` lint rule).
* :mod:`repro.obs.trace` — per-request spans carrying a per-stage
  timing breakdown (parse → coalesce wait → queue wait → store fetch →
  lowering → execution → serialization).
* :mod:`repro.obs.slowlog` — JSON-lines slow-query log.
* :mod:`repro.obs.exposition` — Prometheus text format and the
  human-readable ``repro stats`` rendering.

The usual entry points are re-exported here::

    from repro import obs
    obs.metrics().counter(obs.names.SERVER_REQUESTS).inc()
    with obs.request_span() as span:
        ...
"""

from __future__ import annotations

from . import names
from .exposition import render_prometheus, render_text
from .registry import (
    OBS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    merge_snapshots,
    metrics,
    reset_metrics,
    series_key,
    set_enabled,
)
from .slowlog import SlowQueryLog
from .slowlog import from_env as slow_log_from_env
from .trace import NULL_SPAN, Span, add_stage, current_span, request_span, stage

__all__ = [
    "OBS_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SlowQueryLog",
    "Span",
    "add_stage",
    "current_span",
    "enabled",
    "merge_snapshots",
    "metrics",
    "names",
    "render_prometheus",
    "render_text",
    "request_span",
    "reset_metrics",
    "series_key",
    "set_enabled",
    "slow_log_from_env",
    "stage",
]
