"""Dependency-free metrics registry: counters, gauges, log histograms.

Design constraints, in order:

* **O(1) hot-path recording.**  ``Counter.inc`` is one guarded ``+=``;
  ``Histogram.record`` is a ``log2`` plus one dict bump.  Handles can be
  bound once (``metrics().counter(NAME)``) and hit repeatedly, and a
  registry lookup itself is a single dict probe on the warm path.
* **Mergeable.**  Every metric serializes to plain JSON
  (:meth:`MetricsRegistry.snapshot`) and snapshots from different
  processes merge exactly: counters and gauges add, histograms add
  bucket-wise.  Percentiles are computed *after* merging, from the
  buckets, so p95 over a worker pool is the pool-wide p95 — not an
  average of per-worker p95s.
* **Kill switch.**  ``REPRO_OBS=off`` in the environment (or
  :func:`set_enabled` at runtime) turns every record method into an
  early return so the overhead bench can measure a true baseline.
  Metrics constructed with ``always=True`` ignore the switch — the
  functional ``StoreStats`` / ``WitnessSetCache`` counters stay exact
  views regardless of the observability setting.

Histograms are log-bucketed at 4 buckets per doubling (relative bucket
width ``2**0.25 - 1`` ≈ 19%), which bounds percentile error well below
what latency dashboards care about while keeping snapshots tiny
(a 1 µs – 1000 s range spans ~160 possible buckets, sparsely occupied).

Thread-safety: metric creation is locked; recording relies on the GIL
(a lost increment under extreme contention skews telemetry by one, never
corrupts state), which is the standard trade for zero hot-path locking.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Callable, Iterable, Mapping, TypeVar, Union

OBS_ENV = "REPRO_OBS"

_OFF_VALUES = frozenset({"0", "off", "false", "no", "disabled"})

_BUCKETS_PER_DOUBLING = 4

#: Synthetic bucket index for values <= 0 (clock jitter clamps, empty
#: durations).  Far below any real ``ceil(4*log2(v))`` for v > 2**-250.
_ZERO_BUCKET = -(10**6)

_enabled: bool = os.environ.get(OBS_ENV, "").strip().lower() not in _OFF_VALUES


def enabled() -> bool:
    """Return whether observability recording is currently on."""

    return _enabled


def set_enabled(value: bool) -> None:
    """Turn recording on/off in-process (equivalent to ``REPRO_OBS``)."""

    global _enabled
    _enabled = bool(value)


class Counter:
    """Monotonically increasing count.

    ``always=True`` opts out of the ``REPRO_OBS`` kill switch; use it for
    counters that double as functional state (cache hit bookkeeping that
    tests and eviction policies read), never for pure telemetry.
    """

    __slots__ = ("value", "_always")

    kind = "counter"

    def __init__(self, always: bool = False) -> None:
        self.value: float = 0
        self._always = always

    def inc(self, amount: float = 1) -> None:
        if _enabled or self._always:
            self.value += amount

    def as_value(self) -> float:
        return self.value


class Gauge:
    """Point-in-time level (queue depth, active connections)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        if _enabled:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        if _enabled:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        if _enabled:
            self.value -= amount

    def as_value(self) -> float:
        return self.value


def _bucket_index(value: float) -> int:
    if value <= 0.0:
        return _ZERO_BUCKET
    return math.ceil(_BUCKETS_PER_DOUBLING * math.log2(value))


def _bucket_bounds(index: int) -> tuple[float, float]:
    if index == _ZERO_BUCKET:
        return (0.0, 0.0)
    return (
        2.0 ** ((index - 1) / _BUCKETS_PER_DOUBLING),
        2.0 ** (index / _BUCKETS_PER_DOUBLING),
    )


class Histogram:
    """Log-bucketed distribution with exact count/sum/max.

    Buckets hold counts keyed by ``ceil(4*log2(value))``; merging two
    histograms is bucket-wise addition, so percentile summaries computed
    from a merged histogram equal those computed from the union of the
    underlying samples (up to the ~19% bucket resolution).
    """

    __slots__ = ("count", "total", "max", "buckets")

    kind = "histogram"

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.max: float = 0.0
        self.buckets: dict[int, int] = {}

    def record(self, value: float) -> None:
        if not _enabled:
            return
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def percentile(self, quantile: float) -> float:
        """Estimate the ``quantile`` (0..1) value from the buckets."""

        if self.count == 0:
            return 0.0
        rank = quantile * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket >= rank:
                low, high = _bucket_bounds(index)
                fraction = (rank - cumulative) / in_bucket
                estimate = low + (high - low) * min(1.0, max(0.0, fraction))
                return min(estimate, self.max) if self.max > 0 else estimate
            cumulative += in_bucket
        return self.max

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max
        for index, in_bucket in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + in_bucket

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "buckets": {str(index): n for index, n in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        histogram = cls()
        histogram.count = int(data.get("count", 0))
        histogram.total = float(data.get("sum", 0.0))
        histogram.max = float(data.get("max", 0.0))
        buckets = data.get("buckets", {})
        histogram.buckets = {int(index): int(n) for index, n in buckets.items()}
        return histogram


Metric = Union[Counter, Gauge, Histogram]

_M = TypeVar("_M", Counter, Gauge, Histogram)


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: ``\\``, ``"`` and newlines."""

    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def series_key(name: str, labels: Mapping[str, str] | None = None) -> str:
    """Encode ``name`` + sorted labels as one Prometheus-style key.

    Label values are escaped per the Prometheus exposition rules, so a
    value carrying a quote or backslash can neither corrupt the rendered
    text format nor confuse the key-splitting in ``exposition.py``.
    """

    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named metric store; one per process, snapshot-mergeable across."""

    __slots__ = ("_metrics", "_lock")

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def _get_or_create(
        self,
        key: str,
        kind: type[_M],
        factory: Callable[[], _M] | None = None,
    ) -> _M:
        # Double-checked creation: the warm path is one lock-free dict
        # probe.  Entries are only ever *added* (never removed or
        # replaced), and a CPython dict read is atomic, so the unlocked
        # probe either sees the final metric or misses into the locked
        # slow path below.
        metric = self._metrics.get(key)  # repro-lint: ignore[guarded-by] -- deliberate lock-free first probe of an insert-only dict; atomic under the GIL, re-checked under _lock below
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = factory() if factory is not None else kind()
                    self._metrics[key] = metric
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"requested {kind.kind}"
            )
        return metric

    def counter(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        *,
        always: bool = False,
    ) -> Counter:
        """The named counter; ``always=True`` opts it out of ``REPRO_OBS``.

        The flag only matters at first registration (later lookups get
        the existing metric unchanged), so every record site of an
        always-on series should pass it.
        """

        factory = (lambda: Counter(always=True)) if always else None
        return self._get_or_create(series_key(name, labels), Counter, factory)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get_or_create(series_key(name, labels), Gauge)

    def histogram(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Histogram:
        return self._get_or_create(series_key(name, labels), Histogram)

    def snapshot(self) -> dict[str, Any]:
        """Serialize every metric to a JSON-safe, mergeable dict.

        Holds ``_lock`` while walking ``_metrics``: a scrape racing a
        first-time metric registration would otherwise iterate a dict
        being resized (``RuntimeError: dictionary changed size during
        iteration``).  Snapshotting is off the hot path, so the lock
        hold is free in practice.
        """

        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        with self._lock:
            for key, metric in sorted(self._metrics.items()):
                if isinstance(metric, Counter):
                    counters[key] = metric.value
                elif isinstance(metric, Gauge):
                    gauges[key] = metric.value
                else:
                    histograms[key] = metric.as_dict()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge registry snapshots: counters/gauges add, histograms merge.

    Gauges add because the per-process gauges in this codebase are
    levels that aggregate by sum across a pool (queue depths, active
    streams); a pool-wide level is the sum of per-process levels.
    """

    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Histogram] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0) + value
        for key, data in snapshot.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = Histogram.from_dict(data)
            else:
                merged.merge(Histogram.from_dict(data))
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            key: histogram.as_dict() for key, histogram in sorted(histograms.items())
        },
    }


_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """Return the process-wide registry."""

    return _registry


def reset_metrics() -> MetricsRegistry:
    """Replace the process registry with a fresh one (tests/benches only).

    Handles bound from the old registry keep working but stop being
    visible in new snapshots; production code therefore binds handles at
    object construction time, never at module import time.
    """

    global _registry
    _registry = MetricsRegistry()
    return _registry


__all__ = [
    "OBS_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "enabled",
    "merge_snapshots",
    "metrics",
    "reset_metrics",
    "series_key",
    "set_enabled",
]
