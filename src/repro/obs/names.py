"""The metric-name registry: every series name used anywhere, as a constant.

The ``metrics-discipline`` lint rule enforces that record sites never
pass inline string literals to ``counter()`` / ``gauge()`` /
``histogram()`` — they must reference one of these constants.  Keeping
the whole vocabulary in one module means the exposition docs (README
"Observability"), the Prometheus endpoint and the ``stats`` op can never
drift apart on spelling, and grepping a dashboard series name lands
here, next to every record site's import.

Naming follows the Prometheus conventions: ``*_total`` for counters,
``*_seconds`` for duration histograms, bare nouns for gauges.
"""

from __future__ import annotations

# --- async TCP server (front door) ------------------------------------
SERVER_REQUESTS = "repro_server_requests_total"
SERVER_MALFORMED = "repro_server_malformed_total"
SERVER_CONNECTIONS = "repro_server_connections_total"
SERVER_DROPPED_CONNECTIONS = "repro_server_dropped_connections_total"
SERVER_BACKPRESSURE_STALLS = "repro_server_backpressure_stalls_total"
SERVER_ACTIVE_CONNECTIONS = "repro_server_active_connections"
SERVER_ACTIVE_STREAMS = "repro_server_active_streams"
SERVER_QUEUE_DEPTH = "repro_server_queue_depth"
SERVER_BATCH_SIZE = "repro_server_batch_size"
REQUEST_SECONDS = "repro_request_seconds"
SLOW_QUERIES = "repro_slow_queries_total"

# --- per-stage span timings (label: stage=...) ------------------------
STAGE_SECONDS = "repro_stage_seconds"

# --- engine / worker pool ---------------------------------------------
ENGINE_WORKER_DEATHS = "repro_engine_worker_deaths_total"
ENGINE_WORKER_RESTARTS = "repro_engine_worker_restarts_total"

# --- protocol executor (per worker process) ---------------------------
PROTOCOL_REQUESTS = "repro_requests_total"
PROTOCOL_ERRORS = "repro_request_errors_total"
SAMPLE_REQUESTS = "repro_sample_requests_total"
COALESCED_REQUESTS = "repro_coalesced_requests_total"
CACHE_HITS = "repro_witness_cache_hits_total"
CACHE_MISSES = "repro_witness_cache_misses_total"

# --- kernel store ------------------------------------------------------
STORE_HITS = "repro_store_hits_total"
STORE_MISSES = "repro_store_misses_total"
STORE_STORES = "repro_store_stores_total"
STORE_EVICTIONS = "repro_store_evictions_total"
STORE_CORRUPT = "repro_store_corrupt_total"
STORE_SKIPPED = "repro_store_skipped_total"
STORE_MMAP_HITS = "repro_store_mmap_hits_total"
STORE_GET_SECONDS = "repro_store_get_seconds"

# --- kernel / accel profiling -----------------------------------------
LOWERING_SECONDS = "repro_lowering_seconds"
KERNEL_BACKEND_SELECTED = "repro_kernel_backend_total"
ACCEL_SPILLS = "repro_accel_spills_total"

# --- span stage vocabulary (label values of STAGE_SECONDS) ------------
STAGE_PARSE = "parse"
STAGE_COALESCE_WAIT = "coalesce_wait"
STAGE_QUEUE_WAIT = "queue_wait"
STAGE_STORE_FETCH = "store_fetch"
STAGE_LOWERING = "lowering"
STAGE_EXECUTION = "execution"
STAGE_SERIALIZATION = "serialization"

#: Every stage a response's ``timing`` breakdown may carry, in pipeline
#: order (the README documents how to read them).
STAGES = (
    STAGE_PARSE,
    STAGE_COALESCE_WAIT,
    STAGE_QUEUE_WAIT,
    STAGE_STORE_FETCH,
    STAGE_LOWERING,
    STAGE_EXECUTION,
    STAGE_SERIALIZATION,
)

__all__ = [
    "SERVER_REQUESTS",
    "SERVER_MALFORMED",
    "SERVER_CONNECTIONS",
    "SERVER_DROPPED_CONNECTIONS",
    "SERVER_BACKPRESSURE_STALLS",
    "SERVER_ACTIVE_CONNECTIONS",
    "SERVER_ACTIVE_STREAMS",
    "SERVER_QUEUE_DEPTH",
    "SERVER_BATCH_SIZE",
    "REQUEST_SECONDS",
    "SLOW_QUERIES",
    "STAGE_SECONDS",
    "ENGINE_WORKER_DEATHS",
    "ENGINE_WORKER_RESTARTS",
    "PROTOCOL_REQUESTS",
    "PROTOCOL_ERRORS",
    "SAMPLE_REQUESTS",
    "COALESCED_REQUESTS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "STORE_HITS",
    "STORE_MISSES",
    "STORE_STORES",
    "STORE_EVICTIONS",
    "STORE_CORRUPT",
    "STORE_SKIPPED",
    "STORE_MMAP_HITS",
    "STORE_GET_SECONDS",
    "LOWERING_SECONDS",
    "KERNEL_BACKEND_SELECTED",
    "ACCEL_SPILLS",
    "STAGE_PARSE",
    "STAGE_COALESCE_WAIT",
    "STAGE_QUEUE_WAIT",
    "STAGE_STORE_FETCH",
    "STAGE_LOWERING",
    "STAGE_EXECUTION",
    "STAGE_SERIALIZATION",
    "STAGES",
]
