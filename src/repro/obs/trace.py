"""Request tracing: per-request spans with a per-stage timing breakdown.

A span is minted at the service front door (the async server for TCP
requests, the protocol executor for in-process calls) and installed in a
:class:`contextvars.ContextVar`.  Deeper layers — the kernel store, the
lowering path in the facade — never see the span explicitly; they call
:func:`add_stage` and the seconds land on whichever request is currently
executing.  That is what lets ``store_fetch`` and ``lowering`` appear in
a response's ``timing`` dict without threading a context object through
five APIs, and it survives the worker-pool hop because each worker
process executes one request group at a time inside its own span.

Every stage is double-booked: once on the span (so the response can
carry the breakdown when the client asked with ``"trace": true``) and
once in the process registry's ``repro_stage_seconds{stage=...}``
histogram (so percentiles are available even when no client traces).

When observability is disabled the module hands out a shared
:data:`NULL_SPAN` whose recorders are no-ops, so instrumented code never
branches on the flag itself.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from types import TracebackType
from typing import Iterator, Optional

from contextlib import contextmanager

from . import names
from .registry import Histogram, enabled, metrics


class Span:
    """Accumulated per-stage seconds for one request."""

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}

    def add(self, stage: str, seconds: float) -> None:
        seconds = max(0.0, seconds)
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds
        _stage_histogram(stage).record(seconds)

    def stage(self, name: str) -> "_StageTimer":
        return _StageTimer(self, name)

    def as_dict(self) -> dict[str, float]:
        return dict(self.stages)


class _NullSpan(Span):
    """Recording sink used when observability is off."""

    __slots__ = ()

    def add(self, stage: str, seconds: float) -> None:  # pragma: no cover - trivial
        return

    def stage(self, name: str) -> "_StageTimer":
        return _NULL_TIMER


class _StageTimer:
    """``with span.stage("execution"):`` — a minimal timing context."""

    __slots__ = ("_span", "_name", "_started")

    def __init__(self, span: Span, name: str) -> None:
        self._span = span
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_StageTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._span.add(self._name, time.perf_counter() - self._started)


class _NullTimer(_StageTimer):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(NULL_SPAN, "")

    def __enter__(self) -> "_StageTimer":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return


NULL_SPAN: Span = _NullSpan()

_NULL_TIMER = _NullTimer()

_current: ContextVar[Optional[Span]] = ContextVar("repro_obs_span", default=None)


def _stage_histogram(stage: str) -> Histogram:
    return metrics().histogram(names.STAGE_SECONDS, labels={"stage": stage})


def current_span() -> Optional[Span]:
    """The span of the request currently executing, if tracing one."""

    return _current.get()


@contextmanager
def request_span() -> Iterator[Span]:
    """Mint a span for one request and install it as current.

    Yields :data:`NULL_SPAN` when observability is disabled, so callers
    can use the span unconditionally and attach ``span.as_dict()`` only
    when it is non-empty.
    """

    if not enabled():
        yield NULL_SPAN
        return
    span = Span()
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)


def stage(name: str) -> _StageTimer:
    """A timing context for ``name`` on the current request span.

    Returns a no-op timer when no request is being traced, so deep
    record sites (witness serialization, kernel walks) can wrap their
    work unconditionally.
    """

    span = _current.get()
    if span is None or not enabled():
        return _NULL_TIMER
    return _StageTimer(span, name)


def add_stage(stage: str, seconds: float) -> None:
    """Record ``seconds`` against the current request span, if any.

    Outside a request (direct facade use) the per-stage histogram still
    gets the observation, so ``repro_lowering_seconds``-style series are
    populated by batch jobs too.
    """

    if not enabled():
        return
    span = _current.get()
    if span is not None:
        span.add(stage, seconds)
    else:
        _stage_histogram(stage).record(max(0.0, seconds))


__all__ = [
    "NULL_SPAN",
    "Span",
    "add_stage",
    "current_span",
    "request_span",
    "stage",
]
