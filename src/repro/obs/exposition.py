"""Exposition: render a registry snapshot for Prometheus and humans.

Two renderers over the same mergeable snapshot shape
(:meth:`repro.obs.registry.MetricsRegistry.snapshot`):

* :func:`render_prometheus` — the text exposition format (version
  0.0.4) served by the TCP server's ``GET /metrics`` endpoint.
  Histograms are rendered as summaries (``_count``/``_sum``/``_max``
  plus ``quantile``-labelled series) because the log buckets are an
  implementation detail; the quantiles are what SLO dashboards consume.
* :func:`render_text` — an aligned, human-readable snapshot for the
  ``repro stats`` CLI.

Both sort series lexicographically so output is deterministic — the
golden-format test in ``tests/test_obs.py`` depends on it.
"""

from __future__ import annotations

from typing import Any, Mapping

from .registry import Histogram

_QUANTILES = (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99))


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; never expected, be safe
        return str(int(value))
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _split_series(key: str) -> tuple[str, str]:
    """Split an encoded series key into (bare name, label suffix)."""

    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def _with_label(suffix: str, extra: str) -> str:
    """Append one ``k="v"`` pair to an existing ``{...}`` suffix."""

    if not suffix:
        return "{" + extra + "}"
    return suffix[:-1] + "," + extra + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a (possibly merged) snapshot in Prometheus text format."""

    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(snapshot.get("counters", {})):
        name, suffix = _split_series(key)
        declare(name, "counter")
        lines.append(f"{name}{suffix} {_format_value(snapshot['counters'][key])}")
    for key in sorted(snapshot.get("gauges", {})):
        name, suffix = _split_series(key)
        declare(name, "gauge")
        lines.append(f"{name}{suffix} {_format_value(snapshot['gauges'][key])}")
    for key in sorted(snapshot.get("histograms", {})):
        name, suffix = _split_series(key)
        histogram = Histogram.from_dict(snapshot["histograms"][key])
        declare(name, "summary")
        for label, quantile in _QUANTILES:
            series = _with_label(suffix, f'quantile="{label}"')
            lines.append(f"{name}{series} {repr(histogram.percentile(quantile))}")
        lines.append(f"{name}_sum{suffix} {repr(histogram.total)}")
        lines.append(f"{name}_count{suffix} {_format_value(histogram.count)}")
        lines.append(f"{name}_max{suffix} {repr(histogram.max)}")
    return "\n".join(lines) + "\n"


def render_text(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot as an aligned human-readable table."""

    rows: list[tuple[str, str]] = []
    for key in sorted(snapshot.get("counters", {})):
        rows.append((key, _format_value(snapshot["counters"][key])))
    for key in sorted(snapshot.get("gauges", {})):
        rows.append((key, _format_value(snapshot["gauges"][key])))
    for key in sorted(snapshot.get("histograms", {})):
        histogram = Histogram.from_dict(snapshot["histograms"][key])
        summary = histogram.summary()
        # Latency histograms get a seconds suffix; dimensionless ones
        # (e.g. batch size) are printed bare.
        unit = "s" if "_seconds" in _split_series(key)[0] else ""
        detail = (
            f"count={int(summary['count'])}"
            f" p50={summary['p50']:.6f}{unit}"
            f" p95={summary['p95']:.6f}{unit}"
            f" p99={summary['p99']:.6f}{unit}"
            f" max={summary['max']:.6f}{unit}"
        )
        rows.append((key, detail))
    if not rows:
        return "(no metrics recorded)\n"
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name.ljust(width)}  {value}" for name, value in rows) + "\n"


__all__ = ["render_prometheus", "render_text"]
