"""DNF formulas: representation, parsing, exact counting, generators.

A DNF formula over variables ``x_1 … x_n`` is a disjunction of *terms*;
each term is a conjunction of literals.  Exact model counting is by
inclusion–exclusion over terms (2^m worst case) or truth-table sweep
(2^n) — both exponential, both provided for ground truth at test sizes;
that exponential wall is the reason the FPRAS matters.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import InvalidRelationInputError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class DNFTerm:
    """A conjunction of literals: ``{variable_index: required_value}``.

    A term with contradictory literals cannot be represented here — the
    parser collapses e.g. ``x1 ∧ ¬x1`` to an explicitly unsatisfiable
    term via :attr:`satisfiable` = False (mirroring the transducer's
    "halt non-accepting on contradictory disjunct" branch in Section 3).
    """

    literals: tuple  # sorted tuple of (index, value)
    satisfiable: bool = True

    @classmethod
    def from_dict(cls, literals: Mapping[int, int]) -> "DNFTerm":
        return cls(tuple(sorted(literals.items())))

    def as_dict(self) -> dict[int, int]:
        return dict(self.literals)

    def satisfied_by(self, assignment: Sequence[int]) -> bool:
        if not self.satisfiable:
            return False
        return all(assignment[index] == value for index, value in self.literals)

    def count_models(self, num_variables: int) -> int:
        """Models of this single term: 2^(free variables)."""
        if not self.satisfiable:
            return 0
        return 2 ** (num_variables - len(self.literals))


@dataclass(frozen=True)
class DNFFormula:
    """A DNF formula: terms over ``num_variables`` variables (0-indexed)."""

    num_variables: int
    terms: tuple

    def __post_init__(self):
        for term in self.terms:
            for index, value in term.literals:
                if not 0 <= index < self.num_variables:
                    raise InvalidRelationInputError(
                        f"literal index {index} out of range for {self.num_variables} variables"
                    )
                if value not in (0, 1):
                    raise InvalidRelationInputError(f"literal value {value!r} not boolean")

    def evaluate(self, assignment: Sequence[int]) -> bool:
        if len(assignment) != self.num_variables:
            raise InvalidRelationInputError("assignment arity mismatch")
        return any(term.satisfied_by(assignment) for term in self.terms)

    def count_models_brute(self) -> int:
        """Truth-table model count — 2^n, ground truth at test sizes."""
        return sum(
            1
            for bits in itertools.product((0, 1), repeat=self.num_variables)
            if self.evaluate(bits)
        )

    def count_models_inclusion_exclusion(self) -> int:
        """Model count by inclusion–exclusion over terms (2^m worst case)."""
        live_terms = [term for term in self.terms if term.satisfiable]
        total = 0
        for size in range(1, len(live_terms) + 1):
            for subset in itertools.combinations(live_terms, size):
                merged: dict[int, int] = {}
                consistent = True
                for term in subset:
                    for index, value in term.literals:
                        if merged.get(index, value) != value:
                            consistent = False
                            break
                        merged[index] = value
                    if not consistent:
                        break
                if consistent:
                    contribution = 2 ** (self.num_variables - len(merged))
                    total += contribution if size % 2 == 1 else -contribution
        return total

    def models_brute(self) -> list[tuple]:
        """All satisfying assignments (exponential; tests only)."""
        return [
            bits
            for bits in itertools.product((0, 1), repeat=self.num_variables)
            if self.evaluate(bits)
        ]


def parse_dnf(text: str, num_variables: int | None = None) -> DNFFormula:
    """Parse ``"x0 & !x2 | x1"``-style DNF syntax.

    Terms are separated by ``|``, literals by ``&``; a literal is ``xK``
    or ``!xK``.  Contradictory terms are kept but marked unsatisfiable
    (they correspond to the transducer's rejecting branch).
    """
    terms: list[DNFTerm] = []
    max_index = -1
    for chunk in text.split("|"):
        chunk = chunk.strip()
        if not chunk:
            raise InvalidRelationInputError("empty disjunct")
        literals: dict[int, int] = {}
        contradictory = False
        for raw in chunk.split("&"):
            raw = raw.strip()
            negated = raw.startswith("!")
            name = raw[1:] if negated else raw
            if not name.startswith("x") or not name[1:].isdigit():
                raise InvalidRelationInputError(f"bad literal {raw!r}")
            index = int(name[1:])
            max_index = max(max_index, index)
            value = 0 if negated else 1
            if literals.get(index, value) != value:
                contradictory = True
            literals[index] = value
        term = DNFTerm(tuple(sorted(literals.items())), satisfiable=not contradictory)
        terms.append(term)
    n = num_variables if num_variables is not None else max_index + 1
    return DNFFormula(num_variables=n, terms=tuple(terms))


def random_dnf(
    num_variables: int,
    num_terms: int,
    term_width: int,
    rng: random.Random | int | None = None,
) -> DNFFormula:
    """A random DNF: each term fixes ``term_width`` random literals."""
    generator = make_rng(rng)
    if term_width > num_variables:
        raise ValueError("term width exceeds the number of variables")
    terms = []
    for _ in range(num_terms):
        variables = generator.sample(range(num_variables), term_width)
        literals = {index: generator.randrange(2) for index in variables}
        terms.append(DNFTerm.from_dict(literals))
    return DNFFormula(num_variables=num_variables, terms=tuple(terms))
