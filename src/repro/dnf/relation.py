"""SAT-DNF as a relation: the Section 3 transducer and its compilation.

The paper's worked NL-transducer: on input φ = D₁ ∨ … ∨ D_m, guess a
disjunct D_i (two indexes into the input — logspace), reject if D_i is
contradictory, then stream out a satisfying assignment left to right:
forced bits where D_i mentions the variable, a nondeterministic bit
otherwise.  Its configuration graph is tiny — (disjunct, variable
position) pairs — and :func:`dnf_transducer` realizes it through the
:class:`~repro.core.transducers.ConfigGraphTransducer` API so the
Lemma 13 pipeline can be exercised end to end (experiment E9/E13).

:func:`dnf_to_nfa` is the same automaton built directly (skipping the
transducer plumbing): a union of per-term "forced-bits" chains.  One
assignment satisfying several terms has several accepting runs — the
ambiguity that puts SAT-DNF in RelationNL rather than RelationUL.
"""

from __future__ import annotations

from repro.automata.nfa import NFA, Word
from repro.core.relations import AutomatonBackedRelation, CompiledInstance
from repro.core.transducers import ConfigGraphTransducer
from repro.dnf.formulas import DNFFormula


def dnf_to_nfa(formula: DNFFormula) -> NFA:
    """The witness automaton: ``L_n(N_φ)`` = satisfying assignments of φ.

    One chain of states per satisfiable term; at position j the chain
    forces the term's literal bit or allows both.  States are (term
    index, position); a shared final state ends all chains.
    """
    n = formula.num_variables
    states: set = {("init",), ("final",)}
    transitions: list[tuple] = []
    for term_index, term in enumerate(formula.terms):
        if not term.satisfiable:
            continue  # the transducer halts non-accepting on this guess
        forced = term.as_dict()
        previous = ("init",)
        for position in range(n):
            target = ("final",) if position == n - 1 else (term_index, position + 1)
            states.add(target)
            allowed = (
                (str(forced[position]),) if position in forced else ("0", "1")
            )
            for bit in allowed:
                transitions.append((previous, bit, target))
            previous = target
    if n == 0:
        # A zero-variable formula: ε is a witness iff some term is
        # satisfiable (an empty satisfiable term is a tautology).
        finals = [("init",)] if any(t.satisfiable and not t.literals for t in formula.terms) else []
        return NFA(states, ("0", "1"), [], ("init",), finals)
    return NFA(states, ("0", "1"), transitions, ("init",), [("final",)]).trim()


def dnf_transducer() -> ConfigGraphTransducer:
    """The Section 3 NL-transducer for SAT-DNF, as a configuration graph.

    Configurations (logspace-describable, as the paper requires):

    * ``("guess",)`` — initial: about to choose a disjunct;
    * ``("emit", i, j)`` — committed to disjunct ``i``, about to output
      the bit for variable ``j``;
    * ``("accept", i)`` — all bits emitted.

    Inputs are :class:`DNFFormula` objects (the paper's string encoding
    of φ adds only parsing, which :func:`repro.dnf.parse_dnf` performs).
    """

    def initial(formula: DNFFormula):
        return ("guess",)

    def step(formula: DNFFormula, config):
        kind = config[0]
        n = formula.num_variables
        if kind == "guess":
            for index, term in enumerate(formula.terms):
                # The machine checks satisfiability of the guessed
                # disjunct in logspace and halts non-accepting if it is
                # contradictory — modeled by simply not emitting the
                # branch (a rejecting sink adds nothing to the output
                # language).
                if term.satisfiable:
                    if n == 0:
                        yield None, ("accept", index)
                    else:
                        yield None, ("emit", index, 0)
            return
        if kind == "emit":
            _, index, position = config
            term = formula.terms[index]
            forced = term.as_dict()
            nxt = ("accept", index) if position == n - 1 else ("emit", index, position + 1)
            if position in forced:
                yield str(forced[position]), nxt
            else:
                yield "0", nxt
                yield "1", nxt
            return
        # accept: halting configuration, no successors.

    def accepting(formula: DNFFormula, config) -> bool:
        return config[0] == "accept"

    def bound(formula: DNFFormula) -> int:
        return 2 + len(formula.terms) * (formula.num_variables + 2)

    return ConfigGraphTransducer(
        initial=initial,
        step=step,
        accepting=accepting,
        bound=bound,
        name="SAT-DNF transducer (§3)",
    )


class SatDnfRelation(AutomatonBackedRelation):
    """``SAT-DNF``: inputs are DNF formulas, witnesses their models.

    Witness words are assignments as 0/1 tuples in variable order; decode
    maps them to ``(v_0, …, v_{n-1})`` integer tuples.
    """

    name = "SAT-DNF"

    def __init__(self, via_transducer: bool = False):
        self.via_transducer = via_transducer
        self._transducer = dnf_transducer() if via_transducer else None

    def compile(self, instance: DNFFormula) -> CompiledInstance:
        if self.via_transducer:
            from repro.core.transducers import compile_to_nfa

            nfa = compile_to_nfa(self._transducer, instance)
        else:
            nfa = dnf_to_nfa(instance)
        return CompiledInstance(nfa=nfa, length=instance.num_variables)

    def decode_witness(self, instance: DNFFormula, w: Word) -> tuple:
        return tuple(int(bit) for bit in w)

    def encode_witness(self, instance: DNFFormula, witness: tuple) -> Word:
        return tuple(str(bit) for bit in witness)

    def check(self, instance: DNFFormula, witness: tuple) -> bool:
        return len(witness) == instance.num_variables and instance.evaluate(witness)
