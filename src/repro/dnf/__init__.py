"""SAT-DNF (Section 3's worked example) through the RelationNL pipeline.

The relation ``SAT-DNF = {(φ, σ) : φ in DNF, σ(φ) = 1}`` is the paper's
introductory member of RelationNL: counting satisfying assignments of a
DNF is #P-complete yet admits an FPRAS (Karp–Luby, [KL83]); the paper's
point is that the *generic* #NFA FPRAS also covers it, via the simple
NL-transducer sketched in Section 3.  We provide the transducer, the
direct compilation, and the Karp–Luby baseline for the E13 comparison.
"""

from repro.dnf.formulas import DNFFormula, DNFTerm, parse_dnf, random_dnf
from repro.dnf.relation import SatDnfRelation, dnf_transducer, dnf_to_nfa

__all__ = [
    "DNFFormula",
    "DNFTerm",
    "parse_dnf",
    "random_dnf",
    "SatDnfRelation",
    "dnf_to_nfa",
    "dnf_transducer",
]
