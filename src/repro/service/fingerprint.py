"""Stable content fingerprints for automata and symbolic plans.

The :class:`~repro.service.store.KernelStore` is content-addressed: two
processes that compile the same instance must agree on its key without
talking to each other.  Python's builtin ``hash`` is randomized per
process and ``repr`` of sets is hash-ordered, so neither is usable.
This module canonicalizes an automaton / plan into a deterministic
JSON-able structure (states and symbols through the same tagged-atom
codec the serializers use; every set sorted by its canonical encoding)
and hashes that with SHA-256.

The fingerprint covers the *language source* only — not the witness
length ``n`` and not the trimmed/reachable mode; the store composes
those into the storage key, so one source shares a fingerprint across
all its compilations.

Sources that contain non-serializable states (arbitrary objects as NFA
states are legal) raise :class:`FingerprintError`; callers that use
fingerprints opportunistically (the facade's store wiring) catch it and
simply skip caching.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

from repro.automata.nfa import EPSILON, NFA
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.core.plan import Plan
    from repro.graphdb.graph import GraphDatabase
    from repro.spanners.eva import EVA

FINGERPRINT_VERSION = 1


class FingerprintError(ReproError):
    """The source contains values with no canonical serialization."""


def _canon_atom(value: Any) -> Any:
    """Canonical JSON-able form of a state/symbol (tagged, order-stable)."""
    if value is EPSILON:
        return ["ε"]
    if isinstance(value, tuple):
        return ["t", [_canon_atom(item) for item in value]]
    if isinstance(value, (frozenset, set)):
        encoded = [_canon_atom(item) for item in value]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["s", encoded]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, (str, int, float)) or value is None:
        return ["a", value]
    raise FingerprintError(
        f"cannot fingerprint {value!r}: states/symbols must be strings, "
        "numbers, tuples or frozensets thereof"
    )


def _sort_key(item: Any) -> str:
    return json.dumps(item, sort_keys=True)


def _canon_nfa(nfa: NFA) -> list[Any]:
    return [
        "nfa",
        sorted((_canon_atom(state) for state in nfa.states), key=_sort_key),
        sorted((_canon_atom(symbol) for symbol in nfa.alphabet), key=_sort_key),
        _canon_atom(nfa.initial),
        sorted((_canon_atom(state) for state in nfa.finals), key=_sort_key),
        sorted(
            (
                [_canon_atom(source), _canon_atom(symbol), _canon_atom(target)]
                for source, symbol, target in nfa.transitions
            ),
            key=_sort_key,
        ),
    ]


def _canon_graph(graph: GraphDatabase) -> list[Any]:
    return [
        "graph",
        sorted((_canon_atom(vertex) for vertex in graph.vertices), key=_sort_key),
        sorted(
            (
                [_canon_atom(u), _canon_atom(label), _canon_atom(v)]
                for u, label, v in graph.edges
            ),
            key=_sort_key,
        ),
    ]


def _canon_eva(eva: EVA) -> list[Any]:
    return [
        "eva",
        sorted((_canon_atom(state) for state in eva.states), key=_sort_key),
        _canon_atom(eva.initial),
        sorted((_canon_atom(state) for state in eva.finals), key=_sort_key),
        sorted(
            (
                [_canon_atom(t.source), _canon_atom(t.symbol), _canon_atom(t.target)]
                for t in eva.letter
            ),
            key=_sort_key,
        ),
        sorted(
            (
                [_canon_atom(t.source), _canon_atom(t.markers), _canon_atom(t.target)]
                for t in eva.variable
            ),
            key=_sort_key,
        ),
        sorted((_canon_atom(variable) for variable in eva.variables), key=_sort_key),
    ]


def _canon_plan(plan: Plan) -> list[Any]:
    # Imported here to avoid a module cycle (plan → kernel → snapshot).
    from repro.core.plan import (
        Atom,
        Concat,
        DocProduct,
        GraphProduct,
        Product,
        Relabel,
        Star,
        Union,
    )

    if isinstance(plan, Atom):
        return ["atom", _canon_nfa(plan.nfa)]
    if isinstance(plan, Product):
        return ["product", _canon_plan(plan.left), _canon_plan(plan.right)]
    if isinstance(plan, Union):
        return ["union", _canon_plan(plan.left), _canon_plan(plan.right)]
    if isinstance(plan, Concat):
        return ["concat", _canon_plan(plan.left), _canon_plan(plan.right)]
    if isinstance(plan, Star):
        return ["star", _canon_plan(plan.child)]
    if isinstance(plan, Relabel):
        mapping = sorted(
            ([_canon_atom(old), _canon_atom(new)] for old, new in plan.mapping.items()),
            key=_sort_key,
        )
        return ["relabel", _canon_plan(plan.child), mapping]
    if isinstance(plan, GraphProduct):
        return [
            "graphproduct",
            _canon_graph(plan.graph),
            _canon_nfa(plan.query),
            _canon_atom(plan.source),
            _canon_atom(plan.target),
        ]
    if isinstance(plan, DocProduct):
        return ["docproduct", _canon_eva(plan.eva), plan.document]
    payload = getattr(plan, "fingerprint_payload", None)
    if payload is not None:
        return ["custom", type(plan).__name__, payload()]
    raise FingerprintError(
        f"no canonical serialization for plan node {type(plan).__name__}; "
        "implement fingerprint_payload() to make it store-cacheable"
    )


def canonical_source(source: NFA | Plan) -> list[Any]:
    """The canonical JSON-able structure behind :func:`fingerprint_source`."""
    from repro.core.plan import Plan

    if isinstance(source, NFA):
        return _canon_nfa(source)
    if isinstance(source, Plan):
        return _canon_plan(source)
    raise FingerprintError(
        f"cannot fingerprint a {type(source).__name__}; expected an NFA or Plan"
    )


def fingerprint_source(source: NFA | Plan) -> str:
    """SHA-256 hex fingerprint of an automaton or plan, stable across
    processes, platforms and hash seeds.

    Structurally identical sources (same states, symbols, transitions —
    regardless of construction order) produce identical fingerprints;
    any semantic difference in the canonical structure changes it.
    """
    canonical = ["repro.fingerprint", FINGERPRINT_VERSION, canonical_source(source)]
    text = json.dumps(canonical, sort_keys=True, ensure_ascii=False, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


__all__ = ["FingerprintError", "canonical_source", "fingerprint_source", "FINGERPRINT_VERSION"]
