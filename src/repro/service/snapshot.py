"""The compact binary snapshot format for compiled kernels.

A :class:`~repro.core.kernel.CompiledDAG` is the expensive artifact of
the whole pipeline — lowering (especially from a symbolic plan) costs
polynomial work while every query on the finished kernel is near-free.
Snapshots make that work durable: ``kernel.to_bytes()`` serializes the
complete execution state and ``CompiledDAG.from_bytes`` restores a
kernel that answers count / sample / enumerate / spectrum queries
without touching the original automaton.

Layout::

    magic  b"RPROKRN1"
    u32    header length
    bytes  header — JSON (UTF-8) with the structural metadata:
           n, trimmed, symbols, per-layer states (tagged-atom codec),
           the initial index, per-layer final indices, LoweringStats,
           and the section directory for the binary payload
    bytes  payload — the CSR edge arrays and any *packed* run-count
           rows, each dumped as a little-endian ``array('q')``

Count rows that spilled to bignums (entries beyond 64 bits) are encoded
as JSON integer lists inside the header — JSON integers are arbitrary
precision, so exactness survives the round-trip.  State and symbol
objects go through the same tagged-atom codec as the NFA serializer, so
tuples, frozensets (spanner marker sets) and plan product states
round-trip by value.

A restored kernel carries a :class:`_SnapshotSource` in place of its
automaton: initial state, accepting-state membership and alphabet are
answered from the snapshot itself; only
:meth:`~repro.core.kernel.CompiledDAG.extend_to` — the one operation
needing transitions beyond the recorded layers — requires the original
source, which callers may supply lazily via ``source_resolver``.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from array import array
from typing import TYPE_CHECKING, Any, Callable, Container, Iterable

from repro.automata.serialization import _decode_atom, _encode_atom
from repro.errors import InvalidAutomatonError, ReproError

if TYPE_CHECKING:
    from repro.automata.nfa import State, Symbol
    from repro.core.kernel import AutomatonSource, CompiledDAG, CountRow

MAGIC = b"RPROKRN1"

#: Version 2 pads the payload to an 8-byte file offset so every ``'q'``
#: section is naturally aligned — what lets :func:`kernel_from_mmap`
#: hand out int64 views straight over the mapped file.  Version-1
#: snapshots still load (with a copying restore).
SNAPSHOT_VERSION = 2

#: Payload sections are little-endian int64 rows; version ≥ 2 aligns
#: their start (and hence, all of them) to this boundary.
_ALIGN = 8

#: Buffer borrowing assumes ``array('l')`` is 8 bytes (LP64): a
#: materializing copy-on-extend moves borrowed edge bytes into ``'l'``
#: arrays verbatim.  Elsewhere the borrow mode quietly degrades to a
#: full-copy restore.
_LP64 = array("l").itemsize == array("q").itemsize

#: Largest count representable in a packed ``array('q')`` row.
_INT64_MAX = 2**63 - 1


class SnapshotError(ReproError):
    """The bytes are not a valid kernel snapshot (or the kernel is not
    snapshot-serializable)."""


class _SnapshotSource:
    """The automaton stand-in a restored kernel carries.

    Serves the queries a finished kernel still makes against its source
    (initial state, accepting membership, alphabet) from snapshot data.
    Transition queries (``out_edges``, needed only by ``extend_to``)
    delegate to the lazily resolved original source when a resolver was
    supplied, and fail with a clear error otherwise.
    """

    __slots__ = ("initial", "_finals", "_alphabet", "_resolver", "_resolved")

    initial: State
    _finals: frozenset[State]
    _alphabet: frozenset[Symbol]
    _resolver: Callable[[], AutomatonSource] | None
    _resolved: AutomatonSource | None

    has_epsilon = False

    def __init__(
        self,
        initial: State,
        finals: frozenset[State],
        alphabet: frozenset[Symbol],
        resolver: Callable[[], AutomatonSource] | None = None,
    ) -> None:
        self.initial = initial
        self._finals = finals
        self._alphabet = alphabet
        self._resolver = resolver
        self._resolved = None

    def _resolve(self) -> AutomatonSource:
        if self._resolved is None:
            if self._resolver is None:
                raise InvalidAutomatonError(
                    "this kernel was restored from a snapshot without its "
                    "source automaton; extending it requires from_bytes("
                    "..., source_resolver=...)"
                )
            self._resolved = self._resolver()
        return self._resolved

    @property
    def finals(self) -> Container[State]:
        if self._resolved is not None:
            return self._resolved.finals
        return self._finals

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return self._alphabet

    def out_edges(self, state: State) -> Iterable[tuple[Symbol, State]]:
        return self._resolve().out_edges(state)

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        return frozenset(t for s, t in self.out_edges(state) if s == symbol)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<SnapshotSource resolved={self._resolved is not None}>"


def _encode_atoms(values: Iterable[object]) -> list[Any]:
    """A sequence of states/symbols → its header encoding.

    Plain scalar sequences (strings/numbers — the overwhelmingly common
    state shape) are stored raw under a ``["plain", ...]`` marker so the
    restore path is a single C-level JSON parse; anything structured
    (tuples, frozensets, ε) falls back to the tagged-atom codec.
    """
    items = list(values)
    if all(
        isinstance(item, (str, int, float)) and not isinstance(item, bool)
        for item in items
    ):
        return ["plain", items]
    return ["tagged", [_encode_atom(item) for item in items]]


def _decode_atoms(encoded: list[Any]) -> tuple[Any, ...]:
    marker, items = encoded
    if marker == "plain":
        return tuple(items)
    return tuple(_decode_atom(item) for item in items)


def _encode_count_row(row: CountRow) -> tuple[dict[str, Any], bytes | None]:
    """One run-count row → (directory entry, packed payload or None)."""
    if isinstance(row, list):
        # Bignum spill: JSON integers are arbitrary precision.
        return {"spill": row}, None
    # array('q') or a borrowed int64 memoryview — both are packed.
    return {"packed": len(row)}, row.tobytes()


def _decode_count_row(
    entry: dict[str, Any], payload: memoryview, offset: int, borrow: bool = False
) -> tuple[CountRow, int]:
    if "spill" in entry:
        return list(entry["spill"]), offset
    count = entry["packed"]
    row = array("q")
    end = offset + count * row.itemsize
    if end > len(payload):
        raise SnapshotError("truncated snapshot payload")
    if borrow:
        return payload[offset:end].cast("q"), end
    row.frombytes(bytes(payload[offset:end]))
    return row, end


def kernel_to_bytes(kernel: CompiledDAG, version: int = SNAPSHOT_VERSION) -> bytes:
    """Serialize ``kernel`` into the snapshot format (see module docs).

    ``version`` selects the on-disk layout: 2 (the default) pads the
    payload start to an 8-byte offset for mmap borrowing; 1 writes the
    legacy unpadded layout (kept for compatibility tests).
    """
    if version not in (1, 2):
        raise SnapshotError(f"unsupported snapshot version {version!r}")
    try:
        symbols = _encode_atoms(kernel.symbols)
        states = [
            _encode_atoms(kernel.layer_states(t)) for t in range(kernel.n + 1)
        ]
    except InvalidAutomatonError as error:
        raise SnapshotError(f"kernel is not snapshot-serializable: {error}") from error

    initial_index = kernel.index_of(0, kernel.nfa.initial)
    finals_idx = [list(kernel.final_indices(t)) for t in range(kernel.n + 1)]

    sections: list[bytes] = []
    edges = []
    for t in range(kernel.n):
        start_row = array("q", kernel._edge_start[t])
        symbol_row = array("q", kernel._edge_symbol[t])
        dst_row = array("q", kernel._edge_dst[t])
        sections.extend((start_row.tobytes(), symbol_row.tobytes(), dst_row.tobytes()))
        edges.append(
            {"start": len(start_row), "symbol": len(symbol_row), "dst": len(dst_row)}
        )

    def encode_table(table: list[CountRow] | None) -> list[dict[str, Any]] | None:
        if table is None:
            return None
        entries: list[dict[str, Any]] = []
        for row in table:
            entry, payload = _encode_count_row(row)
            entries.append(entry)
            if payload is not None:
                sections.append(payload)
        return entries

    forward = encode_table(kernel._forward)
    backward = encode_table(kernel._backward)

    header = {
        "version": version,
        "n": kernel.n,
        "trimmed": kernel.trimmed,
        "symbols": symbols,
        "states": states,
        "initial_index": initial_index,
        "finals_idx": finals_idx,
        "edges": edges,
        "forward": forward,
        "backward": backward,
        "lowering": kernel.lowering.as_dict() if kernel.lowering else None,
    }
    header_bytes = json.dumps(header, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    )
    prefix = [MAGIC, struct.pack("<I", len(header_bytes)), header_bytes]
    if version >= 2:
        # Align the payload start; every section is a whole number of
        # int64s, so this one pad aligns them all.  The reader derives
        # the pad width from the header length — it is not stored.
        pad = (-(len(MAGIC) + 4 + len(header_bytes))) % _ALIGN
        if pad:
            prefix.append(b"\x00" * pad)
    return b"".join(prefix + sections)


def kernel_from_bytes(
    data: bytes | bytearray | memoryview | mmap.mmap,
    source_resolver: Callable[[], AutomatonSource] | None = None,
    *,
    borrow: bool = False,
) -> CompiledDAG:
    """Restore a :class:`~repro.core.kernel.CompiledDAG` from snapshot
    bytes (inverse of :func:`kernel_to_bytes`).

    With ``borrow=True`` the restored kernel *borrows* its CSR edge
    blocks and packed count rows as int64 memoryviews over ``data``
    instead of copying them out — the caller keeps ``data`` (typically
    an mmap) alive; the kernel records it in ``_borrow_owner`` and
    copies-on-extend.  Borrowing needs the aligned version-2 layout and
    an LP64 platform; otherwise this silently falls back to the
    copying restore (``_borrow_owner`` stays None).
    """
    from repro.core import accel as accel_mod
    from repro.core.kernel import CompiledDAG
    from repro.core.plan import LoweringStats

    view = memoryview(data)
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise SnapshotError("not a repro kernel snapshot (bad magic)")
    try:
        (header_len,) = struct.unpack_from("<I", view, len(MAGIC))
        header_start = len(MAGIC) + 4
        header = json.loads(bytes(view[header_start : header_start + header_len]))
    except (struct.error, ValueError) as error:
        raise SnapshotError(f"corrupt snapshot header: {error}") from error
    version = header.get("version")
    if version not in (1, SNAPSHOT_VERSION):
        raise SnapshotError(f"unsupported snapshot version {version!r}")
    borrow = borrow and version >= 2 and _LP64
    borrowed_any = False

    try:
        n = header["n"]
        symbols = _decode_atoms(header["symbols"])
        states = [_decode_atoms(layer) for layer in header["states"]]
        offset = header_start + header_len
        if version >= 2:
            offset += (-offset) % _ALIGN
        itemsize = array("q").itemsize

        long_matches_q = _LP64

        def read_long_row(count: int) -> "array[int] | memoryview[int]":
            nonlocal offset, borrowed_any
            end = offset + count * itemsize
            if end > len(view):
                raise SnapshotError("truncated snapshot payload")
            if borrow:
                chunk = view[offset:end].cast("q")
                offset = end
                borrowed_any = True
                return chunk
            payload = bytes(view[offset:end])
            offset = end
            # Snapshots store 'q' (8-byte) rows; on LP64 platforms 'l'
            # has the same layout, so the bytes load directly.
            row = array("l" if long_matches_q else "q")
            row.frombytes(payload)
            return row if long_matches_q else array("l", row)

        edge_start: list[array[int] | memoryview[int]] = []
        edge_symbol: list[array[int] | memoryview[int]] = []
        edge_dst: list[array[int] | memoryview[int]] = []
        for entry in header["edges"]:
            edge_start.append(read_long_row(entry["start"]))
            edge_symbol.append(read_long_row(entry["symbol"]))
            edge_dst.append(read_long_row(entry["dst"]))

        def read_table(entries: list[dict[str, Any]] | None) -> list[CountRow] | None:
            nonlocal offset, borrowed_any
            if entries is None:
                return None
            table: list[CountRow] = []
            for entry in entries:
                if offset > len(view):
                    raise SnapshotError("truncated snapshot payload")
                row, offset = _decode_count_row(entry, view, offset, borrow=borrow)
                if borrow and isinstance(row, memoryview):
                    borrowed_any = True
                table.append(row)
            return table

        forward = read_table(header["forward"])
        backward = read_table(header["backward"])
        if offset != len(view):
            # Trailing or missing bytes: the payload must be consumed
            # exactly, or a tail-truncated/padded file would restore
            # "successfully" and crash later instead of being
            # quarantined by the store.
            raise SnapshotError("snapshot payload size mismatch")
        finals_idx = {t: tuple(row) for t, row in enumerate(header["finals_idx"])}
        initial_index = header["initial_index"]
    except (KeyError, IndexError, TypeError, ValueError, OverflowError) as error:
        raise SnapshotError(f"corrupt snapshot body: {error}") from error

    if len(states) != n + 1 or len(header["edges"]) != n:
        raise SnapshotError("snapshot layer structure does not match n")

    initial = states[0][initial_index] if initial_index is not None else None
    finals_union = frozenset(
        states[t][i] for t, row in finals_idx.items() for i in row
    )
    source = _SnapshotSource(
        initial, finals_union, frozenset(symbols), resolver=source_resolver
    )

    kernel = CompiledDAG.__new__(CompiledDAG)
    kernel.nfa = source
    kernel.n = n
    kernel.trimmed = header["trimmed"]
    kernel.symbols = symbols
    kernel._symbol_index = {s: i for i, s in enumerate(symbols)}
    kernel._states = states
    kernel._index = [
        {state: i for i, state in enumerate(layer)} for layer in states
    ]
    kernel._edge_start = edge_start
    kernel._edge_symbol = edge_symbol
    kernel._edge_dst = edge_dst
    kernel._redge = {}
    kernel._forward = forward
    kernel._backward = backward
    kernel._cum = {}
    kernel._layer_sets = {}
    kernel._finals_idx = finals_idx
    lowering = header.get("lowering")
    kernel.lowering = LoweringStats(**lowering) if lowering else None
    kernel.fingerprint = None  # the store stamps its key after restore
    kernel.accel = accel_mod.resolve(None)
    kernel._accel_state = {}
    kernel._borrow_owner = data if borrowed_any else None
    return kernel


def kernel_from_mmap(
    path: str | os.PathLike[str],
    source_resolver: Callable[[], AutomatonSource] | None = None,
) -> CompiledDAG:
    """Restore a kernel over a read-only memory map of the snapshot file.

    The kernel's CSR arrays and packed count rows become int64 views
    straight into the mapping, so a warm start pages data lazily on
    first touch instead of copying the whole payload up front.  The
    mapping stays open for the kernel's lifetime (it is the kernel's
    ``_borrow_owner``); on Linux the file may be unlinked (store
    eviction) while the kernel keeps using it.  A version-1 snapshot —
    or a non-LP64 platform — restores by copy and the mapping is closed
    immediately.
    """
    try:
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except ValueError as error:
        # Zero-length file (classic truncation corruption).
        raise SnapshotError(f"cannot map snapshot: {error}") from error
    try:
        kernel = kernel_from_bytes(mapped, source_resolver=source_resolver, borrow=True)
    except SnapshotError:
        try:
            mapped.close()
        except BufferError:
            # The exception traceback pins partially-decoded views into
            # the map; it closes when the last of them is collected.
            pass
        raise
    if kernel._borrow_owner is None:
        mapped.close()
    return kernel


__all__ = [
    "SnapshotError",
    "kernel_to_bytes",
    "kernel_from_bytes",
    "kernel_from_mmap",
    "MAGIC",
    "SNAPSHOT_VERSION",
]
