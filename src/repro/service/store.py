""":class:`KernelStore` — the content-addressed on-disk kernel cache.

A cold process pays the full preprocessing bill (ε-elimination,
unrolling, lowering, count tables) before its first answer; a warm one
should not.  The store persists kernel snapshots keyed by
``(fingerprint, n, mode)`` so any later process — or a sibling worker in
the :class:`~repro.service.engine.Engine` pool — starts from the
finished artifact:

* **content-addressed**: the key's fingerprint half is the canonical
  SHA-256 of the automaton / plan (:mod:`repro.service.fingerprint`), so
  structurally identical instances share an entry no matter who wrote
  it, and a stale entry for a *different* automaton is impossible by
  construction;
* **atomic writes**: snapshots are written to a temp file in the same
  directory and ``os.replace``-d into place, so concurrent readers and
  writers (the multiprocess engine) never observe half a snapshot;
* **LRU size bounding**: when the store grows past ``max_bytes``, the
  least-recently-*used* entries (access bumps mtime) are evicted;
* **corruption recovery**: an unreadable entry (truncated write, bad
  magic, garbage) is quarantined — deleted and counted — and the caller
  simply rebuilds, as for a miss;
* **stats**: hits / misses / stores / evictions / corrupt counts on
  :attr:`KernelStore.stats`.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.obs import add_stage, metrics
from repro.obs import names as metric_names
from repro.service.snapshot import (
    SnapshotError,
    kernel_from_bytes,
    kernel_from_mmap,
    kernel_to_bytes,
)

if TYPE_CHECKING:
    from repro.core.kernel import AutomatonSource, CompiledDAG

#: Default size bound: plenty for thousands of mid-size kernels.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment variable naming the default store directory.
STORE_ENV = "REPRO_KERNEL_STORE"

_SUFFIX = ".kern"


class StoreStats:
    """Counters for one :class:`KernelStore` instance.

    Re-based onto :mod:`repro.obs`: the per-instance fields stay exact
    plain integers (they are functional state — tests and callers read
    them regardless of the ``REPRO_OBS`` switch), and every increment is
    mirrored into the process metrics registry
    (``repro_store_*_total``), where the exposition layer aggregates
    them across stores and worker processes.  :meth:`as_dict` is the
    same view it always was.

    A store is shared across threads (the facade's process default is
    hit from the engine's executor thread and the caller's), so the
    counters are guarded by ``_lock``: hot paths bump them through the
    atomic :meth:`inc`, and the property accessors take the lock.  A
    bare ``stats.hits += 1`` from outside remains two separate locked
    operations — use :meth:`inc` anywhere the count must be exact.
    ``_lock`` is never held across a call that takes another StoreStats
    lock, and the registry mirror inside it only ever acquires the
    registry creation lock — one global order, no cycles.
    """

    __slots__ = ("_hits", "_misses", "_stores", "_evictions", "_corrupt",
                 "_skipped", "_lock", "extra")

    _SERIES = {
        "hits": metric_names.STORE_HITS,
        "misses": metric_names.STORE_MISSES,
        "stores": metric_names.STORE_STORES,
        "evictions": metric_names.STORE_EVICTIONS,
        "corrupt": metric_names.STORE_CORRUPT,
        "skipped": metric_names.STORE_SKIPPED,
    }

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        stores: int = 0,
        evictions: int = 0,
        corrupt: int = 0,
        skipped: int = 0,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._hits = hits  # guarded-by: _lock
        self._misses = misses  # guarded-by: _lock
        self._stores = stores  # guarded-by: _lock
        self._evictions = evictions  # guarded-by: _lock
        self._corrupt = corrupt  # guarded-by: _lock
        self._skipped = skipped  # guarded-by: _lock
        self.extra: dict[str, Any] = dict(extra) if extra else {}

    @staticmethod
    def _mirror(series: str, delta: int) -> None:
        # always=True: the mirrored registry series must stay exact
        # alongside the functional view, whatever REPRO_OBS says.
        if delta > 0:
            metrics().counter(series, always=True).inc(delta)

    def inc(self, series: str, delta: int = 1) -> None:
        """Atomically bump one counter and its mirrored registry series.

        The ``stats.hits += 1`` spelling expands to a property read and
        a property write — two lock acquisitions with a window between
        them where a concurrent increment is lost.  ``inc`` does the
        read-modify-write under one hold, so it is the only spelling
        the store's hot paths use.
        """
        if series not in self._SERIES:
            raise ValueError(f"unknown store counter {series!r}")
        name = "_" + series
        with self._lock:
            self._mirror(self._SERIES[series], delta)
            setattr(self, name, getattr(self, name) + delta)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @hits.setter
    def hits(self, value: int) -> None:
        with self._lock:
            self._mirror(self._SERIES["hits"], value - self._hits)
            self._hits = value

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @misses.setter
    def misses(self, value: int) -> None:
        with self._lock:
            self._mirror(self._SERIES["misses"], value - self._misses)
            self._misses = value

    @property
    def stores(self) -> int:
        with self._lock:
            return self._stores

    @stores.setter
    def stores(self, value: int) -> None:
        with self._lock:
            self._mirror(self._SERIES["stores"], value - self._stores)
            self._stores = value

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    @evictions.setter
    def evictions(self, value: int) -> None:
        with self._lock:
            self._mirror(self._SERIES["evictions"], value - self._evictions)
            self._evictions = value

    @property
    def corrupt(self) -> int:
        with self._lock:
            return self._corrupt

    @corrupt.setter
    def corrupt(self, value: int) -> None:
        with self._lock:
            self._mirror(self._SERIES["corrupt"], value - self._corrupt)
            self._corrupt = value

    @property
    def skipped(self) -> int:
        with self._lock:
            return self._skipped

    @skipped.setter
    def skipped(self, value: int) -> None:
        with self._lock:
            self._mirror(self._SERIES["skipped"], value - self._skipped)
            self._skipped = value

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "evictions": self._evictions,
                "corrupt": self._corrupt,
                "skipped": self._skipped,
            }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"StoreStats({self.as_dict()!r}, extra={self.extra!r})"


class KernelStore:
    """Content-addressed kernel snapshots under one root directory.

    Parameters
    ----------
    root:
        Directory holding the snapshots (created on demand).  Safe to
        share between processes: writes are atomic and keys are
        content-addressed.
    max_bytes:
        Total snapshot size bound; exceeding it evicts least-recently
        used entries after each store.
    mmap:
        When True, :meth:`get` restores kernels as zero-copy views over
        a memory map of the snapshot file instead of reading and
        copying it — a warm start pages CSR arrays in lazily.  Safe
        alongside eviction on POSIX (an unlinked mapping stays valid);
        old (version-1) snapshots transparently fall back to the
        copying restore.
    """

    root: Path
    max_bytes: int
    mmap: bool
    stats: StoreStats

    def __init__(
        self,
        root: str | os.PathLike[str],
        max_bytes: int = DEFAULT_MAX_BYTES,
        mmap: bool = False,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.mmap = mmap
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def path_for(self, fingerprint: str, n: int, trimmed: bool) -> Path:
        """The snapshot path for ``(fingerprint, n, mode)``.

        Two-level fan-out (first byte of the fingerprint) keeps
        directories small under many entries.
        """
        mode = "trimmed" if trimmed else "reachable"
        return self.root / fingerprint[:2] / f"{fingerprint}-n{n}-{mode}{_SUFFIX}"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------

    def get(
        self,
        fingerprint: str,
        n: int,
        trimmed: bool,
        source_resolver: Callable[[], AutomatonSource] | None = None,
    ) -> CompiledDAG | None:
        """The stored kernel, or ``None`` on miss / corrupt entry.

        A hit bumps the entry's mtime (the LRU clock).  A corrupt entry
        is deleted so the subsequent :meth:`put` heals the store.
        """
        started = time.perf_counter()
        try:
            return self._get(fingerprint, n, trimmed, source_resolver)
        finally:
            elapsed = time.perf_counter() - started
            add_stage(metric_names.STAGE_STORE_FETCH, elapsed)
            metrics().histogram(metric_names.STORE_GET_SECONDS).record(elapsed)

    def _get(
        self,
        fingerprint: str,
        n: int,
        trimmed: bool,
        source_resolver: Callable[[], AutomatonSource] | None = None,
    ) -> CompiledDAG | None:
        path = self.path_for(fingerprint, n, trimmed)
        try:
            if self.mmap:
                kernel = kernel_from_mmap(path, source_resolver=source_resolver)
                kernel.fingerprint = fingerprint
                if kernel._borrow_owner is not None:
                    count = self.stats.extra.get("mmap_hits", 0)
                    self.stats.extra["mmap_hits"] = count + 1
                    metrics().counter(
                        metric_names.STORE_MMAP_HITS, always=True
                    ).inc()
                self.stats.inc("hits")
                try:
                    os.utime(path)
                except OSError:  # pragma: no cover - entry may have been evicted
                    pass
                return kernel
            data = path.read_bytes()
        except OSError:
            self.stats.inc("misses")
            return None
        except SnapshotError:
            self.stats.inc("corrupt")
            self.stats.inc("misses")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink is fine
                pass
            return None
        try:
            kernel = kernel_from_bytes(data, source_resolver=source_resolver)
            kernel.fingerprint = fingerprint  # the content-address it was stored under
        except SnapshotError:
            self.stats.inc("corrupt")
            self.stats.inc("misses")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink is fine
                pass
            return None
        self.stats.inc("hits")
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry may have been evicted
            pass
        return kernel

    def put(self, fingerprint: str, n: int, trimmed: bool, kernel: CompiledDAG) -> bool:
        """Persist ``kernel`` under ``(fingerprint, n, mode)``; atomic.

        Returns False (and counts ``skipped``) when the kernel has no
        snapshot serialization — callers treat the store as best-effort.
        """
        try:
            data = kernel_to_bytes(kernel)
        except SnapshotError:
            self.stats.inc("skipped")
            return False
        path = self.path_for(fingerprint, n, trimmed)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.inc("stores")
        self._evict_over_budget()
        return True

    # ------------------------------------------------------------------
    # Per-fingerprint metadata (tiny JSON sidecars, e.g. the ambiguity
    # certificate — a property of the source, not of any single n)
    # ------------------------------------------------------------------

    def meta_path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.meta.json"

    def get_meta(self, fingerprint: str) -> dict[str, Any] | None:
        """The metadata dict recorded for ``fingerprint`` (None if absent
        or unreadable — unreadable sidecars are quarantined like corrupt
        snapshots)."""
        path = self.meta_path_for(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            meta = json.loads(text)
            if not isinstance(meta, dict):
                raise ValueError("metadata must be a JSON object")
        except ValueError:
            self.stats.inc("corrupt")
            try:
                path.unlink()
            except OSError:  # pragma: no cover
                pass
            return None
        return meta

    def put_meta(self, fingerprint: str, values: dict[str, Any]) -> None:
        """Merge ``values`` into the fingerprint's metadata (atomic)."""
        merged = dict(self.get_meta(fingerprint) or {})
        merged.update(values)
        path = self.meta_path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(merged, handle)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Bounding and introspection
    # ------------------------------------------------------------------

    def _listing(self, pattern: str) -> list[Path]:
        """Matching files, tolerating concurrent deletion mid-listing.

        The store is shared between processes: a sibling's evictor (or
        quarantine, or ``clear``) may unlink entries — or whole fan-out
        directories — while this process is scanning.  A vanished path
        is simply not part of the listing; it must never crash the scan.
        """
        try:
            return [path for path in self.root.glob(pattern) if path.is_file()]
        except OSError:  # pragma: no cover - directory vanished mid-glob
            return []

    def entries(self) -> list[Path]:
        """All snapshot files currently in the store."""
        if not self.root.is_dir():
            return []
        return self._listing(f"*/*{_SUFFIX}")

    def _sidecars(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return self._listing("*/*.meta.json")

    def total_bytes(self) -> int:
        """Store footprint: snapshots plus metadata sidecars.

        An entry deleted between the listing and its ``stat`` (a racing
        evictor in another process) counts as zero, not as a crash.
        """
        total = 0
        for path in self.entries() + self._sidecars():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _evict_over_budget(self) -> None:
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        sidecars = self._sidecars()
        for path in sidecars:
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - racing eviction
                pass
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest access first
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing eviction
                continue
            total -= size
            self.stats.inc("evictions")
        # A sidecar whose every snapshot is gone is stranded: drop it so
        # the directory stays bounded along with the byte budget.
        live = {path.name.split("-n", 1)[0] for path in self.entries()}
        for path in sidecars:
            fingerprint = path.name[: -len(".meta.json")]
            if fingerprint not in live:
                try:
                    path.unlink()
                    self.stats.inc("evictions")
                except OSError:  # pragma: no cover - racing eviction
                    pass

    def clear(self) -> int:
        """Delete every entry (snapshots and metadata sidecars)."""
        removed = 0
        sidecars = (
            list(self.root.glob("*/*.meta.json")) if self.root.is_dir() else []
        )
        for path in self.entries() + sidecars:
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"<KernelStore root={str(self.root)!r} entries={len(self.entries())} "
            f"stats={self.stats.as_dict()}>"
        )


#: Process-wide default store, memoized per root so stats accumulate.
_default: KernelStore | None = None


def default_store() -> KernelStore | None:
    """The process-default store, from ``$REPRO_KERNEL_STORE`` (or None).

    The facade consults this when no explicit ``store=`` was passed, so
    pointing the environment variable at a directory turns on warm-start
    caching for every WitnessSet in the process — the zero-code-change
    deployment switch.  One instance per process (per root), so its
    stats accumulate across witness sets.
    """
    global _default
    root = os.environ.get(STORE_ENV)
    if not root:
        return None
    if _default is None or Path(root) != _default.root:
        _default = KernelStore(root)
    return _default


__all__ = ["KernelStore", "StoreStats", "default_store", "DEFAULT_MAX_BYTES", "STORE_ENV"]
