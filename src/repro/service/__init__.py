"""The serving subsystem: persistence, multiprocess execution, a server.

The paper's economics are *preprocess once, query cheaply*: all the
polynomial work (ε-elimination, the ambiguity certificate, lowering into
the :class:`~repro.core.kernel.CompiledDAG`) happens before the first
answer, and every subsequent count / sample / enumerate / spectrum is
near-free.  That is exactly the shape of a serving workload — so this
package turns the single-process facade into a service:

* :mod:`repro.service.fingerprint` — a stable content fingerprint for
  automata and plans (canonical serialization + SHA-256), exposed as
  :meth:`repro.api.WitnessSet.fingerprint`.  Two processes compiling the
  same instance agree on the fingerprint, which is what makes kernels
  shareable across process boundaries.
* :mod:`repro.service.snapshot` — the compact binary snapshot format for
  compiled kernels (``kernel.to_bytes()`` / ``CompiledDAG.from_bytes``):
  CSR edge arrays, per-layer index maps and the packed / bignum-spill
  run-count tables round-trip exactly.
* :mod:`repro.service.store` — :class:`KernelStore`, a content-addressed
  on-disk kernel cache keyed by ``(fingerprint, n, mode)`` with LRU size
  bounding, atomic writes and hit/miss stats.  Wired into the facade, a
  warm process answers its first query with **zero lowering work**.
* :mod:`repro.service.engine` — :class:`Engine`, a stdlib
  ``multiprocessing`` worker pool routing requests by fingerprint
  affinity (each worker keeps its hot kernels resident) with
  deterministic per-request RNG substreams, so seeded ``sample`` results
  are byte-identical no matter which worker serves them.
* :mod:`repro.service.server` — the JSON-lines server (stdin/stdout,
  and an ``asyncio`` TCP front-end multiplexing concurrent connections)
  behind ``repro serve`` / ``repro query``, with request batching —
  same-fingerprint sample requests coalesce into one ``sample_batch``
  kernel pass, across connections — plus bounded request lines,
  per-request deadlines, backpressured writes, graceful drain, and
  streamed constant-delay ``enumerate`` (chunked responses paged by
  resumable cursors, so huge witness sets are never materialized).
"""

from importlib import import_module
from typing import Any

#: Public name → home submodule.  Resolved lazily (PEP 562) so that,
#: e.g., the facade touching only the store never imports the engine's
#: ``multiprocessing`` or the server's ``socket``/``selectors``.
_EXPORTS = {
    "Engine": "engine",
    "FingerprintError": "fingerprint",
    "fingerprint_source": "fingerprint",
    "KernelStore": "store",
    "StoreStats": "store",
    "default_store": "store",
    "SnapshotError": "snapshot",
    "kernel_to_bytes": "snapshot",
    "kernel_from_bytes": "snapshot",
    "ProtocolError": "protocol",
    "WitnessSetCache": "protocol",
    "execute_group": "protocol",
    "spec_key": "protocol",
    "witness_set_from_spec": "protocol",
    "draw_samples": "protocol",
    "draw_samples_coalesced": "protocol",
    "WitnessServer": "server",
    "AsyncWitnessServer": "server",
    "serve_stdio": "server",
    "serve_tcp": "server",
    "ServiceClient": "client",
    "ServiceClientError": "client",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f"repro.service.{submodule}"), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:  # pragma: no cover - introspection nicety
    return sorted(set(globals()) | set(_EXPORTS))
