""":class:`Engine` — the multiprocess execution pool with kernel affinity.

The preprocessing economics cut two ways in a serving deployment: the
compiled kernel is expensive to build and cheap to query, so the worst
thing a scheduler can do is bounce queries for one instance across
processes that each compile it from scratch.  The engine therefore
routes **by fingerprint affinity**: every request carries a spec whose
deterministic key (:func:`repro.service.protocol.spec_key`) maps to a
fixed worker, so each worker's bounded
:class:`~repro.service.protocol.WitnessSetCache` keeps exactly the hot
kernels *its* traffic needs resident — ship the task to where the
prepared data lives, never the data to the task.  A shared
:class:`~repro.service.store.KernelStore` (optional) backs the caches,
so even a worker's cold miss restores a snapshot instead of lowering.

Reproducibility: sampling ops follow the protocol's substream contract
(draw ``i`` of a request consumes substream ``i`` of the request seed),
so seeded results are byte-identical whether a request is answered
in-process (``workers=0``), by one worker, or by any of N workers —
scheduling is invisible in the output.

``workers=0`` runs everything in the calling process through the same
code path (the single-process baseline the benchmarks compare against);
``workers>0`` forks stdlib ``multiprocessing`` workers, one task queue
each (affinity is the queue choice) and one shared result queue.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
from collections import defaultdict
from types import TracebackType
from typing import TYPE_CHECKING, Any, Iterator, TypeAlias

from repro import obs
from repro.obs import names as metric_names
from repro.service.protocol import (
    CONTROL_OPS,
    WitnessSetCache,
    execute_group,
    spec_key,
)

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MPQueue

#: One routed work item: (batch id, group index, request group); ``None``
#: is the worker shutdown sentinel.
_Task: TypeAlias = "tuple[int, int, list[dict[str, Any]]] | None"

#: One worker answer: (batch id, group index, response group).
_Result: TypeAlias = "tuple[int, int, list[dict[str, Any]]]"

#: How long Engine.execute waits on the result queue before checking
#: worker liveness (seconds).
_POLL_SECONDS = 0.25

#: How long a stats broadcast waits for worker answers before falling
#: back to cached/busy entries (seconds).  Short on purpose: a
#: monitoring query must never pin its caller for long.
_STATS_DEADLINE_SECONDS = 5.0


def _worker_main(
    worker_id: int,
    tasks: MPQueue[_Task],
    results: MPQueue[_Result],
    store_root: str | None,
    max_resident: int,
) -> None:
    """One pool worker: drain grouped requests, keep hot kernels resident."""
    from repro.service.store import KernelStore

    # Fork-started workers inherit a copy of the parent's metrics
    # registry; start from a clean one so the pool-wide aggregation
    # (which sums worker snapshots) never double-counts parent activity.
    obs.reset_metrics()
    # Workers restore via mmap: a warm pool start pages snapshot bytes
    # in lazily instead of copying every kernel up front.
    store = KernelStore(store_root, mmap=True) if store_root else None
    cache = WitnessSetCache(max_resident=max_resident, store=store)
    while True:
        item = tasks.get()
        if item is None:
            break
        batch_id, group_index, group = item
        if len(group) == 1 and group[0].get("op") in CONTROL_OPS:
            request = group[0]
            response: dict[str, Any] = {
                "id": request.get("id"),
                "ok": True,
                "worker": worker_id,
            }
            if "__seq" in request:
                response["__seq"] = request["__seq"]
            response["result"] = (
                # The stats payload carries this worker's registry
                # snapshot alongside the classic cache view, so the
                # engine can merge pool-wide histograms/counters.
                dict(cache.stats(), metrics=obs.metrics().snapshot())
                if request["op"] == "stats"
                else "pong"
            )
            results.put((batch_id, group_index, [response]))
            continue
        results.put(
            (batch_id, group_index, execute_group(cache, group, worker=worker_id))
        )


class Engine:
    """Execute protocol requests, in-process or across a worker pool.

    Parameters
    ----------
    workers:
        Pool size.  ``0`` (default) executes in the calling process —
        same protocol, no IPC — which is both the embedded mode and the
        single-process baseline.
    store_root:
        Directory of the shared :class:`KernelStore` each worker (and
        the in-process cache) attaches to.  ``None`` falls back to the
        ``$REPRO_KERNEL_STORE`` process default (the same switch the
        facade honours); pass ``False`` to disable persistence
        explicitly.
    max_resident:
        Per-worker bound on resident witness sets.
    """

    workers: int
    store_root: str | None
    max_resident: int
    _batch_ids: Iterator[int]  # guarded-by: _pool_lock
    _processes: list[BaseProcess]  # guarded-by: _pool_lock
    _task_queues: list[MPQueue[_Task]]  # guarded-by: _pool_lock
    _results: MPQueue[_Result] | None
    _local_cache: WitnessSetCache | None
    _mp_context: BaseContext | None
    _pool_lock: threading.Lock
    _stats_cache: dict[int, dict[str, Any]]  # guarded-by: _pool_lock

    def __init__(
        self,
        workers: int = 0,
        store_root: str | os.PathLike[str] | bool | None = None,
        max_resident: int = 64,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be ≥ 0")
        self.workers = workers
        if store_root is None:
            store_root = os.environ.get("REPRO_KERNEL_STORE") or False
        self.store_root = (
            None
            if isinstance(store_root, bool) or not store_root
            else os.fspath(store_root)
        )
        self.max_resident = max_resident
        self._batch_ids = itertools.count()
        self._processes = []
        self._task_queues = []
        self._results = None
        self._local_cache = None
        self._mp_context = None
        # The shared result queue has exactly one legitimate consumer at
        # a time: a batch execution and a stats broadcast racing on it
        # would steal (and drop) each other's replies.  The lock makes
        # Engine safe to monitor from any thread, whatever the caller's
        # discipline.
        self._pool_lock = threading.Lock()
        #: Last answered stats entry per worker — the fallback a stats
        #: query reports for a worker that is alive but too busy to
        #: answer before the deadline.
        self._stats_cache = {}
        if workers == 0:
            store = None
            if self.store_root is not None:
                from repro.service.store import KernelStore

                store = KernelStore(self.store_root, mmap=True)
            self._local_cache = WitnessSetCache(
                max_resident=max_resident, store=store
            )
        else:
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._mp_context = context
            self._results = context.Queue()
            for worker_id in range(workers):
                self._task_queues.append(context.Queue())
                self._spawn_worker(worker_id)

    def _spawn_worker(self, worker_id: int) -> None:
        """Start (or replace) pool worker ``worker_id`` on its queue."""
        context = self._mp_context
        results = self._results
        assert context is not None and results is not None
        process = context.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._task_queues[worker_id],
                results,
                self.store_root,
                self.max_resident,
            ),
            daemon=True,
        )
        process.start()
        if worker_id < len(self._processes):
            self._processes[worker_id] = process
        else:
            self._processes.append(process)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, key: str) -> int:
        """The worker owning fingerprint-affinity key ``key``.

        Accepts any string (spec keys are SHA-256 hex, but control ops
        route by their request id); non-hex keys are hashed first.
        """
        if self.workers == 0:
            return 0
        try:
            value = int(key[:16], 16)
        except ValueError:
            value = int.from_bytes(
                hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
            )
        return value % self.workers

    @staticmethod
    def group_requests(requests: list[dict[str, Any]]) -> list[list[dict[str, Any]]]:
        """Partition a batch into per-spec groups (order-stable).

        Control ops (``ping`` / ``stats``) become singleton groups;
        everything else groups by spec key so
        :func:`~repro.service.protocol.execute_group` can coalesce the
        sample ops inside each group into one kernel pass.
        """
        grouped: defaultdict[str, list[dict[str, Any]]] = defaultdict(list)
        singletons: list[list[dict[str, Any]]] = []
        for request in requests:
            if request.get("op") in CONTROL_OPS or "spec" not in request:
                singletons.append([request])
            else:
                grouped[spec_key(request["spec"])].append(request)
        return list(grouped.values()) + singletons

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, requests: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Answer a batch of requests; responses in request order.

        Groups by spec, routes each group to its affinity worker, waits
        for every response.  With ``workers=0`` the same grouping and
        coalescing run inline.
        """
        if not requests:
            return []
        # Tag every request with its batch position: responses are
        # matched back by this tag, never by the client-chosen id (two
        # clients in one batch may both say id "c0").  The ``__enq``
        # monotonic stamp is the anchor of the ``queue_wait`` timing
        # stage measured at execution start — comparable across
        # fork-started workers because CLOCK_MONOTONIC is system-wide.
        enqueued = time.monotonic()
        tagged = [
            dict(request, __seq=index, __enq=enqueued)
            for index, request in enumerate(requests)
        ]
        groups = self.group_requests(tagged)
        if self.workers == 0:
            cache = self._local_cache
            assert cache is not None  # always built when workers == 0
            responses: list[dict[str, Any]] = []
            for group in groups:
                if len(group) == 1 and group[0].get("op") in CONTROL_OPS:
                    responses.append(self._control_response(group[0]))
                else:
                    responses.extend(execute_group(cache, group))
        else:
            responses = self._execute_pooled(groups)
        return self._order_responses(requests, responses)

    def execute_stream(
        self, request: dict[str, Any], chunk_size: int | None = None
    ) -> Iterator[dict[str, Any]]:
        """Stream one ``enumerate`` request as a generator of chunk
        responses.

        Each yielded response answers one page: the worker that owns the
        spec's fingerprint walks ``chunk_size`` more witnesses off its
        hot kernel and hands back the items plus the resume cursor; the
        next iteration sends that cursor straight back to the same
        worker (affinity routing), so the stream costs one O(n) cursor
        replay per chunk and never materializes the witness set — in any
        process.  The generator ends after the page whose result says
        ``done`` (or after an error response, which is yielded too so
        the consumer can forward it).

        Between pages the engine is free: the server interleaves other
        clients' batches with a long-running stream.
        """
        if request.get("op") != "enumerate":
            raise ValueError("execute_stream only serves enumerate requests")
        from repro.service.protocol import paging_rounds

        rounds = paging_rounds(request, chunk_size)
        page_request = next(rounds)
        while True:
            response = self.execute([page_request])[0]
            yield response
            try:
                page_request = rounds.send(response)
            except StopIteration:
                return

    @staticmethod
    def _order_responses(
        requests: list[dict[str, Any]], responses: list[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Match responses back to ``requests`` by the ``__seq`` tag."""
        by_seq: dict[int, dict[str, Any]] = {}
        for response in responses:
            seq = response.pop("__seq", None)
            if seq is not None and seq not in by_seq:
                by_seq[seq] = response
        ordered: list[dict[str, Any]] = []
        for index, request in enumerate(requests):
            response = by_seq.get(index)
            if response is None:  # pragma: no cover - a worker died mid-batch
                response = {
                    "id": request.get("id"),
                    "ok": False,
                    "error": "no response from worker",
                    "error_type": "EngineError",
                }
            ordered.append(response)
        return ordered

    def _control_response(self, request: dict[str, Any]) -> dict[str, Any]:
        cache = self._local_cache
        assert cache is not None  # only reached when workers == 0
        response: dict[str, Any] = {"id": request.get("id"), "ok": True, "worker": 0}
        if "__seq" in request:
            response["__seq"] = request["__seq"]
        response["result"] = cache.stats() if request["op"] == "stats" else "pong"
        return response

    def _execute_pooled(self, groups: list[list[dict[str, Any]]]) -> list[dict[str, Any]]:
        results = self._results
        assert results is not None  # always built when workers > 0
        with self._pool_lock:
            return self._drain_batch(groups, results)

    def _drain_batch(
        self, groups: list[list[dict[str, Any]]], results: MPQueue[_Result]
    ) -> list[dict[str, Any]]:
        batch_id = next(self._batch_ids)
        pending: dict[int, tuple[int, list[dict[str, Any]]]] = {}
        for group_index, group in enumerate(groups):
            key = spec_key(group[0]["spec"]) if "spec" in group[0] else str(
                group[0].get("id")
            )
            worker = self.route(key)
            self._task_queues[worker].put((batch_id, group_index, group))
            pending[group_index] = (worker, group)
        responses: list[dict[str, Any]] = []
        while pending:
            try:
                got_batch, group_index, group_responses = results.get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                # A dead worker never answers: fail its pending groups
                # instead of waiting forever (siblings keep serving).
                dead = {
                    worker
                    for worker, process in enumerate(self._processes)
                    if not process.is_alive()
                }
                if dead:
                    for group_index, (worker, group) in list(pending.items()):
                        if worker in dead:
                            pending.pop(group_index)
                            responses.extend(
                                {
                                    "id": request.get("id"),
                                    "__seq": request.get("__seq"),
                                    "ok": False,
                                    "error": f"worker {worker} died",
                                    "error_type": "EngineError",
                                    "worker": worker,
                                }
                                for request in group
                            )
                    # The in-flight batch has been failed fast; respawn
                    # the dead workers so the *next* batch is served by
                    # a full pool instead of a shrinking one.
                    self._restart_workers(dead)
                continue
            if got_batch != batch_id:  # pragma: no cover - stale batch remnants
                continue
            if pending.pop(group_index, None) is not None:
                responses.extend(group_responses)
        return responses

    def _restart_workers(self, dead: set[int]) -> None:
        """Replace dead pool workers (counted as deaths + restarts).

        The replacement worker keeps the dead worker's slot (affinity
        routing untouched) but gets a *fresh* task queue: a process
        terminated while blocked in ``Queue.get`` may die holding the
        queue's reader lock, which would deadlock any successor on the
        same queue.  Tasks stranded on the old queue were already failed
        fast above.  The replacement's witness-set cache starts cold but
        warm-starts from the shared kernel store.
        """
        context = self._mp_context
        assert context is not None  # only reached when workers > 0
        registry = obs.metrics()
        for worker in sorted(dead):
            if self._processes[worker].is_alive():  # pragma: no cover - raced back
                continue
            registry.counter(metric_names.ENGINE_WORKER_DEATHS).inc()
            # The replacement starts cold: its predecessor's snapshot
            # must not resurface as a "busy" stats fallback.
            self._stats_cache.pop(worker, None)
            self._task_queues[worker] = context.Queue()
            self._spawn_worker(worker)
            registry.counter(metric_names.ENGINE_WORKER_RESTARTS).inc()

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def stats(
        self, per_worker: bool = False
    ) -> dict[str, Any] | list[dict[str, Any]]:
        """Pool statistics: aggregated by default, per-worker on request.

        The default returns one merged dict — counters summed,
        histograms merged bucket-wise (see
        :func:`repro.obs.merge_snapshots`) — plus ``workers``/``alive``
        pool gauges.  ``per_worker=True`` returns the raw per-worker
        entries (one for ``workers=0``), each carrying that worker's
        cache view and metrics snapshot.
        """
        entries = self._worker_stats()
        if per_worker:
            return entries
        return self.aggregate_stats(entries)

    @staticmethod
    def aggregate_stats(entries: list[dict[str, Any]]) -> dict[str, Any]:
        """Merge per-worker stats entries into one pool-wide summary."""
        aggregated: dict[str, Any] = {
            "workers": len(entries),
            "alive": sum(1 for entry in entries if entry.get("alive")),
            "resident": 0,
            "hits": 0,
            "misses": 0,
        }
        store_totals: dict[str, int] = {}
        snapshots: list[dict[str, Any]] = []
        for entry in entries:
            aggregated["resident"] += entry.get("resident", 0)
            aggregated["hits"] += entry.get("hits", 0)
            aggregated["misses"] += entry.get("misses", 0)
            for key, value in (entry.get("store") or {}).items():
                store_totals[key] = store_totals.get(key, 0) + value
            snapshot = entry.get("metrics")
            if snapshot:
                snapshots.append(snapshot)
        if store_totals:
            aggregated["store"] = store_totals
        # Worker-process metrics only: with workers=0 the engine shares
        # the embedding process's registry, which the caller (the server
        # layer) merges in itself — merging it here would double-count.
        aggregated["metrics"] = obs.merge_snapshots(snapshots)
        return aggregated

    def _worker_stats(self) -> list[dict[str, Any]]:
        """Per-worker cache stats (one entry for workers=0).

        Dead workers are reported as ``{"worker": i, "alive": False}``
        instead of hanging the caller — a monitoring query must never
        take the server down.  A worker that is alive but too busy to
        answer before the deadline is reported as ``alive`` and
        ``busy`` (with its last answered snapshot, marked ``stale``,
        when one exists) — never misdiagnosed as dead.
        """
        if self.workers == 0:
            cache = self._local_cache
            assert cache is not None  # always built when workers == 0
            return [dict(cache.stats(), worker=0, alive=True)]
        results = self._results
        assert results is not None  # always built when workers > 0
        with self._pool_lock:
            batch_id = next(self._batch_ids)
            out: list[dict[str, Any]] = []
            expected: set[int] = set()
            # Broadcast: one stats request directly to each live worker.
            for worker in range(self.workers):
                if not self._processes[worker].is_alive():
                    out.append({"worker": worker, "alive": False})
                    continue
                self._task_queues[worker].put(
                    (batch_id, worker, [{"id": f"stats-{worker}", "op": "stats"}])
                )
                expected.add(worker)
            deadline = time.monotonic() + _STATS_DEADLINE_SECONDS
            answered: set[int] = set()
            while answered < expected and time.monotonic() < deadline:
                try:
                    got_batch, worker, group_responses = results.get(
                        timeout=_POLL_SECONDS
                    )
                except queue_module.Empty:
                    for worker in expected - answered:
                        if not self._processes[worker].is_alive():
                            answered.add(worker)
                            out.append({"worker": worker, "alive": False})
                    continue
                if got_batch != batch_id:  # pragma: no cover - stale remnants
                    continue
                response = group_responses[0]
                answered.add(worker)
                entry = dict(response["result"], worker=worker, alive=True)
                self._stats_cache[worker] = entry
                out.append(entry)
            for worker in expected - answered:  # pragma: no cover - busy worker
                if not self._processes[worker].is_alive():
                    out.append({"worker": worker, "alive": False})
                    continue
                cached = self._stats_cache.get(worker)
                entry = dict(cached) if cached else {}
                entry.update(worker=worker, alive=True, busy=True)
                if cached:
                    entry["stale"] = True
                out.append(entry)
        return sorted(out, key=lambda entry: entry["worker"])

    def close(self) -> None:
        """Shut the pool down (idempotent).

        Holds ``_pool_lock`` end to end: a stats broadcast or batch
        drain on another thread iterates ``_processes`` /
        ``_task_queues`` and consumes the shared result queue, so
        tearing the pool down under its feet would send sentinels into
        a live broadcast and clear lists mid-iteration.  Taking the
        lock sequences shutdown after any in-flight consumer.
        """
        with self._pool_lock:
            for tasks in self._task_queues:
                try:
                    tasks.put(None)
                except (ValueError, OSError):  # pragma: no cover - already closed
                    pass
            for process in self._processes:
                process.join(timeout=5)
            for process in self._processes:
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=1)
            self._processes.clear()
            self._task_queues.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<Engine workers={self.workers} store={self.store_root!r}>"


__all__ = ["Engine"]
