"""The wire protocol: specs, requests, and the shared op executor.

Everything the server and the multiprocess engine exchange is plain
JSON, one object per line (JSON-lines).  A **request** is::

    {"id": 7, "op": "count", "spec": {...}, "backend": "exact", ...}

and its **response**::

    {"id": 7, "ok": true, "result": 42}
    {"id": 7, "ok": false, "error": "...", "error_type": "ReproError"}

The **spec** describes the witness set *by content* (never by file
path), so any worker process can rebuild it and the engine can route by
fingerprint without the client and server sharing a filesystem:

======================  ================================================
kind                    fields
======================  ================================================
``regex``               ``pattern``, ``alphabet`` (optional), ``n``
``nfa``                 ``nfa`` (a ``repro.nfa`` JSON document), ``n``
``intersection``        ``left`` / ``right`` (each a ``regex``/``nfa``
                        sub-spec without ``n``), ``n``
``dnf``                 ``formula`` (the ``"x0 & !x1 | x2"`` text)
``cfg``                 ``grammar`` (CNF text), ``n``
``rpq``                 ``graph`` (a ``repro.graph`` JSON document),
                        ``pattern``, ``source`` / ``target`` (tagged
                        atoms), ``n``, ``deterministic_query``
======================  ================================================

Operations: ``count`` (``backend`` / ``delta`` / ``seed``), ``sample``
and ``sample_batch`` (``k`` / ``seed``), ``spectrum`` (``max_length``),
``enumerate`` (``limit`` / ``cursor`` / ``chunk_size``), ``describe``,
plus the connection-level ``ping`` / ``stats`` / ``shutdown``.

``enumerate`` is **paged**: one request answers one page —
``{"items": [...], "cursor": ..., "done": bool}`` with at most
``chunk_size`` (default :data:`DEFAULT_ENUM_CHUNK`) witnesses — and the
returned cursor resumes exactly where the page stopped (in O(n) for
unambiguous sources, via the Algorithm 1 decision-point list), so a
client walks a witness set of any size without the server ever
materializing it.  ``limit`` bounds the *total* items from the given
cursor onward.  The async TCP server turns one client request with
``"stream": true`` into a sequence of chunked response lines driven by
this same paging (see :mod:`repro.service.server`).

Reproducibility contract: every ``sample`` / ``sample_batch`` draw uses
deterministic per-draw substreams of the request seed
(:func:`repro.utils.rng.spawn_seq`), so a request's results depend only
on ``(spec, seed, k)`` — never on which worker serves it, nor on which
other requests were coalesced into the same kernel pass.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Generator

from repro import obs
from repro.errors import ReproError
from repro.obs import names as metric_names
from repro.utils.rng import make_rng, substreams

if TYPE_CHECKING:
    from repro.api import WitnessSet
    from repro.automata.nfa import NFA
    from repro.service.store import KernelStore

PROTOCOL_VERSION = 1

#: Ops that draw witnesses and therefore coalesce per witness set.
SAMPLE_OPS = frozenset({"sample", "sample_batch"})

#: Ops answered without a witness set.
CONTROL_OPS = frozenset({"ping", "stats", "shutdown"})

#: Ops handled entirely at the connection layer of the async server
#: (stream control); they never reach the engine or ``_execute_one``.
CONNECTION_OPS = frozenset({"cancel"})

#: The complete wire vocabulary: every ``op`` a client may send.  The
#: ``protocol-exhaustive`` lint rule cross-checks this registry against
#: ``_execute_one``, the engine control path, the async server, the
#: client, and the CLI ``query`` choices.
SERVICE_OPS = frozenset(
    {"count", "spectrum", "enumerate", "describe"}
    | SAMPLE_OPS
    | CONTROL_OPS
    | CONNECTION_OPS
)

#: Default page size for the paged ``enumerate`` op: small enough that a
#: page is one cheap kernel walk burst, big enough that paging overhead
#: (one request round-trip per page) stays negligible.
DEFAULT_ENUM_CHUNK = 500


class ProtocolError(ReproError):
    """A malformed request or spec."""


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


def spec_key(spec: dict[str, Any]) -> str:
    """Deterministic routing/caching key of a spec (canonical JSON hash).

    This is the *request-level* fingerprint: cheap (no automaton is
    built) and stable across processes, so the engine can route by it
    before any compilation happens.  Two different specs may compile to
    the same automaton fingerprint; they then share store entries but
    not necessarily a worker — affinity is best-effort by design.
    """
    text = json.dumps(spec, sort_keys=True, separators=(",", ":"), ensure_ascii=False)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _sub_source(sub: dict[str, Any]) -> NFA:
    """An NFA from an ``intersection`` operand sub-spec."""
    from repro.automata.regex import compile_regex
    from repro.automata.serialization import nfa_from_json

    kind = sub.get("kind", "regex")
    if kind == "regex":
        alphabet = sub.get("alphabet")
        return compile_regex(
            sub["pattern"], alphabet=list(alphabet) if alphabet else None
        )
    if kind == "nfa":
        return nfa_from_json(json.dumps(sub["nfa"]))
    raise ProtocolError(f"unsupported intersection operand kind {kind!r}")


def witness_set_from_spec(
    spec: dict[str, Any],
    store: KernelStore | bool | None = False,
    **kwargs: Any,
) -> WitnessSet:
    """Build the :class:`~repro.api.WitnessSet` a spec describes.

    ``store`` follows the facade convention (``False`` — the default
    here — disables persistence, ``None`` consults the process default,
    a :class:`KernelStore` is used directly); remaining keyword
    arguments (``delta`` / ``params`` / ``rng``) are forwarded to the
    constructor — the CLI builds its local witness sets through this
    same function, so the spec is the single source of input semantics.
    """
    from repro.api import WitnessSet

    if not isinstance(spec, dict) or "kind" not in spec:
        raise ProtocolError("spec must be an object with a 'kind'")
    kind = spec["kind"]
    kwargs = dict(kwargs, store=store)
    try:
        if kind == "regex":
            alphabet = spec.get("alphabet")
            return WitnessSet.from_regex(
                spec["pattern"], spec["n"], alphabet=alphabet, **kwargs
            )
        if kind == "nfa":
            from repro.automata.serialization import nfa_from_json

            return WitnessSet.from_nfa(
                nfa_from_json(json.dumps(spec["nfa"])), spec["n"], **kwargs
            )
        if kind == "intersection":
            return WitnessSet.from_intersection(
                _sub_source(spec["left"]), _sub_source(spec["right"]),
                spec["n"], **kwargs,
            )
        if kind == "dnf":
            return WitnessSet.from_dnf(
                spec["formula"],
                via_transducer=spec.get("via_transducer", False),
                **kwargs,
            )
        if kind == "cfg":
            from repro.grammars.cfg import parse_cnf

            return WitnessSet.from_cfg(
                parse_cnf(spec["grammar"]), spec["n"], **kwargs
            )
        if kind == "rpq":
            from repro.automata.serialization import _decode_atom
            from repro.graphdb.graph import graph_from_json

            graph = graph_from_json(json.dumps(spec["graph"]))
            return WitnessSet.from_rpq(
                graph,
                spec["pattern"],
                _decode_atom(spec["source"]),
                _decode_atom(spec["target"]),
                spec["n"],
                deterministic_query=spec.get("deterministic_query", False),
                **kwargs,
            )
    except KeyError as error:
        raise ProtocolError(f"spec kind {kind!r} is missing field {error}") from error
    raise ProtocolError(f"unsupported spec kind {kind!r}")


# ----------------------------------------------------------------------
# Result rendering (JSON-able, renderer shared by every execution path)
# ----------------------------------------------------------------------


def render_witness(witness: object) -> str:
    """One witness as a display string (the CLI's rendering)."""
    from repro.cli import _format_witness

    return _format_witness(witness)


def _render_describe(facts: dict[str, Any]) -> dict[str, Any]:
    rendered = dict(facts)
    alphabet = rendered.get("alphabet")
    if alphabet is not None:
        rendered["alphabet"] = sorted(map(str, alphabet))
    return rendered


# ----------------------------------------------------------------------
# Sampling helpers (the substream reproducibility contract)
# ----------------------------------------------------------------------


def draw_samples(ws: WitnessSet, k: int, seed: Any) -> list[Any]:
    """``k`` witnesses for one request: draw ``i`` uses substream ``i``
    of the request seed."""
    return ws.sample_with_streams(substreams(make_rng(seed), k))


def draw_samples_coalesced(
    ws: WitnessSet, requests: list[tuple[int, object]]
) -> list[list[Any]]:
    """Serve several ``(k, seed)`` sample requests in ONE kernel pass.

    Each request's streams are derived from its own seed exactly as
    :func:`draw_samples` derives them, and each draw consumes only its
    own stream — so the split results are byte-identical to serving the
    requests separately, while the kernel walk (the per-layer grouping
    and weight lookups) is paid once for the whole batch.
    """
    streams: list[Any] = []
    slices: list[tuple[int, int]] = []
    for k, seed in requests:
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise ProtocolError("sample requests need an integer k ≥ 0")
        start = len(streams)
        streams.extend(substreams(make_rng(seed), k))
        slices.append((start, start + k))
    drawn = ws.sample_with_streams(streams)
    return [drawn[start:end] for start, end in slices]


def _positive_int_or_none(request: dict[str, Any], field: str) -> int | None:
    value = request.get(field)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProtocolError(f"{field} must be an integer ≥ 0")
    return value


def _enumerate_page(ws: WitnessSet, request: dict[str, Any]) -> dict[str, Any]:
    """One page of the paged ``enumerate`` op (the streaming primitive).

    Honors ``cursor`` (resume point; omit to start), ``chunk_size`` (page
    bound, default :data:`DEFAULT_ENUM_CHUNK`) and ``limit`` (total items
    from this cursor onward).  Never materializes more than one page.
    """
    limit = _positive_int_or_none(request, "limit")
    chunk = _positive_int_or_none(request, "chunk_size")
    if chunk is None:
        chunk = DEFAULT_ENUM_CHUNK
    elif chunk == 0:
        # A zero-item page can never be "done", so a paging loop over it
        # would spin forever on empty chunks.
        raise ProtocolError("chunk_size must be ≥ 1")
    count = chunk if limit is None else min(chunk, limit)
    try:
        witnesses, cursor = ws.enumerate_page(count, request.get("cursor"))
    except ValueError as error:
        raise ProtocolError(str(error)) from error
    exhausted_limit = limit is not None and limit <= len(witnesses)
    done = cursor is None or exhausted_limit
    # The cursor is returned even on a limit-terminated final page: it
    # is the resume point for a later request (None only when the
    # enumeration itself is exhausted).
    with obs.stage(metric_names.STAGE_SERIALIZATION):
        items = [render_witness(w) for w in witnesses]
    return {
        "items": items,
        "cursor": cursor,
        "done": done,
    }


def paging_rounds(
    request: dict[str, Any], chunk_size: int | None = None
) -> Generator[dict[str, Any], dict[str, Any], None]:
    """Sans-IO driver for streamed enumeration: the one page-request
    construction both streaming front-ends share.

    A generator speaking the send protocol: it *yields* the next page
    request to execute; the consumer executes it (however it likes —
    inline, through a worker pool, through an async queue) and
    ``send()``-s the response back; the generator then yields the
    following page request, or returns when the stream is finished
    (limit exhausted, cursor gone, ``done`` page, or an error
    response).  Keeping the cursor/limit bookkeeping here means
    :meth:`Engine.execute_stream` and the async server's chunked
    responses cannot drift apart.
    """
    remaining = request.get("limit")
    cursor = request.get("cursor")
    while True:
        page_request = {
            key: value
            for key, value in request.items()
            if key not in ("cursor", "limit", "stream")
        }
        if chunk_size is not None:
            page_request["chunk_size"] = chunk_size
        if cursor is not None:
            page_request["cursor"] = cursor
        if remaining is not None:
            page_request["limit"] = remaining
        response = yield page_request
        if not response.get("ok"):
            return
        page = response.get("result") or {}
        if remaining is not None:
            remaining -= len(page.get("items") or ())
        cursor = page.get("cursor")
        if page.get("done") or cursor is None:
            return
        if remaining is not None and remaining <= 0:
            return


# ----------------------------------------------------------------------
# The op executor (shared by in-process serving and pool workers)
# ----------------------------------------------------------------------


class WitnessSetCache:
    """Bounded LRU of resident witness sets, keyed by spec key.

    This is a worker's hot-kernel memory: the reason the engine routes
    by affinity is so repeated queries on one spec land where this cache
    already holds the compiled artifacts.
    """

    max_resident: int
    store: KernelStore | None
    hits: int
    misses: int
    _cache: OrderedDict[str, WitnessSet]

    def __init__(self, max_resident: int = 64, store: KernelStore | None = None) -> None:
        self.max_resident = max_resident
        self.store = store
        # Exact per-instance counts (functional state: tests and the
        # ``stats`` view read them regardless of REPRO_OBS); every
        # increment is mirrored into the process metrics registry so the
        # exposition layer can aggregate hit rates across workers —
        # this is also the engine's affinity hit rate, since affinity
        # routing exists exactly to land repeats on a resident entry.
        self.hits = 0
        self.misses = 0
        self._cache = OrderedDict()

    def get(self, key: str, spec: dict[str, Any]) -> WitnessSet:
        ws = self._cache.get(key)
        if ws is not None:
            self.hits += 1
            obs.metrics().counter(metric_names.CACHE_HITS, always=True).inc()
            self._cache.move_to_end(key)
            return ws
        self.misses += 1
        obs.metrics().counter(metric_names.CACHE_MISSES, always=True).inc()
        ws = witness_set_from_spec(
            spec, store=self.store if self.store is not None else False
        )
        self._cache[key] = ws
        while len(self._cache) > self.max_resident:
            self._cache.popitem(last=False)
        return ws

    def stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "resident": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.store is not None:
            stats["store"] = self.store.stats.as_dict()
        return stats


def _execute_one(ws: WitnessSet, request: dict[str, Any]) -> Any:
    op = request["op"]
    if op == "count":
        backend = request.get("backend") or "exact"
        options = dict(request.get("options") or {})
        from repro import backends as _backends

        if _backends.get(backend).exact:
            return ws.count(backend, **options)
        return ws.count(
            backend,
            delta=request.get("delta"),
            rng=request.get("seed"),
            **options,
        )
    if op in SAMPLE_OPS:
        k = request.get("k", 1)
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise ProtocolError("sample requests need an integer k ≥ 0")
        witnesses = draw_samples(ws, k, request.get("seed"))
        with obs.stage(metric_names.STAGE_SERIALIZATION):
            return [render_witness(w) for w in witnesses]
    if op == "spectrum":
        spectrum = ws.spectrum(request.get("max_length"))
        return [[length, count] for length, count in sorted(spectrum.items())]
    if op == "enumerate":
        return _enumerate_page(ws, request)
    if op == "describe":
        return _render_describe(ws.describe())
    raise ProtocolError(f"unknown op {request.get('op')!r}")


def execute_group(
    cache: WitnessSetCache,
    requests: list[dict[str, Any]],
    worker: int | None = None,
) -> list[dict[str, Any]]:
    """Execute requests that share one spec key; coalesce the sample ops.

    Returns one response per request, in request order.  Failures are
    per-request: one bad request never poisons its batch siblings.
    """
    # Responses are keyed by batch position, never by object identity:
    # a request object submitted twice in one group (client retry reusing
    # the dict) must still produce one response per slot, and identity
    # keys are exactly the allocation-order dependence the determinism
    # audit bans from this module.
    responses: dict[int, dict[str, Any]] = {}
    sampleable: list[tuple[int, dict[str, Any]]] = []
    for position, request in enumerate(requests):
        k = request.get("k", 1)
        if (
            request.get("op") in SAMPLE_OPS
            and isinstance(k, int)
            and not isinstance(k, bool)
            and k >= 0
        ):
            sampleable.append((position, request))
            continue
        # Non-sample ops and invalid-k sample requests (which must get
        # their own validation error, never a sibling's witnesses).
        responses[position] = _respond(cache, request, worker)
    if sampleable:
        # Denominator of the coalescing ratio: every sampleable request,
        # whether or not it ends up sharing a kernel pass.
        obs.metrics().counter(metric_names.SAMPLE_REQUESTS).inc(len(sampleable))
    if len(sampleable) == 1:
        position, request = sampleable[0]
        responses[position] = _respond(cache, request, worker)
    elif sampleable:
        responses.update(_respond_coalesced(cache, sampleable, worker))
    return [responses[position] for position in range(len(requests))]


def _base_response(request: dict[str, Any], worker: int | None) -> dict[str, Any]:
    response: dict[str, Any] = {"id": request.get("id")}
    if "__seq" in request:
        # The engine's batch-position tag: responses are matched back to
        # requests by it (client-chosen ids may collide across clients).
        response["__seq"] = request["__seq"]
    if worker is not None:
        response["worker"] = worker
    return response


def _op_label(op: Any) -> str:
    """Clamp a client-supplied op to the registered vocabulary.

    Metric labels must stay a bounded set; an unknown/garbage op would
    otherwise mint one series per typo.
    """
    return op if isinstance(op, str) and op in SERVICE_OPS else "other"


def _record_queue_wait(request: dict[str, Any], span: obs.Span) -> None:
    """Turn the engine's enqueue stamp into the ``queue_wait`` stage.

    ``__enq`` is ``time.monotonic()`` taken when the engine accepted the
    batch; CLOCK_MONOTONIC is system-wide on Linux, so the stamp is
    comparable across the fork-started worker processes (``Span.add``
    clamps negatives on platforms where it is not).
    """
    enqueued = request.get("__enq")
    if isinstance(enqueued, (int, float)) and not isinstance(enqueued, bool):
        span.add(metric_names.STAGE_QUEUE_WAIT, time.monotonic() - float(enqueued))


def _attach_timing(
    request: dict[str, Any], response: dict[str, Any], span: obs.Span
) -> None:
    """Carry the per-stage breakdown when the client asked to trace."""
    if request.get("trace") and span.stages:
        response["timing"] = span.as_dict()


def _respond(
    cache: WitnessSetCache, request: dict[str, Any], worker: int | None
) -> dict[str, Any]:
    registry = obs.metrics()
    registry.counter(
        metric_names.PROTOCOL_REQUESTS, labels={"op": _op_label(request.get("op"))}
    ).inc()
    response = _base_response(request, worker)
    spec = request.get("spec")
    if spec is None:
        registry.counter(metric_names.PROTOCOL_ERRORS).inc()
        response.update(
            ok=False, error="missing field 'spec'", error_type="ProtocolError"
        )
        return response
    with obs.request_span() as span:
        _record_queue_wait(request, span)
        try:
            ws = cache.get(spec_key(spec), spec)
            with span.stage(metric_names.STAGE_EXECUTION):
                result = _execute_one(ws, request)
            response.update(ok=True, result=result)
        except Exception as error:  # per-request isolation; a KeyError deep
            # in backend/kernel code reports as KeyError, not as a protocol
            # complaint about the client's request.
            registry.counter(metric_names.PROTOCOL_ERRORS).inc()
            response.update(
                ok=False, error=str(error), error_type=type(error).__name__
            )
    _attach_timing(request, response, span)
    return response


def _respond_coalesced(
    cache: WitnessSetCache,
    indexed: list[tuple[int, dict[str, Any]]],
    worker: int | None,
) -> dict[int, dict[str, Any]]:
    """Sample requests on one witness set → one coalesced kernel pass.

    ``indexed`` carries each request with its batch position; the result
    maps positions to responses (see :func:`execute_group`).
    """
    out: dict[int, dict[str, Any]] = {}
    registry = obs.metrics()
    try:
        first = indexed[0][1]
        # One span for the shared kernel pass: every coalesced sibling
        # paid the same store fetch / lowering / execution, so each
        # response carries the same breakdown (queue wait included — the
        # group was enqueued as one engine batch).
        with obs.request_span() as span:
            _record_queue_wait(first, span)
            ws = cache.get(spec_key(first["spec"]), first["spec"])
            with span.stage(metric_names.STAGE_EXECUTION):
                batches = draw_samples_coalesced(
                    ws,
                    [
                        (request.get("k", 1), request.get("seed"))
                        for _, request in indexed
                    ],
                )
            with span.stage(metric_names.STAGE_SERIALIZATION):
                rendered = [
                    [render_witness(w) for w in witnesses] for witnesses in batches
                ]
        registry.counter(metric_names.COALESCED_REQUESTS).inc(len(indexed))
        for _, request in indexed:
            # Counted here, after the pass succeeded: the fallback path
            # below routes through _respond, which counts for itself.
            registry.counter(
                metric_names.PROTOCOL_REQUESTS,
                labels={"op": _op_label(request.get("op"))},
            ).inc()
        for (position, request), witnesses in zip(indexed, rendered):
            response = _base_response(request, worker)
            response.update(
                ok=True,
                result=witnesses,
                coalesced=len(indexed),
            )
            _attach_timing(request, response, span)
            out[position] = response
    except Exception:
        # Fall back to independent execution so one odd request (bad k,
        # empty set, ...) gets its own error and the others still answer.
        for position, request in indexed:
            out[position] = _respond(cache, request, worker)
    return out


__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SERVICE_OPS",
    "SAMPLE_OPS",
    "CONTROL_OPS",
    "CONNECTION_OPS",
    "DEFAULT_ENUM_CHUNK",
    "paging_rounds",
    "spec_key",
    "witness_set_from_spec",
    "render_witness",
    "draw_samples",
    "draw_samples_coalesced",
    "WitnessSetCache",
    "execute_group",
]
