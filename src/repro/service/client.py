"""A minimal JSON-lines client for the witness service.

Used by ``repro query``, the CI smoke checks and the service benchmark.
Deliberately tiny: open a TCP connection, write request lines, read
response lines until every id is answered.
"""

from __future__ import annotations

import json
import socket
from types import TracebackType
from typing import Any, Iterator

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """The server hung up or answered garbage."""


class ServiceClient:
    """One connection to a ``repro serve --port`` server."""

    sock: socket.socket
    last_cursor: Any
    _buffer: bytes
    _next_id: int
    _stream_lines: dict[str, list[dict[str, Any]]]

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0
    ) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        self._next_id = 0
        #: Cursor of the last enumerate chunk received (resume support).
        self.last_cursor = None
        #: Live stream id → lines read on its behalf by *other* calls.
        #: Interleaving a paused enumerate() generator with send() would
        #: otherwise drop the stream's in-flight chunks on the floor.
        self._stream_lines = {}

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            data = self.sock.recv(1 << 20)
            if not data:
                raise ServiceClientError("server closed the connection")
            self._buffer += data
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def send(self, requests: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Send requests (ids filled in when missing) and collect all
        responses, returned in request order."""
        prepared: list[dict[str, Any]] = []
        for request in requests:
            request = dict(request)
            if "id" not in request:
                request["id"] = f"c{self._next_id}"
                self._next_id += 1
            prepared.append(request)
        payload = b"".join(
            json.dumps(request, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
            + b"\n"
            for request in prepared
        )
        self.sock.sendall(payload)
        pending: dict[str, list[dict[str, Any]]] = {}
        order = [request["id"] for request in prepared]
        remaining = {request_id: order.count(request_id) for request_id in order}
        responses: list[dict[str, Any]] = []
        while sum(remaining.values()) > 0:
            response = json.loads(self._read_line())
            rid = response.get("id")
            if rid in remaining and remaining[rid] > 0:
                remaining[rid] -= 1
                pending.setdefault(rid, []).append(response)
            elif rid in self._stream_lines:
                # A live (paused) enumerate generator's chunk: keep it
                # for the generator instead of dropping it.
                self._stream_lines[rid].append(response)
            # Anything else (stale cancel acks, cancelled-stream tails)
            # is dropped.
        for rid in order:
            responses.append(pending[rid].pop(0))
        return responses

    def request(
        self, op: str, spec: dict[str, Any] | None = None, **fields: Any
    ) -> dict[str, Any]:
        """One request/response round-trip; returns the response dict."""
        request: dict[str, Any] = {"op": op}
        if spec is not None:
            request["spec"] = spec
        request.update(fields)
        return self.send([request])[0]

    def result(self, op: str, spec: dict[str, Any] | None = None, **fields: Any) -> Any:
        """Like :meth:`request` but unwraps ``result`` (raises on error)."""
        response = self.request(op, spec, **fields)
        if not response.get("ok"):
            raise ServiceClientError(
                f"{response.get('error_type', 'error')}: {response.get('error')}"
            )
        return response["result"]

    def enumerate(
        self,
        spec: dict[str, Any],
        limit: int | None = None,
        chunk_size: int | None = None,
        cursor: Any = None,
    ) -> Iterator[Any]:
        """Stream witnesses of ``spec`` from the server, one at a time.

        Sends a single ``{"op": "enumerate", "stream": true}`` request;
        the async server answers with chunked response lines and this
        generator yields their items as the chunks arrive — the first
        witnesses are available long before (and regardless of whether)
        the enumeration finishes, and neither side ever materializes
        the witness set.  ``cursor`` resumes a previous stream (each
        chunk's cursor is remembered on :attr:`last_cursor`, so a
        dropped connection can pick up where it left off); ``limit``
        bounds the total and ``chunk_size`` the per-chunk batch.

        Abandoning the generator sends a best-effort ``cancel`` op so
        the server stops paging (its ack and any in-flight chunk lines
        are skipped by id on later calls); closing the client cancels
        the stream server-side too.
        """
        request: dict[str, Any] = {"op": "enumerate", "spec": spec, "stream": True}
        request["id"] = f"c{self._next_id}"
        self._next_id += 1
        if limit is not None:
            request["limit"] = limit
        if chunk_size is not None:
            request["chunk_size"] = chunk_size
        if cursor is not None:
            request["cursor"] = cursor
        self.last_cursor = cursor
        self.sock.sendall(
            json.dumps(request, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
            + b"\n"
        )
        done = False
        buffered = self._stream_lines.setdefault(request["id"], [])
        try:
            while True:
                if buffered:
                    response = buffered.pop(0)
                else:
                    response = json.loads(self._read_line())
                rid = response.get("id")
                if rid != request["id"]:
                    if rid in self._stream_lines:
                        self._stream_lines[rid].append(response)
                    continue  # a stale cancel ack or cancelled-stream tail
                if not response.get("ok"):
                    done = response.get("done", True)
                    raise ServiceClientError(
                        f"{response.get('error_type', 'error')}: {response.get('error')}"
                    )
                # Recorded before yielding: resuming from last_cursor
                # continues after the last chunk *received* (a consumer
                # abandoning mid-chunk skips that chunk's remainder).
                self.last_cursor = response.get("cursor")
                yield from response.get("chunk") or ()
                if response.get("done"):
                    done = True
                    return
        finally:
            self._stream_lines.pop(request["id"], None)
            if not done:
                # Abandoned mid-stream: stop the server's paging.  The
                # ack (and any chunk already in flight) carries an id no
                # later call waits for, so it is skipped transparently.
                cancel = {"op": "cancel", "target": request["id"], "id": f"c{self._next_id}"}
                self._next_id += 1
                try:
                    self.sock.sendall(
                        json.dumps(cancel, separators=(",", ":")).encode("utf-8") + b"\n"
                    )
                except OSError:  # pragma: no cover - connection already gone
                    pass

    def shutdown(self) -> None:
        """Ask the server to stop (best-effort)."""
        try:
            self.request("shutdown")
        except (OSError, ServiceClientError):  # pragma: no cover - racing exit
            pass


__all__ = ["ServiceClient", "ServiceClientError"]
