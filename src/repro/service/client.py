"""A minimal JSON-lines client for the witness service.

Used by ``repro query``, the CI smoke checks and the service benchmark.
Deliberately tiny: open a TCP connection, write request lines, read
response lines until every id is answered.
"""

from __future__ import annotations

import json
import socket

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """The server hung up or answered garbage."""


class ServiceClient:
    """One connection to a ``repro serve --port`` server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        self._next_id = 0

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            data = self.sock.recv(1 << 20)
            if not data:
                raise ServiceClientError("server closed the connection")
            self._buffer += data
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def send(self, requests: list[dict]) -> list[dict]:
        """Send requests (ids filled in when missing) and collect all
        responses, returned in request order."""
        prepared = []
        for request in requests:
            request = dict(request)
            if "id" not in request:
                request["id"] = f"c{self._next_id}"
                self._next_id += 1
            prepared.append(request)
        payload = b"".join(
            json.dumps(request, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
            + b"\n"
            for request in prepared
        )
        self.sock.sendall(payload)
        pending: dict = {}
        order = [request["id"] for request in prepared]
        remaining = {request_id: order.count(request_id) for request_id in order}
        responses: list[dict] = []
        while sum(remaining.values()) > 0:
            response = json.loads(self._read_line())
            rid = response.get("id")
            if rid in remaining and remaining[rid] > 0:
                remaining[rid] -= 1
                pending.setdefault(rid, []).append(response)
            # Unknown ids (another client's? impossible on one conn) dropped.
        for rid in order:
            responses.append(pending[rid].pop(0))
        return responses

    def request(self, op: str, spec: dict | None = None, **fields) -> dict:
        """One request/response round-trip; returns the response dict."""
        request: dict = {"op": op}
        if spec is not None:
            request["spec"] = spec
        request.update(fields)
        return self.send([request])[0]

    def result(self, op: str, spec: dict | None = None, **fields):
        """Like :meth:`request` but unwraps ``result`` (raises on error)."""
        response = self.request(op, spec, **fields)
        if not response.get("ok"):
            raise ServiceClientError(
                f"{response.get('error_type', 'error')}: {response.get('error')}"
            )
        return response["result"]

    def shutdown(self) -> None:
        """Ask the server to stop (best-effort)."""
        try:
            self.request("shutdown")
        except (OSError, ServiceClientError):  # pragma: no cover - racing exit
            pass


__all__ = ["ServiceClient", "ServiceClientError"]
