"""The JSON-lines witness service: stdin/stdout and async TCP front-ends.

One request per line in, one response per line out (see
:mod:`repro.service.protocol` for the shapes).  The server's job is
**batching**: instead of answering arrivals one by one, requests that
have already arrived (plus a short ``batch_window`` grace for
stragglers) are handed to the :class:`~repro.service.engine.Engine` as
one batch — which groups by spec and coalesces same-spec sample
requests into a single ``sample_batch`` kernel pass — and the responses
are written back.  Under concurrent load this turns N same-instance
requests costing N kernel walks into one walk, without changing any
response byte (the substream contract).

Front-ends:

* :func:`serve_stdio` — JSON-lines over stdin/stdout, the subprocess /
  pipeline embedding (``repro serve --stdio``);
* :func:`serve_tcp` — an ``asyncio`` server (``repro serve --port N``)
  multiplexing any number of concurrent client connections.  All
  connections feed one shared batching queue, so same-spec sample
  bursts coalesce **across connections**, not just within one client's
  pipelined write.

Concurrency semantics of the TCP server:

* **Per-connection isolation** — every connection has its own reader
  task and its own write path; one client's malformed input, slow
  reading or disconnect never affects another's responses.
* **Bounded request size** — a request line longer than ``max_line``
  bytes is answered with a one-line JSON error and the connection is
  closed (line framing is unrecoverable past that point); the reader
  never buffers an endless line.
* **Backpressure** — reads stop while a connection's earlier requests
  are still being enqueued (the shared queue is bounded), and writes
  await the socket drain, so a client that stops reading pauses its own
  stream instead of growing server memory.  A connection whose write
  stalls longer than ``write_timeout`` is dropped.
* **Per-request deadlines** — ``request_timeout`` (overridable per
  request via ``"timeout_ms"``) bounds how long a request may wait for
  engine capacity; an expired request is answered with a
  ``TimeoutError`` response instead of executing.  Requests from a
  connection that has gone away are cancelled (dropped before
  execution).
* **Graceful drain** — ``shutdown`` stops accepting new connections,
  answers everything already queued, flushes every live connection and
  only then exits.

Streamed enumeration: a client request ``{"op": "enumerate", "stream":
true, ...}`` is answered with a *sequence* of chunked response lines
``{"id": ..., "ok": true, "chunk": [...], "cursor": ..., "done":
false}`` ending with a ``"done": true`` line.  Each chunk is one paged
engine round (the affinity worker resumes from the cursor in O(n)), so
other clients' batches interleave with a long-running stream, the
witness set is never materialized, and the per-chunk ``cursor`` lets a
disconnected client resume exactly where it stopped.

Control ops: ``ping`` answers ``"pong"``; ``stats`` reports server
counters, the aggregated engine summary, and the pool-wide merged
metrics snapshot (request the classic per-worker entry list with
``"per_worker": true``); ``shutdown`` acknowledges, drains, and stops
the server.  Malformed lines get an ``ok: false`` response rather than
killing the connection.

Observability (see :mod:`repro.obs`): every front-door request is
counted and timed (``repro_request_seconds``), server-side stages
(parse, coalesce wait) join the per-stage histogram and — for requests
sent with ``"trace": true`` — the response's ``timing`` breakdown; a
plain HTTP ``GET`` on the TCP port answers with the Prometheus text
exposition of the pool-wide registry; requests slower than the
slow-query threshold are appended to a JSON-lines slow-query log
(``--slow-query-log`` / ``$REPRO_SLOW_QUERY_LOG``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import selectors
import sys
import time
from typing import IO, TYPE_CHECKING, Any, Callable, Coroutine

from repro import obs
from repro.obs import names as metric_names
from repro.service.engine import Engine
from repro.service.protocol import _op_label

if TYPE_CHECKING:
    import threading

#: Default grace period for coalescing stragglers into a batch (seconds).
DEFAULT_BATCH_WINDOW = 0.005

#: Default bound on one request line (bytes); longer lines are answered
#: with a one-line JSON error instead of being buffered without bound.
DEFAULT_MAX_LINE = 8 * 1024 * 1024

#: Default cap on simultaneously served connections.
DEFAULT_MAX_CONNECTIONS = 1024

#: Default budget for one response write before the client is considered
#: gone (seconds).
DEFAULT_WRITE_TIMEOUT = 5.0

#: Bound on requests waiting for engine capacity; enqueueing past it
#: blocks the connection's reader (backpressure), never server memory.
_QUEUE_LIMIT = 4096

#: Cap on concurrent enumeration streams per connection.
MAX_STREAMS_PER_CONNECTION = 8

_MAX_LINE = DEFAULT_MAX_LINE  # backwards-compatible alias


def _write_stderr(message: str) -> None:
    """Executor target for diagnostics emitted from the event loop."""
    sys.stderr.write(message)
    sys.stderr.flush()


def _swallow_exception(future: asyncio.Future[Any]) -> None:
    """Done-callback for fire-and-forget futures: retrieve the exception
    so the event loop never logs "exception was never retrieved"."""
    if not future.cancelled():
        future.exception()


def _parse_line(line: bytes | str) -> dict[str, Any]:
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    request = json.loads(line)
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    return request


def _error_response(request_id: object, error: Exception) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": str(error),
        "error_type": type(error).__name__,
    }


def encode_response(response: dict[str, Any]) -> bytes:
    return json.dumps(response, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    ) + b"\n"


def _aggregate_server_stats(
    engine: Engine, per_worker: bool = False
) -> dict[str, Any]:
    """The enriched ``stats`` payload: engine summary plus merged metrics.

    The metrics snapshot merges this process's registry (server counters,
    request/stage histograms, and — with ``workers=0`` — the embedded
    cache/store counters) with every worker's snapshot, so one scrape
    sees the whole pool.  ``per_worker`` additionally returns the classic
    per-worker entry list under ``"workers"``.
    """
    entries = engine.stats(per_worker=True)
    assert isinstance(entries, list)
    summary = Engine.aggregate_stats(entries)
    worker_metrics = summary.pop("metrics", None) or {}
    result: dict[str, Any] = {
        "engine": summary,
        "metrics": obs.merge_snapshots(
            [obs.metrics().snapshot(), worker_metrics]
        ),
    }
    if per_worker:
        result["workers"] = entries
    return result


class WitnessServer:
    """The batching request loop over one :class:`Engine`.

    Responses are delivered through per-request callbacks, so the same
    core serves the stdio front-end (and the tests drive it directly).
    """

    def __init__(self, engine: Engine, batch_window: float = DEFAULT_BATCH_WINDOW) -> None:
        self.engine = engine
        self.batch_window = batch_window
        self.served = 0
        self.batches = 0
        self.shutting_down = False

    def process(
        self, parsed: list[tuple[dict[str, Any], object]]
    ) -> list[tuple[dict[str, Any], object]]:
        """Answer a drained batch of ``(request, reply_to)`` pairs.

        A ``shutdown`` op is acknowledged immediately and flips
        :attr:`shutting_down`; the remaining requests of the batch are
        still answered.  ``stats`` is answered here so it aggregates
        *every* worker's counters (routed through the engine it would
        reach only one).
        """
        executable: list[dict[str, Any]] = []
        sinks: list[object] = []
        out: list[tuple[dict[str, Any], object]] = []
        for request, reply_to in parsed:
            op = request.get("op")
            if op == "shutdown":
                self.shutting_down = True
                out.append(({"id": request.get("id"), "ok": True, "result": "bye"}, reply_to))
                continue
            if op == "stats":
                result = dict(
                    _aggregate_server_stats(
                        self.engine,
                        per_worker=bool(request.get("per_worker")),
                    ),
                    served=self.served,
                    batches=self.batches,
                )
                out.append(({"id": request.get("id"), "ok": True, "result": result}, reply_to))
                continue
            executable.append(request)
            sinks.append(reply_to)
        if executable:
            self.batches += 1
            responses = self.engine.execute(executable)
            self.served += len(responses)
            out.extend(zip(responses, sinks))
        return out


def _answer_lines(
    server: WitnessServer, lines: list[Any], stdout: IO[Any], max_line: int
) -> None:
    """Parse a batch of request lines, execute, write response lines."""
    parsed: list[tuple[dict[str, Any], object]] = []
    for text in lines:
        if isinstance(text, bytes):
            text = text.decode("utf-8", errors="replace")
        if not text.strip():
            continue
        if len(text) > max_line:
            stdout.write(
                encode_response(
                    _error_response(
                        None, ValueError(f"request line too long (max {max_line} bytes)")
                    )
                ).decode("utf-8")
            )
            continue
        try:
            parsed.append((_parse_line(text), None))
        except ValueError as error:
            stdout.write(encode_response(_error_response(None, error)).decode("utf-8"))
    for response, _ in server.process(parsed):
        stdout.write(encode_response(response).decode("utf-8"))
    stdout.flush()


def serve_stdio(
    engine: Engine,
    stdin: IO[Any] | None = None,
    stdout: IO[Any] | None = None,
    batch_window: float = DEFAULT_BATCH_WINDOW,
    max_line: int = DEFAULT_MAX_LINE,
) -> int:
    """Serve JSON-lines over stdin/stdout until EOF or ``shutdown``.

    Batching: on a real pipe the loop reads raw bytes from the file
    descriptor (its own line framing, no stdio buffering in the way), so
    everything the client has already written — plus a ``batch_window``
    grace for stragglers — lands in one engine batch and same-spec
    sample requests coalesce.  Non-selectable inputs (tests passing
    ``StringIO``) fall back to line-at-a-time processing.

    A line longer than ``max_line`` is answered with a one-line JSON
    error and *discarded up to its newline* — the reader never grows an
    unbounded buffer, and the stream stays usable afterwards (unlike
    TCP, stdio has exactly one client, so closing is not an option).
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = WitnessServer(engine, batch_window)

    fileno: int | None
    try:
        fileno = stdin.fileno()
    except (OSError, ValueError, AttributeError):
        fileno = None

    if fileno is None:
        # Fallback framing for non-selectable streams: no fd to select
        # on, so no cross-line batching — process each line as it comes.
        # readline is capped so an endless line is bounded here too: the
        # oversized head gets the error, the tail is discarded in
        # max_line-sized reads.
        while not server.shutting_down:
            line = stdin.readline(max_line + 1)
            if not line:
                break
            newline = "\n" if isinstance(line, str) else b"\n"
            if len(line) > max_line and not line.endswith(newline):
                stdout.write(
                    encode_response(
                        _error_response(
                            None,
                            ValueError(
                                f"request line too long (max {max_line} bytes)"
                            ),
                        )
                    ).decode("utf-8")
                )
                stdout.flush()
                while True:  # discard the rest of the oversized line
                    tail = stdin.readline(max_line)
                    if not tail or tail.endswith(newline):
                        break
                continue
            _answer_lines(server, [line], stdout, max_line)
        return 0

    selector = selectors.DefaultSelector()
    selector.register(fileno, selectors.EVENT_READ)
    buffer = b""
    eof = False
    discarding = False

    def frame(chunk: bytes) -> list[bytes]:
        """Append a chunk, splitting complete lines off the buffer and
        enforcing ``max_line`` (oversized partial lines flip the reader
        into discard-until-newline mode)."""
        nonlocal buffer, discarding
        buffer += chunk
        if discarding and b"\n" not in buffer:
            buffer = b""  # still inside the oversized line: drop it all
            return []
        *lines, buffer = buffer.split(b"\n")
        if discarding and lines:
            # The tail of the oversized line ends at the first newline.
            lines = lines[1:]
            discarding = False
        if not discarding and len(buffer) > max_line:
            stdout.write(
                encode_response(
                    _error_response(
                        None, ValueError(f"request line too long (max {max_line} bytes)")
                    )
                ).decode("utf-8")
            )
            stdout.flush()
            buffer = b""
            discarding = True
        return lines

    try:
        while not server.shutting_down and not eof:
            selector.select()  # block until the first bytes arrive
            chunk = os.read(fileno, 1 << 20)
            if not chunk:
                break
            lines = frame(chunk)
            # Straggler grace: drain whatever else arrives in the window.
            deadline = time.monotonic() + server.batch_window
            while True:
                timeout = deadline - time.monotonic()
                if timeout <= 0 or not selector.select(timeout):
                    break
                chunk = os.read(fileno, 1 << 20)
                if not chunk:
                    eof = True
                    break
                lines.extend(frame(chunk))
            if lines:
                _answer_lines(server, lines, stdout, max_line)
        if buffer.strip() and not discarding and not server.shutting_down:
            _answer_lines(server, [buffer], stdout, max_line)  # unterminated last line
    finally:
        selector.close()
    return 0


# ----------------------------------------------------------------------
# The async TCP front-end
# ----------------------------------------------------------------------


class _Pending:
    """One queued request awaiting engine capacity."""

    __slots__ = ("request", "conn", "deadline", "future", "received", "parse_seconds", "exec_start")

    request: dict[str, Any]
    conn: _Connection
    deadline: float | None
    future: asyncio.Future[dict[str, Any] | None] | None
    received: float
    parse_seconds: float
    exec_start: float | None

    def __init__(
        self,
        request: dict[str, Any],
        conn: _Connection,
        deadline: float | None,
        future: asyncio.Future[dict[str, Any] | None] | None = None,
        received: float = 0.0,
        parse_seconds: float = 0.0,
    ) -> None:
        self.request = request
        self.conn = conn
        self.deadline = deadline
        #: When set, the pump resolves this future instead of writing to
        #: the connection (internal rounds, e.g. one page of a stream).
        self.future = future
        #: loop.time() at enqueue — the front-door timestamp every
        #: latency/wait stage is measured against.
        self.received = received
        #: Wall time spent decoding this request's line.
        self.parse_seconds = parse_seconds
        #: loop.time() when the batch containing this request started
        #: executing (None for requests answered before execution).
        self.exec_start = None


class _Connection:
    """One TCP client: its writer plus liveness/ordering state."""

    __slots__ = ("writer", "closed", "write_lock", "streams")

    writer: asyncio.StreamWriter
    closed: bool
    write_lock: asyncio.Lock
    streams: dict[int, tuple[Any, asyncio.Task[None]]]

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.closed = False
        self.write_lock = asyncio.Lock()
        #: Live enumeration streams: unique key → (request id, task).
        self.streams = {}

    async def write(self, payload: bytes) -> None:
        async with self.write_lock:
            self.writer.write(payload)
            await self.writer.drain()


class AsyncWitnessServer:
    """The concurrent TCP server: many connections, one batching pump.

    Every connection's requests land in one bounded queue; a single pump
    task drains it (first arrival plus a ``batch_window`` straggler
    grace), executes the whole batch in one engine call on a worker
    thread, and fans the responses back out.  The engine is only ever
    driven by the pump, so multiprocess result-queue consumption stays
    single-consumer while any number of clients talk concurrently.
    """

    def __init__(
        self,
        engine: Engine,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_line: int = DEFAULT_MAX_LINE,
        request_timeout: float | None = None,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        write_timeout: float = DEFAULT_WRITE_TIMEOUT,
        slow_query_log: obs.SlowQueryLog | None = None,
    ) -> None:
        self.engine = engine
        self.batch_window = batch_window
        self.max_line = max_line
        self.request_timeout = request_timeout
        self.max_connections = max_connections
        self.write_timeout = write_timeout
        self.slow_query_log = (
            slow_query_log if slow_query_log is not None else obs.slow_log_from_env()
        )
        self.served = 0  # owned-by: event-loop
        self.batches = 0  # owned-by: event-loop
        self.shutting_down = False  # owned-by: event-loop
        self.connections: set[_Connection] = set()  # owned-by: event-loop
        self._queue: asyncio.Queue[_Pending] | None = None  # owned-by: event-loop
        self._stop: asyncio.Event | None = None  # owned-by: event-loop
        self._stream_keys = itertools.count()  # owned-by: event-loop
        #: In-flight response writes, detached from the pump so a slow
        #: reader only ever stalls its own connection.
        self._send_tasks: set[asyncio.Task[None]] = set()  # owned-by: event-loop
        # Metric handles are bound per instance (not at import) so a
        # registry reset in tests/benchmarks never strands live servers
        # on stale objects.
        registry = obs.metrics()
        self._m_malformed = registry.counter(metric_names.SERVER_MALFORMED)
        self._m_connections = registry.counter(metric_names.SERVER_CONNECTIONS)
        self._m_dropped = registry.counter(metric_names.SERVER_DROPPED_CONNECTIONS)
        self._m_stalls = registry.counter(metric_names.SERVER_BACKPRESSURE_STALLS)
        self._m_active_connections = registry.gauge(
            metric_names.SERVER_ACTIVE_CONNECTIONS
        )
        self._m_active_streams = registry.gauge(metric_names.SERVER_ACTIVE_STREAMS)
        self._m_queue_depth = registry.gauge(metric_names.SERVER_QUEUE_DEPTH)
        self._m_batch_size = registry.histogram(metric_names.SERVER_BATCH_SIZE)
        self._m_request_seconds = registry.histogram(metric_names.REQUEST_SECONDS)
        self._m_slow_queries = registry.counter(metric_names.SLOW_QUERIES)
        self._m_stage_parse = registry.histogram(
            metric_names.STAGE_SECONDS, labels={"stage": metric_names.STAGE_PARSE}
        )
        self._m_stage_coalesce = registry.histogram(
            metric_names.STAGE_SECONDS,
            labels={"stage": metric_names.STAGE_COALESCE_WAIT},
        )

    def _count_request(self, op: Any) -> None:
        obs.metrics().counter(
            metric_names.SERVER_REQUESTS, labels={"op": _op_label(op)}
        ).inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(
        self,
        host: str,
        port: int,
        ready_callback: Callable[[Any], None] | None = None,
    ) -> int:
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=_QUEUE_LIMIT)
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, host, port, limit=self.max_line
        )
        address = server.sockets[0].getsockname()
        if ready_callback is not None:
            ready_callback(address)
        pump = loop.create_task(self._pump())
        try:
            await self._stop.wait()
            # Graceful drain: no new connections, answer what's queued,
            # flush what's written, then leave.  (The listener closes
            # immediately; Server.wait_closed is *not* awaited before the
            # drain because since 3.12 it waits for every connection
            # handler — and idle clients may hold connections open.)
            server.close()
            await self._queue.join()
            if self._send_tasks:
                # Responses are written by detached tasks: flush them
                # (bounded — a stalled write gives up at write_timeout).
                await asyncio.wait(
                    list(self._send_tasks), timeout=self.write_timeout + 1.0
                )
        finally:
            pump.cancel()
            # Unblock any stream task still waiting on an unprocessed
            # page round, then drop the connections (which ends their
            # handler tasks and lets the listener fully close).
            while self._queue is not None and not self._queue.empty():
                pending = self._queue.get_nowait()
                if pending.future is not None and not pending.future.done():
                    pending.future.set_result(None)
                self._queue.task_done()
            for conn in list(self.connections):
                await self._close_connection(conn)
            try:
                await asyncio.wait_for(server.wait_closed(), timeout=1.0)
            except asyncio.TimeoutError:  # pragma: no cover - stuck handler
                pass
        return 0

    def _begin_shutdown(self) -> None:
        self.shutting_down = True
        if self._stop is not None:
            self._stop.set()

    async def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self.connections.discard(conn)
        self._m_active_connections.set(len(self.connections))
        for _, task in list(conn.streams.values()):
            task.cancel()
        conn.streams.clear()
        try:
            conn.writer.close()
            await asyncio.wait_for(conn.writer.wait_closed(), timeout=1.0)
        except (OSError, asyncio.TimeoutError):  # pragma: no cover - racing close
            pass

    # ------------------------------------------------------------------
    # Per-connection reader
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        if self.shutting_down or len(self.connections) >= self.max_connections:
            reason = (
                "server is shutting down"
                if self.shutting_down
                else f"too many connections (max {self.max_connections})"
            )
            await self._send(conn, _error_response(None, ConnectionError(reason)))
            self._m_dropped.inc()
            await self._close_connection(conn)
            return
        self.connections.add(conn)
        self._m_connections.inc()
        self._m_active_connections.set(len(self.connections))
        saw_request = False
        try:
            while not conn.closed and not self.shutting_down:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: one JSON error, then close — the
                    # frame boundary is lost, resyncing is impossible.
                    self._m_malformed.inc()
                    await self._send(
                        conn,
                        _error_response(
                            None,
                            ValueError(
                                f"request line too long (max {self.max_line} bytes)"
                            ),
                        ),
                    )
                    break
                except (OSError, ConnectionError):
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                if not saw_request and line.startswith(b"GET "):
                    # A Prometheus scrape (plain HTTP GET) on the same
                    # port: answer the text exposition and close — no
                    # JSON framing was established yet, so nothing on
                    # this connection is lost.
                    await self._serve_metrics_http(reader, conn)
                    break
                saw_request = True
                parse_started = time.perf_counter()
                try:
                    request = _parse_line(line)
                except ValueError as error:
                    self._m_malformed.inc()
                    await self._send(conn, _error_response(None, error))
                    continue
                parse_seconds = time.perf_counter() - parse_started
                op = request.get("op")
                self._count_request(op)
                if op == "shutdown":
                    await self._send(
                        conn, {"id": request.get("id"), "ok": True, "result": "bye"}
                    )
                    self._begin_shutdown()
                    break
                if op == "cancel":
                    await self._cancel_stream(request, conn)
                    continue
                if op == "enumerate" and request.get("stream"):
                    await self._start_stream(request, conn)
                    continue
                await self._enqueue(request, conn, parse_seconds=parse_seconds)
        finally:
            # Marks the connection closed, which cancels its queued
            # requests, and stops its stream tasks.
            await self._close_connection(conn)

    async def _serve_metrics_http(
        self, reader: asyncio.StreamReader, conn: _Connection
    ) -> None:
        """Answer a plain HTTP ``GET`` on the JSON-lines port with the
        Prometheus text exposition (pool-wide merged registry).

        Scrapers speak one request per connection here: the headers are
        drained, the body written, and the connection closed — the JSON
        protocol is never entered.  The scrape rides the pump queue as
        an internal ``stats`` round, so the pump stays the engine's only
        driver: a scrape arriving mid-batch waits its turn instead of
        racing the pump for the worker pool's shared result queue (where
        it could steal — and drop — an in-flight batch's responses).
        """
        try:
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=1.0)
                if not header or header in (b"\r\n", b"\n"):
                    break
        except (asyncio.TimeoutError, OSError, ConnectionError):
            return
        future: asyncio.Future[dict[str, Any] | None] = (
            asyncio.get_running_loop().create_future()
        )
        await self._enqueue({"op": "stats"}, conn, future)
        response = await future
        if response is None or not response.get("ok"):
            # Shutdown drain or a stats failure: a scrape-friendly
            # status line beats silently dropping the connection.
            head = (
                "HTTP/1.0 503 Service Unavailable\r\n"
                "Content-Length: 0\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            encoded = b""
        else:
            result = response.get("result") or {}
            body = obs.render_prometheus(result.get("metrics") or {})
            encoded = body.encode("utf-8")
            head = (
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(encoded)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
        try:
            await asyncio.wait_for(
                conn.write(head + encoded), timeout=self.write_timeout
            )
        except (asyncio.TimeoutError, OSError, ConnectionError):
            pass

    def _deadline_for(self, request: dict[str, Any]) -> float | None:
        timeout = self.request_timeout
        timeout_ms = request.get("timeout_ms")
        if isinstance(timeout_ms, (int, float)) and not isinstance(timeout_ms, bool):
            timeout = timeout_ms / 1000.0
        if timeout is None or timeout <= 0:
            return None
        return asyncio.get_running_loop().time() + timeout

    async def _enqueue(
        self,
        request: dict[str, Any],
        conn: _Connection,
        future: asyncio.Future[dict[str, Any] | None] | None = None,
        parse_seconds: float = 0.0,
    ) -> None:
        queue = self._queue
        assert queue is not None  # run() builds the queue before any reader starts
        await queue.put(
            _Pending(
                request,
                conn,
                self._deadline_for(request),
                future,
                received=asyncio.get_running_loop().time(),
                parse_seconds=parse_seconds,
            )
        )
        self._m_queue_depth.set(queue.qsize())

    async def _send(self, conn: _Connection, response: dict[str, Any]) -> None:
        """Write one response line with backpressure; a write stalled
        past ``write_timeout`` (client stopped reading) drops the
        connection instead of stalling the server."""
        if conn.closed:
            return
        try:
            await asyncio.wait_for(
                conn.write(encode_response(response)), timeout=self.write_timeout
            )
        except asyncio.TimeoutError:
            # The client stopped reading: a backpressure stall that
            # exhausted its budget costs it the connection.
            self._m_stalls.inc()
            self._m_dropped.inc()
            await self._close_connection(conn)
        except (OSError, ConnectionError):
            self._m_dropped.inc()
            await self._close_connection(conn)

    # ------------------------------------------------------------------
    # Streamed enumeration
    # ------------------------------------------------------------------

    async def _start_stream(self, request: dict[str, Any], conn: _Connection) -> None:
        """Launch one enumeration stream as its own task.

        The connection's reader keeps reading while the stream runs, so
        further requests (including ``cancel``) are served concurrently
        and an abandoned stream can always be stopped without dropping
        the connection.  Streams are capped per connection; the response
        lines of concurrent streams interleave and carry their request
        id, like any pipelined response.
        """
        stream_id = request.get("id")
        if len(conn.streams) >= MAX_STREAMS_PER_CONNECTION:
            await self._send(
                conn,
                _error_response(
                    stream_id,
                    RuntimeError(
                        "too many concurrent streams on this connection "
                        f"(max {MAX_STREAMS_PER_CONNECTION})"
                    ),
                ),
            )
            return
        task = asyncio.get_running_loop().create_task(
            self._stream_enumerate(request, conn)
        )
        # Registry keys are unique per task (a client may reuse an id);
        # cancel matches on the request id, so it stops every stream the
        # client called by that name.
        key = next(self._stream_keys)
        conn.streams[key] = (stream_id, task)
        self._m_active_streams.inc()

        def _forget(_: asyncio.Task[None]) -> None:
            conn.streams.pop(key, None)
            self._m_active_streams.dec()

        task.add_done_callback(_forget)

    async def _cancel_stream(self, request: dict[str, Any], conn: _Connection) -> None:
        """The ``cancel`` op: stop live streams by their request id."""
        target = request.get("target")
        matched = [
            task for stream_id, task in conn.streams.values() if stream_id == target
        ]
        for task in matched:
            task.cancel()
        await self._send(
            conn,
            {
                "id": request.get("id"),
                "ok": True,
                "result": "cancelled" if matched else "no such stream",
            },
        )

    async def _stream_enumerate(self, request: dict[str, Any], conn: _Connection) -> None:
        """Serve one ``stream: true`` enumerate request as chunk lines.

        Each chunk is one paged engine round through the shared pump (so
        concurrent batches interleave and coalescing keeps working), and
        each chunk line is written with backpressure before the next
        page is fetched — a slow client pauses its own stream, bounding
        server memory at one chunk.
        """
        request_id = request.get("id")
        try:
            await self._stream_pages(request, conn, request_id)
        except asyncio.CancelledError:
            # A cancel op (or connection teardown): tell the client where
            # the stream stopped — the cursor in the last chunk it
            # received resumes the enumeration exactly there.
            if not conn.closed:
                await self._send(
                    conn,
                    {
                        "id": request_id,
                        "ok": False,
                        "stream": True,
                        "error": "stream cancelled",
                        "error_type": "CancelledError",
                        "done": True,
                    },
                )
            raise

    async def _stream_pages(
        self, request: dict[str, Any], conn: _Connection, request_id: object
    ) -> None:
        from repro.service.protocol import paging_rounds

        rounds = paging_rounds(request)
        page_request = next(rounds)
        while not conn.closed:
            future = asyncio.get_running_loop().create_future()
            await self._enqueue(page_request, conn, future)
            response = await future
            if response is None:  # cancelled (disconnect or shutdown)
                return
            if not response.get("ok"):
                await self._send(conn, dict(response, stream=True, done=True))
                return
            page = response.get("result") or {}
            try:
                page_request = rounds.send(response)
                done = False
            except StopIteration:
                done = True
            await self._send(
                conn,
                {
                    "id": request_id,
                    "ok": True,
                    "stream": True,
                    "chunk": page.get("items") or [],
                    # Present even on the final chunk of a limit-bounded
                    # stream: the client's resume point (None only when
                    # the enumeration is exhausted).
                    "cursor": page.get("cursor"),
                    "done": done,
                },
            )
            if done:
                return
            if self.shutting_down:
                await self._send(
                    conn,
                    {
                        "id": request_id,
                        "ok": False,
                        "stream": True,
                        "error": "server shutting down",
                        "error_type": "ConnectionError",
                        "done": True,
                        "cursor": page.get("cursor"),
                    },
                )
                return

    # ------------------------------------------------------------------
    # The pump: sole engine driver
    # ------------------------------------------------------------------

    async def _pump(self) -> None:
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None  # run() builds the queue before starting the pump
        while True:
            first = await queue.get()
            batch = [first]
            # Straggler grace: whatever any connection enqueues within
            # the window joins this batch (cross-connection coalescing).
            deadline = loop.time() + self.batch_window
            while True:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(queue.get(), timeout=timeout)
                    )
                except asyncio.TimeoutError:
                    break
            self._m_batch_size.record(float(len(batch)))
            self._m_queue_depth.set(queue.qsize())
            try:
                await self._execute_batch(loop, batch)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # A batch must never kill the pump: with no pump the
                # whole server wedges silently (every client hangs until
                # its socket timeout).  Answer the batch with an error
                # and keep serving — the next batch gets a fresh start.
                await self._fail_batch(batch, error)
            finally:
                for _ in batch:
                    queue.task_done()

    async def _fail_batch(self, batch: list[_Pending], error: Exception) -> None:
        # The diagnostic goes through the executor: stderr may be a pipe
        # with a slow (or stuck) reader, and a blocking write here would
        # stall the pump — the exact failure mode this path exists to
        # contain.
        message = (
            f"witness-server: batch of {len(batch)} failed: "
            f"{type(error).__name__}: {error}\n"
        )
        await asyncio.get_running_loop().run_in_executor(
            None, _write_stderr, message
        )
        sends: list[Coroutine[Any, Any, None]] = []
        for pending in batch:
            if pending.conn.closed:
                if pending.future is not None and not pending.future.done():
                    pending.future.set_result(None)
                continue
            sends.append(
                self._resolve(
                    pending,
                    {
                        "id": pending.request.get("id"),
                        "ok": False,
                        "error": f"internal server error: {error}",
                        "error_type": type(error).__name__,
                    },
                )
            )
        self._dispatch(sends)

    async def _execute_batch(
        self, loop: asyncio.AbstractEventLoop, batch: list[_Pending]
    ) -> None:
        now = loop.time()
        live: list[_Pending] = []
        sends: list[Coroutine[Any, Any, None]] = []
        stats_items: list[_Pending] = []
        for pending in batch:
            if pending.conn.closed:
                # Cancelled: the client is gone; never execute, and
                # resolve any internal waiter so its task can exit.
                if pending.future is not None and not pending.future.done():
                    pending.future.set_result(None)
                continue
            if pending.deadline is not None and now > pending.deadline:
                response = {
                    "id": pending.request.get("id"),
                    "ok": False,
                    "error": "request deadline exceeded before execution",
                    "error_type": "TimeoutError",
                }
                sends.append(self._resolve(pending, response))
                continue
            if pending.request.get("op") == "stats":
                stats_items.append(pending)
                continue
            live.append(pending)
        # Dispatch as soon as each group's responses exist: a failure in
        # a later group then cannot strand earlier, undispatched sends.
        self._dispatch(sends)
        sends = []
        if live:
            requests = [pending.request for pending in live]
            self.batches += 1
            exec_start = loop.time()
            for pending in live:
                pending.exec_start = exec_start
            responses = await loop.run_in_executor(None, self.engine.execute, requests)
            self.served += len(responses)
            self._dispatch(
                [self._resolve(p, r) for p, r in zip(live, responses)]
            )
        if stats_items:
            # Aggregated at the server so every worker's counters show up
            # (through engine.execute a stats op reaches one worker).
            per_worker = any(
                pending.request.get("per_worker") for pending in stats_items
            )
            stats = await loop.run_in_executor(
                None, _aggregate_server_stats, self.engine, per_worker
            )
            # Internal rounds (HTTP metrics scrapes resolve a future)
            # are monitoring plumbing, not served client requests.
            self.served += sum(
                1 for pending in stats_items if pending.future is None
            )
            for pending in stats_items:
                result = dict(
                    stats,
                    served=self.served,
                    batches=self.batches,
                    connections=len(self.connections),
                )
                if not pending.request.get("per_worker"):
                    result.pop("workers", None)
                sends.append(
                    self._resolve(
                        pending,
                        {"id": pending.request.get("id"), "ok": True, "result": result},
                    )
                )
        self._dispatch(sends)

    def _dispatch(self, sends: list[Coroutine[Any, Any, None]]) -> None:
        """Fire response deliveries as independent tasks.

        The pump must not await them: one client that has stopped
        reading would otherwise stall every other client's batches for
        up to ``write_timeout`` (writes are already serialized per
        connection by its write lock, and a stalled connection is
        dropped by :meth:`_send`, which bounds the task backlog)."""
        loop = asyncio.get_running_loop()
        for coroutine in sends:
            task = loop.create_task(coroutine)
            self._send_tasks.add(task)
            task.add_done_callback(self._send_tasks.discard)

    async def _resolve(self, pending: _Pending, response: dict[str, Any]) -> None:
        if pending.future is not None:
            # Internal page rounds of a stream: the front-door request is
            # the stream itself, so pages don't count as requests here.
            if not pending.future.done():
                pending.future.set_result(response)
            return
        self._observe_response(pending, response)
        await self._send(pending.conn, response)

    def _observe_response(
        self, pending: _Pending, response: dict[str, Any]
    ) -> None:
        """Account one finished front-door request: latency histogram,
        server-side stage timings, and the slow-query log."""
        loop = asyncio.get_running_loop()
        total = pending.parse_seconds + max(0.0, loop.time() - pending.received)
        if obs.enabled():
            self._m_request_seconds.record(total)
            if pending.parse_seconds > 0:
                self._m_stage_parse.record(pending.parse_seconds)
            coalesce_wait = (
                max(0.0, pending.exec_start - pending.received)
                if pending.exec_start is not None
                else None
            )
            if coalesce_wait is not None:
                self._m_stage_coalesce.record(coalesce_wait)
            if pending.request.get("trace"):
                timing = response.setdefault("timing", {})
                if isinstance(timing, dict):
                    timing[metric_names.STAGE_PARSE] = pending.parse_seconds
                    if coalesce_wait is not None:
                        timing[metric_names.STAGE_COALESCE_WAIT] = coalesce_wait
        log = self.slow_query_log
        if log is not None and log.should_record(total):
            self._m_slow_queries.inc()
            event = {
                "ts": time.time(),
                "id": pending.request.get("id"),
                "op": pending.request.get("op"),
                "ok": response.get("ok"),
                "total_seconds": total,
                "timing": response.get("timing"),
            }
            # File appends never run on the event loop; fire-and-forget
            # on the default executor (failures are swallowed — a broken
            # slow log must not break serving).
            writer = loop.run_in_executor(None, log.record, event)
            writer.add_done_callback(_swallow_exception)


def serve_tcp(
    engine: Engine,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_window: float = DEFAULT_BATCH_WINDOW,
    ready_callback: Callable[[Any], None] | None = None,
    *,
    max_line: int = DEFAULT_MAX_LINE,
    request_timeout: float | None = None,
    max_connections: int = DEFAULT_MAX_CONNECTIONS,
    write_timeout: float = DEFAULT_WRITE_TIMEOUT,
    slow_query_log: obs.SlowQueryLog | None = None,
) -> int:
    """Serve JSON-lines over TCP until a client sends ``shutdown``.

    Binds ``host:port`` (port 0 picks an ephemeral port), then calls
    ``ready_callback((host, actual_port))`` — the hook tests and the CLI
    use to learn the address.  The implementation is an ``asyncio``
    event loop (:class:`AsyncWitnessServer`): any number of connections
    are multiplexed concurrently, all feeding one batching pump, so
    same-spec sample coalescing spans connections.  See the module
    docstring for the concurrency semantics (bounded lines, deadlines,
    backpressure, streamed enumeration, graceful drain).
    """
    server = AsyncWitnessServer(
        engine,
        batch_window=batch_window,
        max_line=max_line,
        request_timeout=request_timeout,
        max_connections=max_connections,
        write_timeout=write_timeout,
        slow_query_log=slow_query_log,
    )
    return asyncio.run(server.run(host, port, ready_callback))


def start_tcp_server_thread(
    engine: Engine, **kwargs: Any
) -> tuple[threading.Thread, Any]:
    """Run :func:`serve_tcp` in a daemon thread; returns
    ``(thread, (host, port))`` once the listener is bound.

    The embedding convenience (tests, benchmarks, notebooks): an
    ephemeral-port server whose address is known when this returns.
    Keyword arguments are forwarded to :func:`serve_tcp`; stop it with a
    ``shutdown`` request and ``thread.join()``.
    """
    import threading

    ready = threading.Event()
    address: dict[str, Any] = {}

    def on_ready(addr: Any) -> None:
        address["addr"] = addr
        ready.set()

    kwargs.setdefault("port", 0)
    kwargs["ready_callback"] = on_ready
    thread = threading.Thread(
        target=serve_tcp, args=(engine,), kwargs=kwargs, daemon=True
    )
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("TCP server did not come up within 10s")
    return thread, address["addr"]


__all__ = [
    "WitnessServer",
    "AsyncWitnessServer",
    "serve_stdio",
    "serve_tcp",
    "start_tcp_server_thread",
    "encode_response",
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_MAX_LINE",
    "DEFAULT_MAX_CONNECTIONS",
    "DEFAULT_WRITE_TIMEOUT",
    "MAX_STREAMS_PER_CONNECTION",
]
