"""The JSON-lines witness service: stdin/stdout and TCP front-ends.

One request per line in, one response per line out (see
:mod:`repro.service.protocol` for the shapes).  The server's job is
**batching**: instead of answering arrivals one by one, each loop
iteration drains every request that has already arrived (plus a short
``batch_window`` grace for stragglers), hands the whole batch to the
:class:`~repro.service.engine.Engine` — which groups by spec and
coalesces same-spec sample requests into a single ``sample_batch``
kernel pass — and then writes all responses back.  Under concurrent
load this turns N same-instance requests costing N kernel walks into
one walk, without changing any response byte (the substream contract).

Front-ends:

* :func:`serve_stdio` — JSON-lines over stdin/stdout, the subprocess /
  pipeline embedding (``repro serve --stdio``);
* :func:`serve_tcp` — a ``selectors``-based TCP loop (``repro serve
  --port N``) multiplexing any number of client connections; batching
  naturally spans connections.

Control ops: ``ping`` answers ``"pong"``; ``stats`` reports per-worker
cache/store counters; ``shutdown`` acknowledges, flushes, and stops the
server.  Malformed lines get an ``ok: false`` response rather than
killing the connection.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import sys
import time

from repro.service.engine import Engine

#: Default grace period for coalescing stragglers into a batch (seconds).
DEFAULT_BATCH_WINDOW = 0.005

_MAX_LINE = 64 * 1024 * 1024


def _parse_line(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    request = json.loads(line)
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    return request


def _error_response(request_id, error: Exception) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": str(error),
        "error_type": type(error).__name__,
    }


def encode_response(response: dict) -> bytes:
    return json.dumps(response, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    ) + b"\n"


class _Connection:
    """Buffered line framing for one TCP client."""

    __slots__ = ("sock", "inbuf", "outbuf")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = b""
        self.outbuf = b""

    def take_lines(self, data: bytes) -> list[bytes]:
        self.inbuf += data
        if len(self.inbuf) > _MAX_LINE:
            raise ValueError("request line too long")
        *lines, self.inbuf = self.inbuf.split(b"\n")
        return [line for line in lines if line.strip()]


class WitnessServer:
    """The batching request loop over one :class:`Engine`.

    Responses are delivered through per-request callbacks, so the same
    core serves both front-ends (and the tests drive it directly).
    """

    def __init__(self, engine: Engine, batch_window: float = DEFAULT_BATCH_WINDOW):
        self.engine = engine
        self.batch_window = batch_window
        self.served = 0
        self.batches = 0
        self.shutting_down = False

    def process(self, parsed: list[tuple[dict, object]]) -> list[tuple[dict, object]]:
        """Answer a drained batch of ``(request, reply_to)`` pairs.

        A ``shutdown`` op is acknowledged immediately and flips
        :attr:`shutting_down`; the remaining requests of the batch are
        still answered.  ``stats`` is answered here so it aggregates
        *every* worker's counters (routed through the engine it would
        reach only one).
        """
        executable: list[dict] = []
        sinks: list[object] = []
        out: list[tuple[dict, object]] = []
        for request, reply_to in parsed:
            op = request.get("op")
            if op == "shutdown":
                self.shutting_down = True
                out.append(({"id": request.get("id"), "ok": True, "result": "bye"}, reply_to))
                continue
            if op == "stats":
                result = {
                    "served": self.served,
                    "batches": self.batches,
                    "workers": self.engine.stats(),
                }
                out.append(({"id": request.get("id"), "ok": True, "result": result}, reply_to))
                continue
            executable.append(request)
            sinks.append(reply_to)
        if executable:
            self.batches += 1
            responses = self.engine.execute(executable)
            self.served += len(responses)
            out.extend(zip(responses, sinks))
        return out


def _answer_lines(server: WitnessServer, lines, stdout) -> None:
    """Parse a batch of request lines, execute, write response lines."""
    parsed: list[tuple[dict, object]] = []
    for text in lines:
        if isinstance(text, bytes):
            text = text.decode("utf-8", errors="replace")
        if not text.strip():
            continue
        try:
            parsed.append((_parse_line(text), None))
        except ValueError as error:
            stdout.write(encode_response(_error_response(None, error)).decode("utf-8"))
    for response, _ in server.process(parsed):
        stdout.write(encode_response(response).decode("utf-8"))
    stdout.flush()


def serve_stdio(
    engine: Engine,
    stdin=None,
    stdout=None,
    batch_window: float = DEFAULT_BATCH_WINDOW,
) -> int:
    """Serve JSON-lines over stdin/stdout until EOF or ``shutdown``.

    Batching: on a real pipe the loop reads raw bytes from the file
    descriptor (its own line framing, no stdio buffering in the way), so
    everything the client has already written — plus a ``batch_window``
    grace for stragglers — lands in one engine batch and same-spec
    sample requests coalesce.  Non-selectable inputs (tests passing
    ``StringIO``) fall back to line-at-a-time processing.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = WitnessServer(engine, batch_window)

    try:
        fileno = stdin.fileno()
    except (OSError, ValueError, AttributeError):
        fileno = None

    if fileno is None:
        # Fallback framing for in-memory streams: no fd to select on,
        # so no cross-line batching — process each line as it comes.
        while not server.shutting_down:
            line = stdin.readline()
            if not line:
                break
            _answer_lines(server, [line], stdout)
        return 0

    selector = selectors.DefaultSelector()
    selector.register(fileno, selectors.EVENT_READ)
    buffer = b""
    eof = False
    try:
        while not server.shutting_down and not eof:
            selector.select()  # block until the first bytes arrive
            chunk = os.read(fileno, 1 << 20)
            if not chunk:
                break
            buffer += chunk
            # Straggler grace: drain whatever else arrives in the window.
            deadline = time.monotonic() + server.batch_window
            while True:
                timeout = deadline - time.monotonic()
                if timeout <= 0 or not selector.select(timeout):
                    break
                chunk = os.read(fileno, 1 << 20)
                if not chunk:
                    eof = True
                    break
                buffer += chunk
            *lines, buffer = buffer.split(b"\n")
            if lines:
                _answer_lines(server, lines, stdout)
        if buffer.strip() and not server.shutting_down:
            _answer_lines(server, [buffer], stdout)  # unterminated last line
    finally:
        selector.close()
    return 0


def serve_tcp(
    engine: Engine,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_window: float = DEFAULT_BATCH_WINDOW,
    ready_callback=None,
) -> int:
    """Serve JSON-lines over TCP until a client sends ``shutdown``.

    Binds ``host:port`` (port 0 picks an ephemeral port), then calls
    ``ready_callback((host, actual_port))`` — the hook tests and the CLI
    use to learn the address.  One ``selectors`` loop multiplexes all
    clients; every iteration drains whatever arrived, waits
    ``batch_window`` for stragglers, and answers the batch in one engine
    call, so coalescing spans connections.
    """
    server = WitnessServer(engine, batch_window)
    selector = selectors.DefaultSelector()
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(128)
    listener.setblocking(False)
    selector.register(listener, selectors.EVENT_READ, data=None)
    address = listener.getsockname()
    if ready_callback is not None:
        ready_callback(address)

    connections: dict[socket.socket, _Connection] = {}

    def close_connection(conn: _Connection) -> None:
        try:
            selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        connections.pop(conn.sock, None)
        conn.sock.close()

    def gather(timeout: float) -> list[tuple[dict, object]]:
        parsed: list[tuple[dict, object]] = []
        for key, _ in selector.select(timeout):
            if key.data is None:
                try:
                    client, _ = listener.accept()
                except OSError:  # pragma: no cover - racing accept
                    continue
                client.setblocking(False)
                conn = _Connection(client)
                connections[client] = conn
                selector.register(client, selectors.EVENT_READ, data=conn)
                continue
            conn: _Connection = key.data
            try:
                data = conn.sock.recv(1 << 20)
            except (BlockingIOError, InterruptedError):  # pragma: no cover
                continue
            except OSError:
                close_connection(conn)
                continue
            if not data:
                close_connection(conn)
                continue
            try:
                lines = conn.take_lines(data)
            except ValueError as error:
                conn.outbuf += encode_response(_error_response(None, error))
                flush(conn)
                close_connection(conn)
                continue
            for line in lines:
                try:
                    parsed.append((_parse_line(line), conn))
                except ValueError as error:
                    conn.outbuf += encode_response(_error_response(None, error))
        return parsed

    def flush(conn: _Connection, deadline_seconds: float = 5.0) -> None:
        # Bounded: a client that stops reading cannot stall the (single
        # threaded) loop forever — after the budget it is disconnected.
        deadline = time.monotonic() + deadline_seconds
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                if time.monotonic() > deadline:
                    close_connection(conn)
                    return
                time.sleep(0.001)
                continue
            except OSError:
                close_connection(conn)
                return
            conn.outbuf = conn.outbuf[sent:]

    try:
        while not server.shutting_down:
            parsed = gather(timeout=0.1)
            if parsed:
                # Straggler grace: requests already in flight join this batch.
                parsed.extend(gather(timeout=server.batch_window))
                for response, conn in server.process(parsed):
                    if conn is None:  # pragma: no cover - stdio sink unused here
                        continue
                    conn.outbuf += encode_response(response)
            # Flush even when nothing parsed: gather() may have queued
            # error responses for malformed lines.
            for conn in list(connections.values()):
                if conn.outbuf:
                    flush(conn)
    finally:
        for conn in list(connections.values()):
            flush(conn)
            conn.sock.close()
        selector.close()
        listener.close()
    return 0


__all__ = [
    "WitnessServer",
    "serve_stdio",
    "serve_tcp",
    "encode_response",
    "DEFAULT_BATCH_WINDOW",
]
