"""Exception hierarchy for the :mod:`repro` library.

The paper's framework treats malformed inputs in a precise way: an input
that is not correctly encoded simply has an *empty witness set* (Section
5.2).  At the Python API level we are stricter: constructing an invalid
object raises one of the exceptions below, so that bugs surface early
instead of silently producing empty answers.  The relation-level entry
points (``RelationNL``/``RelationUL``) catch these and map them to the
paper's empty-witness-set convention where that behaviour is requested.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidAutomatonError(ReproError):
    """An automaton definition violates a structural requirement.

    Examples: a transition mentions a state that is not declared, a symbol
    outside the declared alphabet, or an initial/final state missing from
    the state set.
    """


class AmbiguityError(ReproError):
    """An operation that requires an unambiguous NFA received an ambiguous one.

    The constant-delay enumerator, the exact counter and the exact uniform
    sampler of Section 5.3 are only correct on unambiguous NFAs; feeding
    them an ambiguous automaton would silently over-count, so we refuse.
    """


class EmptyWitnessSetError(ReproError):
    """A sampler was asked for a witness but the witness set is empty.

    Corresponds to the paper's special symbol ``⊥`` returned by GEN(R) when
    ``W_R(x) = ∅``.  Callers that prefer the symbolic convention can use
    the ``sample_or_none`` variants instead of catching this.
    """


class GenerationFailedError(ReproError):
    """A Las Vegas generator exhausted its retry budget without a sample.

    The PLVUG of Corollary 23 fails each independent attempt with
    probability < 1/2; after ``r`` attempts the failure probability is
    below ``2^-r``.  This error reports how many attempts were made.
    """

    def __init__(self, attempts: int, message: str | None = None):
        self.attempts = attempts
        super().__init__(
            message
            or f"Las Vegas generation failed after {attempts} attempts; "
            "this is astronomically unlikely unless the retry budget is tiny "
            "or the estimates are badly miscalibrated."
        )


class BackendError(ReproError):
    """A solver backend could not run on the witness set it was given.

    Example: the Karp–Luby backend is only defined for DNF-sourced
    witness sets; selecting it for a regex language raises this.
    """


class UnknownBackendError(BackendError):
    """A backend name is not present in the solver-backend registry."""

    def __init__(self, name: str, available: tuple = ()):
        self.name = name
        self.available = tuple(available)
        listing = ", ".join(sorted(map(str, self.available))) or "none"
        super().__init__(
            f"unknown solver backend {name!r}; registered backends: {listing}"
        )


class InvalidRegexError(ReproError):
    """A regular expression could not be parsed."""

    def __init__(self, pattern: str, position: int, message: str):
        self.pattern = pattern
        self.position = position
        super().__init__(f"invalid regex at position {position}: {message} (in {pattern!r})")


class InvalidRelationInputError(ReproError):
    """An input string is not a valid encoding for the relation at hand.

    The paper's convention (Section 5.2) is that such inputs have no
    witnesses; this exception carries that information for callers that
    want to distinguish "empty language" from "garbage input".
    """


class NotFunctionalError(ReproError):
    """A variable-set automaton is not functional (some accepting run is invalid).

    Evaluation of non-functional eVAs is NP-hard (Section 4.1), so the
    spanner evaluator refuses them.
    """


class InconsistentBDDError(ReproError):
    """An nOBDD violates the consistency promise of Section 4.3.

    For some assignment there are paths reaching both the 0-sink and the
    1-sink, so the represented function is ill-defined.
    """
