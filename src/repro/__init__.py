"""repro — enumeration, counting and uniform generation for logspace classes.

A faithful, production-oriented reproduction of

    Arenas, Croquevielle, Jayaram, Riveros.
    "Efficient Logspace Classes for Enumeration, Counting, and Uniform
    Generation."  PODS 2019 (arXiv:1906.09226).

Quick tour::

    import repro

    # Compile a regex to an NFA and work with its fixed-length language.
    nfa = repro.compile_regex("(ab|ba)*(a|b)?", alphabet="ab")

    repro.count_words(nfa, 9)              # exact count (any NFA)
    repro.approx_count_nfa(nfa, 9, 0.1)    # the paper's FPRAS (Theorem 22)
    list(repro.enumerate_words(nfa, 9))    # constant/poly delay enumeration
    repro.uniform_sample(nfa, 9, rng=0)    # uniform witness (exact or PLVUG)

The top-level helpers dispatch between the two complexity classes the way
the paper's theorems do: unambiguous automata get the exact polynomial
algorithms of RelationUL (Theorem 5), general NFAs get the FPRAS and the
Las Vegas generator of RelationNL (Theorem 2 / 22 / Corollary 23).
"""

from __future__ import annotations

import random

from repro.automata import (
    EPSILON,
    NFA,
    DFA,
    compile_regex,
    determinize,
    is_unambiguous,
    minimize,
    word,
    word_str,
)
from repro.core import (
    ExactUniformSampler,
    FprasParameters,
    FprasState,
    LasVegasUniformGenerator,
    RelationNL,
    RelationNLSolver,
    RelationUL,
    RelationULSolver,
    SpanLFunction,
    approx_count_nfa,
    count_accepting_runs_of_length,
    count_words_exact,
    count_words_ufa,
    enumerate_words,
    enumerate_words_nfa,
    enumerate_words_ufa,
    sample_word_ufa,
)
from repro.errors import (
    AmbiguityError,
    EmptyWitnessSetError,
    GenerationFailedError,
    InvalidAutomatonError,
    InvalidRegexError,
    ReproError,
)
from repro.utils.rng import make_rng

__version__ = "1.0.0"


def count_words(nfa: NFA, n: int) -> int:
    """Exact ``|L_n(nfa)|``, choosing the right exact algorithm.

    Unambiguous automata use the polynomial-time run-count DP of Section
    5.3.2; ambiguous ones fall back to the subset-construction counter
    (exponential worst case — use :func:`approx_count_nfa` at scale).
    """
    stripped = nfa.without_epsilon().trim()
    if is_unambiguous(stripped):
        return count_accepting_runs_of_length(stripped, n)
    return count_words_exact(stripped, n)


def uniform_sample(
    nfa: NFA,
    n: int,
    rng: random.Random | int | None = None,
    delta: float = 0.1,
):
    """One uniform witness of ``L_n(nfa)`` (None when the set is empty).

    Unambiguous automata get the exact uniform sampler of Section 5.3.3;
    general NFAs get the Las Vegas generator of Corollary 23.
    """
    generator = make_rng(rng)
    stripped = nfa.without_epsilon().trim()
    if is_unambiguous(stripped):
        from repro.core.exact_sampler import sample_word_ufa_or_none

        return sample_word_ufa_or_none(stripped, n, rng=generator, check=False)
    return LasVegasUniformGenerator(stripped, n, delta=delta, rng=generator).generate()


def uniform_samples(
    nfa: NFA,
    n: int,
    count: int,
    rng: random.Random | int | None = None,
    delta: float = 0.1,
) -> list:
    """``count`` independent uniform witnesses of ``L_n(nfa)``.

    Amortizes preprocessing across draws (one sampler / one PLVUG state).
    Raises :class:`EmptyWitnessSetError` if there are no witnesses.
    """
    generator = make_rng(rng)
    stripped = nfa.without_epsilon().trim()
    if is_unambiguous(stripped):
        sampler = ExactUniformSampler(stripped, n, check=False)
        return sampler.sample_many(count, rng=generator)
    plvug = LasVegasUniformGenerator(stripped, n, delta=delta, rng=generator)
    return plvug.sample_many(count)


__all__ = [
    "__version__",
    # automata
    "NFA",
    "DFA",
    "EPSILON",
    "word",
    "word_str",
    "compile_regex",
    "determinize",
    "minimize",
    "is_unambiguous",
    # top-level dispatchers
    "count_words",
    "uniform_sample",
    "uniform_samples",
    # core
    "enumerate_words",
    "enumerate_words_ufa",
    "enumerate_words_nfa",
    "count_words_ufa",
    "count_words_exact",
    "count_accepting_runs_of_length",
    "approx_count_nfa",
    "sample_word_ufa",
    "ExactUniformSampler",
    "FprasState",
    "FprasParameters",
    "LasVegasUniformGenerator",
    "RelationNL",
    "RelationUL",
    "RelationNLSolver",
    "RelationULSolver",
    "SpanLFunction",
    # errors
    "ReproError",
    "InvalidAutomatonError",
    "AmbiguityError",
    "EmptyWitnessSetError",
    "GenerationFailedError",
    "InvalidRegexError",
]
