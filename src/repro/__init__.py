"""repro — enumeration, counting and uniform generation for logspace classes.

A faithful, production-oriented reproduction of

    Arenas, Croquevielle, Jayaram, Riveros.
    "Efficient Logspace Classes for Enumeration, Counting, and Uniform
    Generation."  PODS 2019 (arXiv:1906.09226).

Quick tour — one query object serves every question::

    from repro import WitnessSet

    # Compile once; every question reuses the cached preprocessing.
    ws = WitnessSet.from_regex("(ab|ba)*(a|b)?", 9, alphabet="ab")

    ws.count()                                 # exact |L_9|
    ws.count(backend="fpras", epsilon=0.1)     # the paper's FPRAS (Thm 22)
    ws.sample(5, rng=0)                        # 5 exactly-uniform witnesses
    list(ws.enumerate(limit=10))               # constant/poly delay ENUM
    ws.spectrum()                              # {length: |L_length|}
    ws.is_unambiguous                          # RelationUL vs RelationNL

The same facade fronts every application domain of the paper —
``WitnessSet.from_dnf`` (satisfying assignments), ``from_obdd`` (BDD
models), ``from_rpq`` (graph paths), ``from_spanner`` (document
extractions), ``from_cfg`` (grammar words) — and dispatches between the
two complexity classes the way the paper's theorems do: unambiguous
automata get the exact polynomial algorithms of RelationUL (Theorem 5),
general NFAs the FPRAS and Las Vegas generator of RelationNL (Theorem
2 / 22 / Corollary 23).  Counting strategies — including the baselines
the paper measures against — are selected by name through the pluggable
registry in :mod:`repro.backends`.

Serving (:mod:`repro.service`): compiled kernels snapshot to a
content-addressed on-disk :class:`~repro.service.store.KernelStore`
(``ws.fingerprint()`` is the key; set ``$REPRO_KERNEL_STORE`` to turn it
on process-wide), a multiprocess :class:`~repro.service.engine.Engine`
routes requests by fingerprint affinity with deterministic per-request
RNG substreams, and ``repro serve`` / ``repro query`` expose the whole
facade as a batching JSON-lines service over stdio or TCP.

.. deprecated:: 1.1
   The free functions :func:`count_words`, :func:`uniform_sample` and
   :func:`uniform_samples` predate the facade.  They now delegate to a
   process-wide shared :class:`WitnessSet` cache (so repeated calls on
   the same automaton are O(1) after the first), but new code should
   construct a :class:`WitnessSet` directly.
"""

from __future__ import annotations

import random
import warnings

from repro import backends
from repro.api import CacheStats, WitnessSet, shared as shared_witness_set
from repro.automata import (
    EPSILON,
    NFA,
    DFA,
    compile_regex,
    determinize,
    is_unambiguous,
    minimize,
    word,
    word_str,
)
from repro.core import (
    Atom,
    CompiledDAG,
    Concat,
    DocProduct,
    ExactUniformSampler,
    GraphProduct,
    Intersect,
    Plan,
    Product,
    Relabel,
    Star,
    Union,
    as_plan,
    lower_plan,
    FprasParameters,
    FprasState,
    LasVegasUniformGenerator,
    RelationNL,
    RelationNLSolver,
    RelationUL,
    RelationULSolver,
    SpanLFunction,
    approx_count_nfa,
    compile_nfa,
    count_accepting_runs_of_length,
    count_words_exact,
    count_words_ufa,
    enumerate_words,
    enumerate_words_nfa,
    enumerate_words_ufa,
    sample_word_ufa,
)
from repro.errors import (
    AmbiguityError,
    BackendError,
    EmptyWitnessSetError,
    GenerationFailedError,
    InvalidAutomatonError,
    InvalidRegexError,
    ReproError,
    UnknownBackendError,
)
from repro.utils.rng import make_rng

__version__ = "1.2.0"


def __getattr__(name: str):
    """Lazy ``repro.service``: the serving stack (sockets, selectors,
    multiprocessing) loads only when first touched, so plain library and
    CLI use never pays for it."""
    if name == "service":
        import repro.service as service

        return service
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.{name}() is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def count_words(nfa: NFA, n: int) -> int:
    """Exact ``|L_n(nfa)|``, choosing the right exact algorithm.

    .. deprecated:: 1.1  Use ``WitnessSet.from_nfa(nfa, n).count()``.

    Delegates to the shared :class:`WitnessSet` cache: unambiguous
    automata use the polynomial-time run-count DP of Section 5.3.2,
    ambiguous ones the subset-construction counter (exponential worst
    case — use the ``fpras`` backend at scale).  Repeated calls on the
    same automaton reuse all preprocessing.
    """
    _deprecated("count_words", "WitnessSet.from_nfa(nfa, n).count()")
    return shared_witness_set(nfa, n).count_exact()


def uniform_sample(
    nfa: NFA,
    n: int,
    rng: random.Random | int | None = None,
    delta: float = 0.1,
    *,
    seed: int | None = None,
):
    """One uniform witness of ``L_n(nfa)`` (None when the set is empty).

    .. deprecated:: 1.1  Use ``WitnessSet.from_nfa(nfa, n).sample(rng=...)``.

    Unambiguous automata get the exact uniform sampler of Section 5.3.3;
    general NFAs the Las Vegas generator of Corollary 23 — both through
    the shared :class:`WitnessSet` cache, so the per-automaton
    preprocessing is paid once across calls.  ``seed=`` is an integer
    alias for ``rng=``; both spellings draw the identical stream.
    """
    _deprecated("uniform_sample", "WitnessSet.from_nfa(nfa, n).sample(rng=...)")
    return shared_witness_set(nfa, n, delta=delta).sample(rng=rng, seed=seed)


def uniform_samples(
    nfa: NFA,
    n: int,
    count: int,
    rng: random.Random | int | None = None,
    delta: float = 0.1,
    *,
    seed: int | None = None,
) -> list:
    """``count`` independent uniform witnesses of ``L_n(nfa)``.

    .. deprecated:: 1.1  Use ``WitnessSet.from_nfa(nfa, n).sample(count)``.

    Raises :class:`EmptyWitnessSetError` if there are no witnesses.
    ``seed=`` is an integer alias for ``rng=``.
    """
    _deprecated("uniform_samples", "WitnessSet.from_nfa(nfa, n).sample(count)")
    return shared_witness_set(nfa, n, delta=delta).sample(count, rng=rng, seed=seed)


__all__ = [
    "__version__",
    # the facade
    "WitnessSet",
    "CacheStats",
    "backends",
    "shared_witness_set",
    # the serving subsystem (persistent kernels, worker pool, server)
    "service",
    # automata
    "NFA",
    "DFA",
    "EPSILON",
    "word",
    "word_str",
    "compile_regex",
    "determinize",
    "minimize",
    "is_unambiguous",
    # deprecated top-level dispatchers (thin shims over the facade)
    "count_words",
    "uniform_sample",
    "uniform_samples",
    # rng plumbing (the "seed or generator or nothing" convention)
    "make_rng",
    # core
    "enumerate_words",
    "enumerate_words_ufa",
    "enumerate_words_nfa",
    "count_words_ufa",
    "count_words_exact",
    "count_accepting_runs_of_length",
    "approx_count_nfa",
    "sample_word_ufa",
    "ExactUniformSampler",
    "CompiledDAG",
    "compile_nfa",
    # the symbolic plan IR (lazy products, lowered straight to the kernel)
    "Plan",
    "Atom",
    "Product",
    "Intersect",
    "Union",
    "Concat",
    "Star",
    "Relabel",
    "GraphProduct",
    "DocProduct",
    "as_plan",
    "lower_plan",
    "FprasState",
    "FprasParameters",
    "LasVegasUniformGenerator",
    "RelationNL",
    "RelationUL",
    "RelationNLSolver",
    "RelationULSolver",
    "SpanLFunction",
    # errors
    "ReproError",
    "InvalidAutomatonError",
    "AmbiguityError",
    "BackendError",
    "UnknownBackendError",
    "EmptyWitnessSetError",
    "GenerationFailedError",
    "InvalidRegexError",
]
