"""Deterministic random-number-generator plumbing.

All randomized algorithms in this library (the FPRAS, the samplers, the
workload generators) take randomness through an explicit
``random.Random`` instance.  This module centralizes the "seed or
generator or nothing" convention so call sites stay uniform.
"""

from __future__ import annotations

import random

RngLike = "random.Random | int | None"


def make_rng(rng: random.Random | int | None = None) -> random.Random:
    """Normalize ``rng`` into a ``random.Random`` instance.

    * ``None`` — a fresh, OS-seeded generator (non-reproducible).
    * an ``int`` — a generator seeded with that value (reproducible).
    * a ``random.Random`` — returned unchanged, so callers can share a
      single stream across several components.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"expected Random, int or None, got {type(rng).__name__}")


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a component needs its own stream that must not be perturbed
    by how many draws sibling components make (keeps experiments stable
    when one leg of a comparison changes its sampling behaviour).
    """
    return random.Random(rng.getrandbits(64))
