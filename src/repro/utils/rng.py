"""Deterministic random-number-generator plumbing.

All randomized algorithms in this library (the FPRAS, the samplers, the
workload generators) take randomness through an explicit
``random.Random`` instance.  This module centralizes the "seed or
generator or nothing" convention so call sites stay uniform.

Two derivation helpers exist for components that need *child* streams:

* :func:`spawn` — draw a child seed from the parent stream (advances the
  parent, so the child depends on how many draws preceded it);
* :func:`spawn_seq` — derive the ``index``-th substream of the parent
  *without* advancing it.  Substreams depend only on the parent's
  current state and the index, so ``spawn_seq(rng, i)`` yields the same
  stream no matter in which order (or on which worker process) the
  substreams are materialized — the reproducibility contract the
  service engine and batched sampling rely on.
"""

from __future__ import annotations

import hashlib
import random

RngLike = "random.Random | int | None"


def make_rng(rng: random.Random | int | None = None) -> random.Random:
    """Normalize ``rng`` into a ``random.Random`` instance.

    * ``None`` — a fresh, OS-seeded generator (non-reproducible).
    * an ``int`` — a generator seeded with that value (reproducible).
    * a ``random.Random`` — returned unchanged, so callers can share a
      single stream across several components.
    """
    if rng is None:
        return random.Random()  # repro-lint: ignore[nondeterminism] -- the documented non-reproducible path: rng=None explicitly requests an OS-seeded stream
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"expected Random, int or None, got {type(rng).__name__}")


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a component needs its own stream that must not be perturbed
    by how many draws sibling components make (keeps experiments stable
    when one leg of a comparison changes its sampling behaviour).
    """
    return random.Random(rng.getrandbits(64))


def _state_digest(rng: random.Random) -> bytes:
    """SHA-256 of the generator's full current state (not advanced)."""
    return hashlib.sha256(repr(rng.getstate()).encode("utf-8")).digest()


def _child_from_digest(digest: bytes, index: int) -> random.Random:
    child = hashlib.sha256(digest)
    child.update(index.to_bytes(8, "big"))
    return random.Random(int.from_bytes(child.digest()[:16], "big"))


def spawn_seq(rng: random.Random, index: int) -> random.Random:
    """The ``index``-th deterministic substream of ``rng``.

    Unlike :func:`spawn`, the parent stream is *not* advanced: the child
    seed is a hash of the parent's current state together with ``index``,
    so for a fixed parent state the family ``{spawn_seq(rng, i)}`` is
    fully determined and order-independent.  This is what makes batched
    and multi-worker sampling reproducible: each logical draw ``i`` gets
    substream ``i`` regardless of scheduling, coalescing, or which
    process performs it.
    """
    if index < 0:
        raise ValueError("substream index must be ≥ 0")
    return _child_from_digest(_state_digest(rng), index)


def substreams(rng: random.Random, count: int) -> list[random.Random]:
    """The first ``count`` substreams of ``rng`` (see :func:`spawn_seq`).

    The parent's (multi-KB Mersenne) state is serialized and hashed
    **once** for the whole family — per index only a small second-stage
    hash runs, which keeps large batched draws out of the derivation's
    shadow.
    """
    digest = _state_digest(rng)
    return [_child_from_digest(digest, index) for index in range(count)]
