"""Statistics helpers for uniformity and accuracy experiments.

Pure-Python (no scipy dependency at library runtime) implementations of
the few statistical routines the samplers' validation needs: empirical
distributions, a chi-square goodness-of-fit test against the uniform
distribution, and relative-error summaries for FPRAS experiments.

The chi-square p-value uses the regularized upper incomplete gamma
function computed via a continued fraction / series split — standard
numerical recipes, accurate to ~1e-10 over the ranges we use, and
cross-validated against ``scipy.stats.chi2`` in the test suite.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence


def empirical_distribution(samples: Iterable[Hashable]) -> dict[Hashable, float]:
    """Map each observed value to its empirical frequency."""
    counts = Counter(samples)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {value: count / total for value, count in counts.items()}


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth, with the 0/0 case defined as 0."""
    if truth == 0:
        return 0.0 if estimate == 0 else math.inf
    return abs(estimate - truth) / truth


@dataclass
class ErrorSummary:
    """Aggregate of relative errors across repeated FPRAS runs."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float
    within_delta_fraction: float
    delta: float


def summarize_errors(errors: Sequence[float], delta: float) -> ErrorSummary:
    """Summarize a batch of relative errors against a target ``delta``.

    ``within_delta_fraction`` is the quantity the FPRAS definition bounds:
    it must be ≥ 3/4 for a correct scheme (Section 2.4).
    """
    if not errors:
        raise ValueError("no errors to summarize")
    ordered = sorted(errors)
    n = len(ordered)
    return ErrorSummary(
        count=n,
        mean=sum(ordered) / n,
        median=ordered[n // 2],
        p90=ordered[min(n - 1, math.ceil(0.9 * n) - 1)],
        maximum=ordered[-1],
        within_delta_fraction=sum(1 for e in ordered if e <= delta) / n,
        delta=delta,
    )


def _gamma_series(a: float, x: float) -> float:
    """Lower incomplete gamma P(a, x) by series expansion (x < a + 1)."""
    term = 1.0 / a
    total = term
    denom = a
    for _ in range(10_000):
        denom += 1.0
        term *= x / denom
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_continued_fraction(a: float, x: float) -> float:
    """Upper incomplete gamma Q(a, x) by continued fraction (x ≥ a + 1)."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 10_000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def chi2_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution (1 - CDF)."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if statistic <= 0:
        return 1.0
    a = dof / 2.0
    x = statistic / 2.0
    if x < a + 1.0:
        return max(0.0, min(1.0, 1.0 - _gamma_series(a, x)))
    return max(0.0, min(1.0, _gamma_continued_fraction(a, x)))


@dataclass
class ChiSquareResult:
    statistic: float
    dof: int
    p_value: float

    def rejects_uniformity(self, alpha: float = 0.001) -> bool:
        """True if the sample is inconsistent with uniformity at level alpha.

        We default to a small alpha because the test suite runs many
        uniformity checks; individual checks must be conservative to keep
        the suite's overall false-positive rate negligible.
        """
        return self.p_value < alpha


def chi_square_uniformity(
    samples: Sequence[Hashable],
    support: Sequence[Hashable],
) -> ChiSquareResult:
    """Chi-square goodness-of-fit of ``samples`` against uniform on ``support``.

    Every sample must lie in ``support`` (a sampler emitting a non-witness
    is a correctness bug, not a statistics question — we raise).
    """
    support_list = list(support)
    if not support_list:
        raise ValueError("empty support")
    if len(set(support_list)) != len(support_list):
        raise ValueError("support contains duplicates")
    counts = Counter(samples)
    stray = set(counts) - set(support_list)
    if stray:
        raise ValueError(f"samples outside support: {sorted(map(repr, stray))[:5]}")
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    expected = n / len(support_list)
    statistic = sum(
        (counts.get(value, 0) - expected) ** 2 / expected for value in support_list
    )
    dof = len(support_list) - 1
    if dof == 0:
        # Single-point support: uniformity is trivially satisfied.
        return ChiSquareResult(statistic=0.0, dof=1, p_value=1.0)
    return ChiSquareResult(statistic=statistic, dof=dof, p_value=chi2_sf(statistic, dof))
