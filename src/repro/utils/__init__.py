"""Shared utilities: deterministic RNG plumbing, timing, statistics.

These helpers keep the algorithmic modules free of incidental concerns.
Every randomized algorithm in the library accepts an explicit
``random.Random`` (or a seed) so that experiments are reproducible; see
:func:`repro.utils.rng.make_rng`.
"""

from repro.utils.rng import make_rng
from repro.utils.timing import DelayRecorder, time_call
from repro.utils.stats import (
    chi_square_uniformity,
    empirical_distribution,
    relative_error,
    summarize_errors,
)

__all__ = [
    "make_rng",
    "DelayRecorder",
    "time_call",
    "chi_square_uniformity",
    "empirical_distribution",
    "relative_error",
    "summarize_errors",
]
