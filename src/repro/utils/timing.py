"""Timing instrumentation for the enumeration-delay experiments.

The paper's central enumeration claims are about *delay*: the time between
consecutive outputs (Section 2.3).  :class:`DelayRecorder` wraps any
iterator and records a timestamp per item so experiments E1/E2 can report
max/mean inter-output delay, normalized by output length for the paper's
``c·|y|`` constant-delay criterion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class DelayRecorder:
    """Record per-item delays while draining an iterator.

    Usage::

        rec = DelayRecorder()
        words = rec.drain(enumerate_words(nfa, n))
        print(rec.max_delay, rec.mean_delay)

    Delays are measured with the monotonic ``time.perf_counter`` clock
    (in seconds), so system clock adjustments never distort a
    constant-delay measurement.  ``delays[0]`` is the time from calling
    :meth:`drain` to the first output (the paper allows this to be the
    whole preprocessing when the enumeration is two-phase; our enumerators
    do preprocessing before returning the iterator, so ``delays[0]`` is a
    true first-output delay).
    """

    delays: list[float] = field(default_factory=list)
    items: list[object] = field(default_factory=list)
    keep_items: bool = True

    def drain(self, iterator: Iterable[T], limit: int | None = None) -> list[T]:
        """Consume ``iterator`` (up to ``limit`` items), recording delays."""
        out: list[T] = []
        last = time.perf_counter()
        for item in iterator:
            now = time.perf_counter()
            self.delays.append(now - last)
            last = now
            if self.keep_items:
                self.items.append(item)
            out.append(item)
            if limit is not None and len(out) >= limit:
                break
        return out

    @property
    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    def normalized_delays(self, lengths: Sequence[int]) -> list[float]:
        """Delays divided by output length — the paper's ``c`` in ``c·|y|``.

        ``lengths[i]`` must be the length of the i-th output.  Zero-length
        outputs (the empty word) are normalized by 1.
        """
        if len(lengths) != len(self.delays):
            raise ValueError("lengths and delays have different cardinality")
        return [d / max(1, length) for d, length in zip(self.delays, lengths)]


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def iterate_with_budget(iterator: Iterator[T], seconds: float) -> list[T]:
    """Drain ``iterator`` until a time budget elapses; return items seen.

    Used by benchmarks that compare "how many answers does each method
    deliver in a fixed time slice" — the practical payoff of small delay.
    """
    out: list[T] = []
    deadline = time.perf_counter() + seconds
    for item in iterator:
        out.append(item)
        if time.perf_counter() >= deadline:
            break
    return out
