"""Tests for graph databases and RPQ evaluation (Corollary 8)."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidAutomatonError, InvalidRelationInputError
from repro.graphdb.graph import GraphDatabase, grid_graph, random_graph, social_graph
from repro.graphdb.rpq import RPQ, EvalRpqRelation, Path, RpqEvaluator, compile_rpq


class TestGraphDatabase:
    def test_basic_structure(self):
        g = GraphDatabase(["u", "v"], [("u", "a", "v")])
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.labels == frozenset({"a"})
        assert g.successors("u", "a") == ["v"]
        assert g.has_edge("u", "a", "v")

    def test_rejects_dangling_edge(self):
        with pytest.raises(InvalidAutomatonError):
            GraphDatabase(["u"], [("u", "a", "ghost")])

    def test_reachability(self):
        g = GraphDatabase(
            ["a", "b", "c", "island"],
            [("a", "x", "b"), ("b", "x", "c")],
        )
        assert g.reachable_from("a") == frozenset({"a", "b", "c"})

    def test_generators_deterministic(self):
        assert random_graph(6, rng=3).edges == random_graph(6, rng=3).edges
        assert social_graph(5, rng=3).edges == social_graph(5, rng=3).edges


class TestRpqOnGrid:
    def test_binomial_path_counts(self):
        """Corner-to-corner monotone paths in a grid: C(n, k)."""
        g = grid_graph(4, 4)
        evaluator = RpqEvaluator(g, RPQ("(r|d)*"), (0, 0), (3, 3), 6)
        assert evaluator.count_exact() == math.comb(6, 3)

    def test_label_constrained(self):
        g = grid_graph(3, 3)
        # Exactly r r d d in any order conforming to r*d*: one path.
        evaluator = RpqEvaluator(g, RPQ("r*d*"), (0, 0), (2, 2), 4)
        assert evaluator.count_exact() == 1

    def test_wrong_length_empty(self):
        g = grid_graph(3, 3)
        evaluator = RpqEvaluator(g, RPQ("(r|d)*"), (0, 0), (2, 2), 3)
        assert evaluator.count_exact() == 0
        assert evaluator.sample(0) is None

    def test_paths_are_real_and_conform(self):
        g = grid_graph(4, 4)
        evaluator = RpqEvaluator(g, RPQ("(r|d)*"), (0, 0), (3, 3), 6)
        paths = list(evaluator.paths())
        assert len(paths) == 20
        for path in paths:
            assert path.is_path_of(g)
            assert path.length == 6
            assert path.target == (3, 3)

    def test_sampling_uniform_support(self):
        g = grid_graph(3, 3)
        evaluator = RpqEvaluator(g, RPQ("(r|d)*"), (0, 0), (2, 2), 4)
        universe = {tuple(p.steps) for p in evaluator.paths()}
        seen = set()
        for seed in range(40):
            p = evaluator.sample(seed)
            assert tuple(p.steps) in universe
            seen.add(tuple(p.steps))
        assert len(seen) == len(universe)  # C(4,2)=6 paths, 40 draws


class TestRpqAmbiguity:
    def test_deterministic_query_unambiguous(self):
        g = grid_graph(3, 3)
        evaluator = RpqEvaluator(
            g, RPQ("(r|d)*"), (0, 0), (2, 2), 4, deterministic_query=True
        )
        assert evaluator.unambiguous

    def test_ambiguous_query_falls_back(self):
        # (a|aa)* is inherently ambiguous; over a single self-loop the
        # product inherits it.
        g = GraphDatabase(["v"], [("v", "a", "v")])
        evaluator = RpqEvaluator(g, RPQ("(a|aa)*"), "v", "v", 6, rng=0)
        assert not evaluator.unambiguous
        # Exactly one path of length 6 exists (the self-loop walk).
        assert evaluator.count_exact() == 1

    def test_counts_agree_between_routes(self):
        g = random_graph(6, rng=5, density=1.5)
        vertices = sorted(g.vertices)
        u, v = vertices[0], vertices[-1]
        det = RpqEvaluator(g, RPQ("(a|b)*a"), u, v, 5, deterministic_query=True)
        amb = RpqEvaluator(g, RPQ("(a|b)*a"), u, v, 5)
        assert det.count_exact() == amb.count_exact()


class TestRpqRelation:
    def test_relation_interface(self):
        g = grid_graph(3, 3)
        relation = EvalRpqRelation()
        instance = (RPQ("(r|d)*"), 4, g, (0, 0), (2, 2))
        witnesses = list(relation.witnesses(instance))
        assert len(witnesses) == 6
        for path in witnesses:
            assert isinstance(path, Path)
            assert relation.check(instance, path)

    def test_rejects_foreign_endpoints(self):
        g = grid_graph(2, 2)
        with pytest.raises(InvalidRelationInputError):
            compile_rpq(g, RPQ("r*"), (0, 0), (9, 9))


class TestSocialWorkload:
    def test_friend_of_friend(self):
        g = social_graph(12, rng=1)
        person = sorted(g.vertices)[0]
        target = sorted(g.vertices)[1]
        evaluator = RpqEvaluator(g, RPQ("kk"), person, target, 2)
        # Count must equal the direct knows-of-knows 2-hop count.
        direct = sum(
            1
            for mid in g.successors(person, "k")
            if target in g.successors(mid, "k")
        )
        assert evaluator.count_exact() == direct
