"""Unit tests for the regex front end (parser + both compilers)."""

from __future__ import annotations

import itertools

import pytest

from repro.automata.dfa import languages_equal
from repro.automata.regex import (
    compile_regex,
    glushkov,
    match_brute_force,
    parse,
    render,
    thompson,
)
from repro.automata.nfa import word
from repro.errors import InvalidRegexError


def accepts_str(nfa, text: str) -> bool:
    return nfa.accepts(word(text))


class TestParser:
    @pytest.mark.parametrize(
        "pattern",
        ["a", "ab", "a|b", "(a|b)*", "a+b?", "[abc]", "[a-c]", "a{2,3}", "a{2,}", "a{3}", "", "()", "\\*", "(a|)(b)"],
    )
    def test_parses(self, pattern):
        parse(pattern)  # must not raise

    @pytest.mark.parametrize(
        "pattern",
        ["(", ")", "a)", "*(a)"[0:1] + "a",  # "*a"
         "a{3,2}", "a{", "[abc", "a**"[0:3] if False else "(a", "\\"],
    )
    def test_rejects_malformed(self, pattern):
        with pytest.raises(InvalidRegexError):
            parse(pattern)

    def test_quantifier_without_atom(self):
        with pytest.raises(InvalidRegexError):
            parse("*a")

    def test_render_roundtrip(self):
        for pattern in ["a(b|c)*", "[abc]+x?", "(ab){2,4}"]:
            ast = parse(pattern)
            again = parse(render(ast))
            assert render(again) == render(ast)

    def test_class_range_out_of_order(self):
        with pytest.raises(InvalidRegexError):
            parse("[z-a]")


class TestCompile:
    @pytest.mark.parametrize("method", ["glushkov", "thompson"])
    def test_simple_language(self, method):
        nfa = compile_regex("(ab|ba)*", alphabet="ab", method=method)
        assert accepts_str(nfa, "")
        assert accepts_str(nfa, "abba")
        assert accepts_str(nfa, "baab")
        assert not accepts_str(nfa, "aab")

    @pytest.mark.parametrize("method", ["glushkov", "thompson"])
    def test_char_class(self, method):
        nfa = compile_regex("[ab]c", alphabet="abc", method=method)
        assert accepts_str(nfa, "ac")
        assert accepts_str(nfa, "bc")
        assert not accepts_str(nfa, "cc")

    @pytest.mark.parametrize("method", ["glushkov", "thompson"])
    def test_negated_class(self, method):
        nfa = compile_regex("[^a]", alphabet="abc", method=method)
        assert not accepts_str(nfa, "a")
        assert accepts_str(nfa, "b")
        assert accepts_str(nfa, "c")

    @pytest.mark.parametrize("method", ["glushkov", "thompson"])
    def test_dot(self, method):
        nfa = compile_regex(".a", alphabet="ab", method=method)
        assert accepts_str(nfa, "aa")
        assert accepts_str(nfa, "ba")
        assert not accepts_str(nfa, "ab")

    @pytest.mark.parametrize("method", ["glushkov", "thompson"])
    def test_bounded_repetition(self, method):
        nfa = compile_regex("a{2,3}", alphabet="a", method=method)
        assert not accepts_str(nfa, "a")
        assert accepts_str(nfa, "aa")
        assert accepts_str(nfa, "aaa")
        assert not accepts_str(nfa, "aaaa")

    def test_dot_requires_alphabet(self):
        with pytest.raises(InvalidRegexError):
            compile_regex(".")

    def test_symbols_outside_alphabet_rejected(self):
        with pytest.raises(InvalidRegexError):
            compile_regex("abc", alphabet="ab")

    def test_alphabet_inferred(self):
        nfa = compile_regex("ab|ba")
        assert nfa.alphabet == frozenset({"a", "b"})

    def test_glushkov_epsilon_free(self):
        assert not compile_regex("(a|b)*abb", alphabet="ab").has_epsilon

    def test_methods_agree(self):
        for pattern in ["(a|b)*abb", "a(ba)*b?", "[ab]{1,3}", "(aa|ab|b)+"]:
            g = compile_regex(pattern, alphabet="ab", method="glushkov")
            t = compile_regex(pattern, alphabet="ab", method="thompson")
            assert languages_equal(g, t), pattern

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            compile_regex("a", method="brzozowski")


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "pattern",
        [
            "a",
            "ab|ba",
            "(a|b)*",
            "a*b*",
            "(ab)*a?",
            "a{0,2}b",
            "(a|ab)(b|ba)",
            "((a|b)(a|b))*",
            "a+|b+",
        ],
    )
    def test_exhaustive_agreement(self, pattern):
        ast = parse(pattern)
        alphabet = frozenset("ab")
        nfa = compile_regex(pattern, alphabet="ab")
        for n in range(5):
            for w in itertools.product("ab", repeat=n):
                expected = match_brute_force(ast, w, alphabet)
                assert nfa.accepts(w) == expected, (pattern, w)
