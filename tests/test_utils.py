"""Tests for the utility layer (stats, timing, rng)."""

from __future__ import annotations

import math
import random

import pytest

from repro.utils.rng import make_rng, spawn
from repro.utils.stats import (
    chi2_sf,
    chi_square_uniformity,
    empirical_distribution,
    relative_error,
    summarize_errors,
)
from repro.utils.timing import DelayRecorder, iterate_with_budget, time_call


class TestRng:
    def test_from_seed_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_passthrough(self):
        generator = random.Random(1)
        assert make_rng(generator) is generator

    def test_none_gives_fresh(self):
        assert isinstance(make_rng(None), random.Random)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            make_rng("seed")

    def test_spawn_independent(self):
        parent = make_rng(7)
        child = spawn(parent)
        assert child.random() != parent.random()


class TestStatsHelpers:
    def test_empirical_distribution(self):
        dist = empirical_distribution(["a", "a", "b", "b"])
        assert dist == {"a": 0.5, "b": 0.5}

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == math.inf

    def test_summarize_errors(self):
        summary = summarize_errors([0.05, 0.15, 0.02, 0.3], delta=0.2)
        assert summary.count == 4
        assert summary.within_delta_fraction == 0.75
        assert summary.maximum == 0.3

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_errors([], delta=0.1)


class TestChiSquare:
    def test_sf_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for dof in (1, 3, 10, 30):
            for statistic in (0.5, 2.0, 8.0, 25.0, 60.0):
                ours = chi2_sf(statistic, dof)
                reference = float(scipy_stats.chi2.sf(statistic, dof))
                assert ours == pytest.approx(reference, abs=1e-9)

    def test_uniform_sample_passes(self):
        generator = random.Random(0)
        support = list(range(10))
        samples = [generator.choice(support) for _ in range(2000)]
        assert not chi_square_uniformity(samples, support).rejects_uniformity()

    def test_skewed_sample_fails(self):
        generator = random.Random(0)
        support = list(range(10))
        samples = [generator.choice(support[:3]) for _ in range(500)]
        assert chi_square_uniformity(samples, support).rejects_uniformity()

    def test_stray_samples_rejected(self):
        with pytest.raises(ValueError):
            chi_square_uniformity(["z"], support=["a", "b"])

    def test_duplicate_support_rejected(self):
        with pytest.raises(ValueError):
            chi_square_uniformity(["a"], support=["a", "a"])

    def test_singleton_support(self):
        result = chi_square_uniformity(["a", "a"], support=["a"])
        assert result.p_value == 1.0


class TestTiming:
    def test_delay_recorder(self):
        recorder = DelayRecorder()
        out = recorder.drain(iter([1, 2, 3]))
        assert out == [1, 2, 3]
        assert len(recorder.delays) == 3
        assert recorder.max_delay >= recorder.mean_delay >= 0

    def test_drain_with_limit(self):
        recorder = DelayRecorder()
        out = recorder.drain(iter(range(100)), limit=5)
        assert len(out) == 5

    def test_normalized_delays(self):
        recorder = DelayRecorder()
        recorder.delays.extend([0.2, 0.4])
        normalized = recorder.normalized_delays([2, 4])
        assert normalized == [0.1, 0.1]

    def test_normalized_mismatch(self):
        recorder = DelayRecorder()
        recorder.delays.append(0.1)
        with pytest.raises(ValueError):
            recorder.normalized_delays([1, 2])

    def test_time_call(self):
        result, elapsed = time_call(lambda: 42)
        assert result == 42
        assert elapsed >= 0

    def test_iterate_with_budget(self):
        def slow():
            import time

            while True:
                time.sleep(0.001)
                yield 1

        out = iterate_with_budget(slow(), seconds=0.05)
        assert 1 <= len(out) < 1000
